//! Expected completion time of *short* transfers — the extension the
//! paper's reference \[2\] (Cardwell, "Modeling the performance of short TCP
//! connections") builds on top of `B(p)`.
//!
//! The steady-state model `B(p)` describes a saturated flow; the WWW
//! traffic that motivates the paper's introduction is dominated by short
//! transfers that spend most of their life in **slow start**. Following
//! the Cardwell decomposition, the expected time to move `n` packets is:
//!
//! 1. the slow-start phase: the window grows geometrically by
//!    `γ = 1 + 1/b` per round from the initial window until the first loss
//!    (expected after `E[n_ss] = (1−(1−p)^n)·(1−p)/p + 1` packets), the
//!    transfer finishes, or the window hits `W_m`;
//! 2. if a loss interrupts slow start: one expected recovery delay
//!    (`Q̂`-weighted mix of a fast-retransmit RTT and a timeout `T0`);
//! 3. any remaining data drains at the steady-state rate `B(p)` of
//!    Eq. (32) (clamped to `W_m/RTT` by the model itself).
//!
//! Validated against the packet-level simulator's finite-flow mode in the
//! workspace integration tests.

use crate::params::ModelParams;
use crate::sendrate::full_model;
use crate::timeout::q_hat_exact;
use crate::units::LossProb;
use crate::window::expected_window;

/// Breakdown of a short-transfer latency prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEstimate {
    /// Total expected completion time, seconds (send of first packet to
    /// ACK of the last; excludes connection establishment).
    pub total_secs: f64,
    /// Expected packets moved during slow start.
    pub slow_start_packets: f64,
    /// Expected slow-start duration, seconds.
    pub slow_start_secs: f64,
    /// Expected recovery delay (0 when the transfer is expected to finish
    /// inside slow start), seconds.
    pub recovery_secs: f64,
    /// Expected steady-state phase duration, seconds.
    pub steady_secs: f64,
}

/// Expected number of packets sent in slow start before the first loss,
/// for a transfer of `n` packets (Cardwell's `E[d_ss]`): the first loss
/// comes after a geometric number of packets, truncated by the transfer
/// length.
//= pftk#short-flow
pub fn expected_slow_start_packets(n: u64, p: LossProb) -> f64 {
    let pv = p.get();
    let q = p.survival();
    // E[min(first-loss index, n)] with P[first loss at k] = (1-p)^{k-1} p:
    // = (1 - q^n) (1-p)/p + 1, capped at n.
    //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
    (((1.0 - q.powi(n.min(i32::MAX as u64) as i32)) * q) / pv + 1.0).min(n as f64)
}

/// Rounds needed to move `d` packets in slow start starting from window
/// `w0` with per-round growth `γ = 1 + 1/b`, window capped at `wmax`.
/// Returns (rounds, window at the end).
fn slow_start_rounds(d: f64, w0: f64, b: u32, wmax: f64) -> (f64, f64) {
    if d <= 0.0 {
        return (0.0, w0);
    }
    let gamma = 1.0 + 1.0 / f64::from(b);
    // Packets sent in r rounds of geometric growth: w0 (γ^r − 1)/(γ − 1).
    // Uncapped: solve for r.
    let r_uncapped = ((d * (gamma - 1.0) / w0) + 1.0).ln() / gamma.ln();
    let w_end_uncapped = w0 * gamma.powf(r_uncapped);
    if w_end_uncapped <= wmax {
        return (r_uncapped, w_end_uncapped);
    }
    // Window caps at wmax after r_cap rounds having sent d_cap packets;
    // the rest moves at wmax per round.
    let r_cap = (wmax / w0).ln() / gamma.ln();
    let d_cap = w0 * (gamma.powf(r_cap) - 1.0) / (gamma - 1.0);
    let remaining = (d - d_cap).max(0.0);
    (r_cap + remaining / wmax, wmax)
}

/// Expected completion time for a transfer of `n` packets, with the full
/// phase breakdown.
//= pftk#short-flow
pub fn transfer_time_detailed(n: u64, p: LossProb, params: &ModelParams) -> TransferEstimate {
    let rtt = params.rtt.get();
    if n == 0 {
        return TransferEstimate {
            total_secs: 0.0,
            slow_start_packets: 0.0,
            slow_start_secs: 0.0,
            recovery_secs: 0.0,
            steady_secs: 0.0,
        };
    }
    let wmax = f64::from(params.wmax);
    let d_ss = expected_slow_start_packets(n, p);
    let (rounds, w_end) = slow_start_rounds(d_ss, 1.0, params.b, wmax);
    // +1 RTT: the final round's ACKs must return for the data to count as
    // delivered.
    let ss_secs = (rounds + 1.0) * rtt;
    //~ allow(cast): integer count to f64, exact below 2^53
    if d_ss >= n as f64 - 0.5 {
        // Expected to finish inside slow start.
        return TransferEstimate {
            total_secs: ss_secs,
            slow_start_packets: n as f64, //~ allow(cast): integer count to f64, exact below 2^53
            slow_start_secs: ss_secs,
            recovery_secs: 0.0,
            steady_secs: 0.0,
        };
    }
    // A loss interrupts slow start: recovery is a fast retransmit (≈ 1 RTT)
    // with probability 1 − Q̂, else a timeout (≈ T0).
    let q = q_hat_exact(p, w_end.min(expected_window(p, params.b)));
    let recovery = (1.0 - q) * rtt + q * params.t0.get();
    // Remaining data at steady state.
    let remaining = n as f64 - d_ss; //~ allow(cast): integer count to f64, exact below 2^53
    let steady = remaining / full_model(p, params);
    TransferEstimate {
        total_secs: ss_secs + recovery + steady,
        slow_start_packets: d_ss,
        slow_start_secs: ss_secs,
        recovery_secs: recovery,
        steady_secs: steady,
    }
}

/// Expected completion time for a transfer of `n` packets, seconds.
pub fn transfer_time(n: u64, p: LossProb, params: &ModelParams) -> f64 {
    transfer_time_detailed(n, p, params).total_secs
}

/// Expected connection-establishment (three-way handshake) duration — the
/// other component of Cardwell's short-connection latency. The client
/// retries a lost SYN after an initial timeout that doubles per retry
/// (classic stacks: 3 s base, factor 2), so
///
/// ```text
/// E[T_handshake] = RTT + Σ_{k≥1} P[first k SYNs lost] · 2^{k-1}·syn_rto
///                = RTT + syn_rto · Σ_{k≥1} p_f^k 2^{k-1}
///                = RTT + syn_rto · p_f / (1 − 2 p_f)        (p_f < 1/2)
/// ```
///
/// with `p_f` the probability a SYN or its SYN-ACK is lost (both directions
/// matter; pass the combined loss). Diverges as `p_f → 1/2` — with doubling
/// retries, mean handshake time is genuinely unbounded beyond that.
pub fn handshake_time(p_forward_or_reverse_loss: f64, rtt_secs: f64, syn_rto_secs: f64) -> f64 {
    let pf = p_forward_or_reverse_loss.clamp(0.0, 0.4999);
    rtt_secs + syn_rto_secs * pf / (1.0 - 2.0 * pf)
}

/// [`transfer_time`] plus the delayed-ACK stalls the pure rounds model
/// misses: with `b ≥ 2` the first packet of a transfer (window 1 → lone
/// segment) always waits out the receiver's delayed-ACK timer, and the
/// final packet does so whenever the tail flight is odd (≈ half the time).
/// `delack_timeout_secs` is the receiver's standalone timer (200 ms in
/// common stacks).
pub fn transfer_time_with_delack(
    n: u64,
    p: LossProb,
    params: &ModelParams,
    delack_timeout_secs: f64,
) -> f64 {
    let base = transfer_time(n, p, params);
    if n == 0 || params.b < 2 {
        return base;
    }
    let stalls = if n <= 2 { 1.0 } else { 1.5 };
    base + stalls * delack_timeout_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    fn params() -> ModelParams {
        ModelParams::new(0.1, 1.0, 2, 64).unwrap()
    }

    #[test]
    fn zero_and_one_packet() {
        let pr = params();
        assert_eq!(transfer_time(0, p(0.01), &pr), 0.0);
        // One packet at negligible loss: one round + the ACK round.
        let t = transfer_time(1, p(1e-9), &pr);
        assert!((t - 0.2).abs() < 0.05, "1-packet transfer {t}s");
    }

    #[test]
    fn slow_start_packets_truncated_geometric() {
        // p → 0: everything fits in slow start.
        assert!((expected_slow_start_packets(100, p(1e-12)) - 100.0).abs() < 1e-3);
        // p = 0.1: E ≈ (1-q^n)·q/p + 1 ≈ 0.9/0.1 + 1 = 10 for large n.
        let e = expected_slow_start_packets(10_000, p(0.1));
        assert!((e - 10.0).abs() < 0.01, "E[d_ss] = {e}");
        // Never exceeds n.
        assert!(expected_slow_start_packets(5, p(0.1)) <= 5.0);
    }

    #[test]
    fn lossless_short_transfer_is_log_rounds() {
        // 63 packets from w0=1 at γ=1.5: packets after r rounds =
        // (1.5^r − 1)/0.5 → r = log1.5(32.5) ≈ 8.6 rounds, plus ACK round.
        let pr = ModelParams::new(0.1, 1.0, 2, 10_000).unwrap();
        let t = transfer_time(63, p(1e-12), &pr);
        let expect = (((63.0 * 0.5) + 1.0f64).ln() / 1.5f64.ln() + 1.0) * 0.1;
        assert!((t - expect).abs() < 1e-6, "t={t} expect={expect}");
    }

    #[test]
    fn window_cap_slows_large_lossless_transfers() {
        let small = ModelParams::new(0.1, 1.0, 2, 8).unwrap();
        let large = ModelParams::new(0.1, 1.0, 2, 512).unwrap();
        let t_small = transfer_time(2_000, p(1e-9), &small);
        let t_large = transfer_time(2_000, p(1e-9), &large);
        assert!(
            t_small > 2.0 * t_large,
            "cap must dominate: {t_small} vs {t_large}"
        );
        // Asymptotically 2000 packets at 8/0.1 = 80 pkt/s ≈ 25 s.
        assert!((t_small - 25.0).abs() < 5.0, "t_small={t_small}");
    }

    #[test]
    fn longer_transfers_take_longer() {
        let pr = params();
        let mut last = 0.0;
        for n in [1u64, 10, 100, 1_000, 10_000] {
            let t = transfer_time(n, p(0.02), &pr);
            assert!(t > last, "n={n}: {t} ≤ {last}");
            last = t;
        }
    }

    #[test]
    fn more_loss_means_slower() {
        let pr = params();
        assert!(transfer_time(1_000, p(0.05), &pr) > transfer_time(1_000, p(0.005), &pr));
    }

    #[test]
    fn large_transfers_approach_steady_state_rate() {
        let pr = params();
        let lp = p(0.02);
        let n = 200_000u64;
        let t = transfer_time(n, lp, &pr);
        let steady = n as f64 / full_model(lp, &pr);
        assert!(
            (t - steady).abs() / steady < 0.05,
            "long transfer {t}s vs pure steady state {steady}s"
        );
    }

    #[test]
    fn handshake_time_behaviour() {
        // Lossless: exactly one RTT.
        assert!((handshake_time(0.0, 0.1, 3.0) - 0.1).abs() < 1e-12);
        // 2% combined loss: RTT + 3·0.02/0.96 = 0.1 + 0.0625.
        let t = handshake_time(0.02, 0.1, 3.0);
        assert!((t - 0.1625).abs() < 1e-9, "t = {t}");
        // Matches the truncated series.
        let series: f64 = 0.1
            + (1..60)
                .map(|k| 0.02f64.powi(k) * 2f64.powi(k - 1) * 3.0)
                .sum::<f64>();
        assert!((t - series).abs() < 1e-9);
        // Monotone in loss; clamped (finite) near the divergence point.
        assert!(handshake_time(0.1, 0.1, 3.0) > t);
        assert!(handshake_time(0.49, 0.1, 3.0).is_finite());
        assert!(handshake_time(0.9, 0.1, 3.0).is_finite());
    }

    #[test]
    fn delack_correction_behaviour() {
        let pr = params();
        let lp = p(0.01);
        let base = transfer_time(100, lp, &pr);
        let with = transfer_time_with_delack(100, lp, &pr, 0.2);
        assert!((with - base - 0.3).abs() < 1e-12);
        // b = 1 receivers never delay.
        let pr1 = ModelParams::new(0.1, 1.0, 1, 64).unwrap();
        assert_eq!(
            transfer_time_with_delack(100, lp, &pr1, 0.2),
            transfer_time(100, lp, &pr1)
        );
        // Tiny transfers stall once, not 1.5 times.
        let one = transfer_time_with_delack(1, lp, &pr, 0.2);
        assert!((one - transfer_time(1, lp, &pr) - 0.2).abs() < 1e-12);
        assert_eq!(transfer_time_with_delack(0, lp, &pr, 0.2), 0.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let pr = params();
        let d = transfer_time_detailed(5_000, p(0.01), &pr);
        let sum = d.slow_start_secs + d.recovery_secs + d.steady_secs;
        assert!((d.total_secs - sum).abs() < 1e-9);
        assert!(d.slow_start_packets > 0.0);
        assert!(
            d.recovery_secs > 0.0,
            "5000 packets at 1% loss will see a loss"
        );
    }
}
