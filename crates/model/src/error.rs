//! Error types for model-parameter validation and numeric procedures.

use std::fmt;

/// Errors produced when constructing model parameters or evaluating models.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A loss probability outside `(0, 1)` was supplied where the model
    /// requires a proper probability (the closed forms divide by `p` and by
    /// `1 - p`).
    InvalidLossProbability(f64),
    /// A quantity that must be strictly positive (RTT, `T0`, MSS, …) was
    /// zero, negative, or not finite.
    NonPositive {
        /// Human-readable name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The delayed-ACK factor `b` must be at least 1 (one ACK acknowledges at
    /// least one packet).
    InvalidAckFactor(u32),
    /// A maximum-window value of zero was supplied; the receiver must be able
    /// to buffer at least one segment.
    ZeroWindow,
    /// A root-finding or fixed-point procedure failed to converge within its
    /// iteration budget.
    NoConvergence {
        /// The procedure that failed.
        what: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The requested target is outside the achievable range (e.g. asking for
    /// a TCP-friendly rate larger than `W_m / RTT`, which no loss rate can
    /// produce).
    TargetOutOfRange {
        /// Human-readable description of the target.
        what: &'static str,
        /// The rejected target value.
        value: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidLossProbability(p) => {
                write!(f, "loss probability must lie in (0, 1), got {p}")
            }
            ModelError::NonPositive { name, value } => {
                write!(
                    f,
                    "{name} must be strictly positive and finite, got {value}"
                )
            }
            ModelError::InvalidAckFactor(b) => {
                write!(f, "delayed-ACK factor b must be >= 1, got {b}")
            }
            ModelError::ZeroWindow => write!(f, "maximum window must be at least 1 packet"),
            ModelError::NoConvergence { what, iterations } => {
                write!(f, "{what} did not converge after {iterations} iterations")
            }
            ModelError::TargetOutOfRange { what, value } => {
                write!(f, "{what} out of achievable range: {value}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::InvalidLossProbability(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = ModelError::NonPositive {
            name: "rtt",
            value: -0.1,
        };
        assert!(e.to_string().contains("rtt"));
        assert!(e.to_string().contains("-0.1"));
        let e = ModelError::InvalidAckFactor(0);
        assert!(e.to_string().contains('0'));
        let e = ModelError::ZeroWindow;
        assert!(e.to_string().contains("window"));
        let e = ModelError::NoConvergence {
            what: "bisection",
            iterations: 64,
        };
        assert!(e.to_string().contains("bisection"));
        let e = ModelError::TargetOutOfRange {
            what: "rate",
            value: 1e9,
        };
        assert!(e.to_string().contains("rate"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::ZeroWindow);
    }

    #[test]
    fn errors_compare_equal() {
        assert_eq!(
            ModelError::InvalidLossProbability(0.0),
            ModelError::InvalidLossProbability(0.0)
        );
        assert_ne!(ModelError::ZeroWindow, ModelError::InvalidAckFactor(0));
    }
}
