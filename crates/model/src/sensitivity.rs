//! Sensitivity analysis: elasticities of the full model `B(p)` with respect
//! to its inputs.
//!
//! The elasticity `E_x = ∂ln B / ∂ln x` says "a 1% increase in `x` changes
//! the rate by `E_x` percent" — the natural summary of how the model
//! responds to measurement error in `p`, `RTT` or `T0`. Classic anchors:
//! in the TD-only regime `B ∝ 1/(RTT·√p)`, so `E_p = −1/2` and
//! `E_RTT = −1`; in the timeout-dominated regime the `p`-sensitivity
//! steepens toward `−3/2` (the extra `p·(1+32p²)` factor of Eq. (33)) and
//! `T0` takes over from `RTT`. These limits make good tests, and the
//! general values matter to anyone feeding the equation noisy measurements
//! (a TFRC endpoint, say).

use crate::error::ModelError;
use crate::params::ModelParams;
use crate::sendrate::full_model;
use crate::units::LossProb;

/// Elasticities of `B` at an operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elasticities {
    /// `∂ln B / ∂ln p` (negative; −1/2 in the TD regime, steeper with
    /// timeouts).
    pub wrt_p: f64,
    /// `∂ln B / ∂ln RTT` (−1 when round trips dominate, → 0 when timeouts
    /// or the window cap dominate).
    pub wrt_rtt: f64,
    /// `∂ln B / ∂ln T0` (0 without timeouts, approaching −1 when timeout
    /// idle time dominates).
    pub wrt_t0: f64,
}

/// Relative step for the central differences.
const H: f64 = 1e-4;

fn log_deriv<F: Fn(f64) -> Result<f64, ModelError>>(x: f64, f: F) -> Result<f64, ModelError> {
    let up = f(x * (1.0 + H))?;
    let down = f(x * (1.0 - H))?;
    Ok((up.ln() - down.ln()) / ((1.0 + H) / (1.0 - H)).ln())
}

/// Computes the elasticities of the full model at `(p, params)` by central
/// log-differences.
///
/// Errors only if a perturbed parameter set fails validation — impossible
/// for operating points already accepted by [`ModelParams::new`], but
/// propagated rather than asserted so callers keep a panic-free path.
pub fn elasticities(p: LossProb, params: &ModelParams) -> Result<Elasticities, ModelError> {
    let base = *params;
    let wrt_p = log_deriv(p.get(), |pv| {
        Ok(full_model(
            LossProb::new(pv.clamp(1e-12, 1.0 - 1e-12))?,
            &base,
        ))
    })?;
    let wrt_rtt = log_deriv(params.rtt.get(), |rtt| {
        let pr = ModelParams::new(rtt, base.t0.get(), base.b, base.wmax)?;
        Ok(full_model(p, &pr))
    })?;
    let wrt_t0 = log_deriv(params.t0.get(), |t0| {
        let pr = ModelParams::new(base.rtt.get(), t0, base.b, base.wmax)?;
        Ok(full_model(p, &pr))
    })?;
    Ok(Elasticities {
        wrt_p,
        wrt_rtt,
        wrt_t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    #[test]
    fn td_regime_anchors() {
        // Low loss, big window headroom, T0 comparable to RTT so timeouts
        // are rare and cheap: B ≈ c/(RTT·√p).
        let params = ModelParams::new(0.2, 0.2, 2, 10_000).unwrap();
        let e = elasticities(p(1e-4), &params).unwrap();
        assert!((e.wrt_p - (-0.5)).abs() < 0.05, "E_p = {}", e.wrt_p);
        assert!((e.wrt_rtt - (-1.0)).abs() < 0.05, "E_rtt = {}", e.wrt_rtt);
        assert!(e.wrt_t0.abs() < 0.05, "E_t0 = {}", e.wrt_t0);
    }

    #[test]
    fn timeout_regime_steepens_p_and_hands_rtt_to_t0() {
        // Heavy loss with a long T0: timeouts dominate the denominator.
        let params = ModelParams::new(0.1, 5.0, 2, 10_000).unwrap();
        let e = elasticities(p(0.2), &params).unwrap();
        assert!(
            e.wrt_p < -0.9,
            "E_p = {} should be much steeper than -1/2",
            e.wrt_p
        );
        assert!(e.wrt_t0 < -0.7, "E_t0 = {} should approach -1", e.wrt_t0);
        assert!(e.wrt_rtt > -0.3, "E_rtt = {} should fade", e.wrt_rtt);
    }

    #[test]
    fn window_limited_regime_kills_p_sensitivity() {
        // Deep in the W_m clamp, small changes in p barely matter.
        let params = ModelParams::new(0.2, 2.0, 2, 6).unwrap();
        let e = elasticities(p(1e-5), &params).unwrap();
        assert!(e.wrt_p.abs() < 0.1, "E_p = {}", e.wrt_p);
        // The ceiling is W_m/RTT-ish: RTT elasticity ≈ −1.
        assert!((e.wrt_rtt - (-1.0)).abs() < 0.15, "E_rtt = {}", e.wrt_rtt);
    }

    #[test]
    fn elasticities_sum_where_scaling_applies() {
        // B has dimensions 1/time: scaling both RTT and T0 by λ scales B by
        // 1/λ, so E_rtt + E_t0 = −1 at any operating point (p dimensionless,
        // W_m in packets).
        for (rtt, t0, pv) in [(0.1, 1.0, 0.01), (0.3, 3.0, 0.05), (0.05, 0.5, 0.15)] {
            let params = ModelParams::new(rtt, t0, 2, 10_000).unwrap();
            let e = elasticities(p(pv), &params).unwrap();
            assert!(
                (e.wrt_rtt + e.wrt_t0 - (-1.0)).abs() < 0.02,
                "scaling identity violated: {} + {} ≠ -1",
                e.wrt_rtt,
                e.wrt_t0
            );
        }
    }

    #[test]
    fn all_elasticities_nonpositive() {
        // More loss, longer round trips, longer timeouts: never faster.
        for &pv in &[1e-4, 1e-3, 0.01, 0.05, 0.2] {
            let params = ModelParams::new(0.2, 2.0, 2, 64).unwrap();
            let e = elasticities(p(pv), &params).unwrap();
            assert!(e.wrt_p <= 1e-6, "E_p = {} at p={pv}", e.wrt_p);
            assert!(e.wrt_rtt <= 1e-6);
            assert!(e.wrt_t0 <= 1e-6);
        }
    }
}
