//! Window-process expectations for the triple-duplicate-ACK regime (§II-A).
//!
//! Between two TD loss indications the congestion window grows linearly with
//! slope `1/b` packets per round; a TD halves it. Treating the end-of-period
//! window sizes `{W_i}` and period lengths (in rounds) `{X_i}` as i.i.d.
//! sequences yields the closed forms implemented here:
//!
//! * `E[W_u]` — Eq. (13): mean unconstrained window at the end of a TD period;
//! * `E[X]`   — Eq. (15): mean number of rounds in a TD period;
//! * `E[A]`   — Eq. (16): mean duration of a TD period, `RTT · (E[X] + 1)`;
//! * small-`p` asymptotes — Eqs. (14) and (17).

use crate::units::LossProb;

/// `E[W_u]`, the mean unconstrained window size at the end of a TD period —
/// Eq. (13) of the paper:
///
/// ```text
/// E[W] = (2+b)/(3b) + sqrt( 8(1-p)/(3bp) + ((2+b)/(3b))^2 )
/// ```
///
/// `b` is the delayed-ACK factor. The value is in packets and always exceeds
/// 1 for `p < 1`.
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
//= pftk#eq-13
pub fn expected_window(p: LossProb, b: u32) -> f64 {
    let p = p.get();
    let b = f64::from(b);
    let c = (2.0 + b) / (3.0 * b);
    c + (8.0 * (1.0 - p) / (3.0 * b * p) + c * c).sqrt()
}

/// Small-`p` asymptote of `E[W]` — Eq. (14): `sqrt(8 / (3 b p))`.
//= pftk#eq-14
pub fn expected_window_asymptotic(p: LossProb, b: u32) -> f64 {
    (8.0 / (3.0 * f64::from(b) * p.get())).sqrt()
}

/// `E[X]`, the mean number of rounds in a TD period — Eq. (15):
///
/// ```text
/// E[X] = (2+b)/6 + sqrt( 2b(1-p)/(3p) + ((2+b)/6)^2 )
/// ```
//= pftk#eq-15
pub fn expected_rounds(p: LossProb, b: u32) -> f64 {
    let p = p.get();
    let b = f64::from(b);
    let c = (2.0 + b) / 6.0;
    c + (2.0 * b * (1.0 - p) / (3.0 * p) + c * c).sqrt()
}

/// Small-`p` asymptote of `E[X]` — Eq. (17): `sqrt(2b / (3p))`.
//= pftk#eq-17
pub fn expected_rounds_asymptotic(p: LossProb, b: u32) -> f64 {
    (2.0 * f64::from(b) / (3.0 * p.get())).sqrt()
}

/// `E[A]`, the mean duration of a TD period — Eq. (16):
/// `RTT · (E[X] + 1)` (the `+1` is the extra round in which the triple
/// duplicate ACKs arrive).
//= pftk#eq-16
pub fn expected_tdp_duration(p: LossProb, b: u32, rtt_secs: f64) -> f64 {
    rtt_secs * (expected_rounds(p, b) + 1.0)
}

/// Mean number of packets sent in a TD period, `E[Y]` — Eq. (5):
/// `(1-p)/p + E[W]`.
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
//= pftk#eq-5
pub fn expected_tdp_packets(p: LossProb, b: u32) -> f64 {
    p.survival() / p.get() + expected_window(p, b)
}

/// `E[X]` when the window is clamped at `W_m` (§II-C):
///
/// ```text
/// E[X] = (b/8) W_m + (1-p)/(p W_m) + 1
/// ```
///
/// Derived from `E[U] = (b/2) W_m` linear-growth rounds plus
/// `E[V] = (1-p)/(p W_m) + 1 − (3b/8) W_m` constant-window rounds.
//= pftk#eq-31
pub fn expected_rounds_limited(p: LossProb, b: u32, wmax: u32) -> f64 {
    let wm = f64::from(wmax);
    f64::from(b) / 8.0 * wm + p.survival() / (p.get() * wm) + 1.0
}

/// The identity of Eq. (11): `E[W] = (2/b) E[X]` (equivalently
/// `E[X] = (b/2) E[W]`), which ties the two closed forms together.
/// Exposed for tests and for the Markov model's sanity checks.
//= pftk#eq-11
pub fn rounds_from_window(expected_window: f64, b: u32) -> f64 {
    f64::from(b) / 2.0 * expected_window
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    #[test]
    //= pftk#eq-13 type=test
    fn window_matches_hand_computation() {
        // b = 1, p = 0.5: c = 1, E[W] = 1 + sqrt(8*0.5/1.5 + 1)
        //                            = 1 + sqrt(8/3 * 0.5/0.5 ... )
        // Compute directly: 8(1-p)/(3bp) = 8*0.5/(3*0.5) = 8/3.
        let w = expected_window(p(0.5), 1);
        let expect = 1.0 + (8.0 / 3.0 + 1.0f64).sqrt();
        assert!((w - expect).abs() < 1e-12);
    }

    #[test]
    fn window_decreases_with_loss() {
        let mut last = f64::INFINITY;
        for &pv in &[0.001, 0.01, 0.05, 0.1, 0.3, 0.7] {
            let w = expected_window(p(pv), 2);
            assert!(w < last, "E[W] must decrease in p");
            last = w;
        }
    }

    #[test]
    fn window_decreases_with_b() {
        // More packets per ACK means slower growth, hence smaller windows.
        assert!(expected_window(p(0.01), 1) > expected_window(p(0.01), 2));
        assert!(expected_window(p(0.01), 2) > expected_window(p(0.01), 4));
    }

    #[test]
    //= pftk#eq-14 type=test
    fn asymptote_agrees_at_small_p() {
        for &pv in &[1e-4, 1e-5, 1e-6] {
            let exact = expected_window(p(pv), 2);
            let approx = expected_window_asymptotic(p(pv), 2);
            let rel = (exact - approx).abs() / exact;
            // The neglected terms are O(1) against O(1/sqrt(p)).
            assert!(rel < 40.0 * pv.sqrt(), "rel err {rel} too large at p={pv}");
        }
    }

    #[test]
    //= pftk#eq-15 type=test
    //= pftk#eq-11 type=test
    fn rounds_match_window_via_eq_11() {
        // Eq. (11): E[X] = (b/2) E[W]; Eqs. (13) & (15) were derived together
        // so the identity must hold exactly.
        for &b in &[1u32, 2, 3, 8] {
            for &pv in &[0.001, 0.01, 0.1, 0.5, 0.9] {
                let w = expected_window(p(pv), b);
                let x = expected_rounds(p(pv), b);
                assert!(
                    (x - rounds_from_window(w, b)).abs() < 1e-9,
                    "Eq.(11) violated at b={b}, p={pv}: X={x}, bW/2={}",
                    rounds_from_window(w, b)
                );
            }
        }
    }

    #[test]
    //= pftk#eq-17 type=test
    fn rounds_asymptote_small_p() {
        let exact = expected_rounds(p(1e-6), 2);
        let approx = expected_rounds_asymptotic(p(1e-6), 2);
        assert!((exact - approx).abs() / exact < 0.01);
    }

    #[test]
    //= pftk#eq-16 type=test
    fn tdp_duration_is_rtt_times_rounds_plus_one() {
        let pv = p(0.02);
        let d = expected_tdp_duration(pv, 2, 0.25);
        assert!((d - 0.25 * (expected_rounds(pv, 2) + 1.0)).abs() < 1e-12);
    }

    #[test]
    //= pftk#eq-5 type=test
    fn tdp_packets_eq_5() {
        let pv = p(0.1);
        let y = expected_tdp_packets(pv, 2);
        assert!((y - (0.9 / 0.1 + expected_window(pv, 2))).abs() < 1e-12);
    }

    #[test]
    //= pftk#eq-31 type=test
    fn limited_rounds_formula() {
        // b=2, Wm=10, p=0.1: E[X] = 2/8*10 + 0.9/(0.1*10) + 1 = 2.5+0.9+1=4.4
        let x = expected_rounds_limited(p(0.1), 2, 10);
        assert!((x - 4.4).abs() < 1e-12);
    }

    #[test]
    fn limited_rounds_grow_as_p_shrinks() {
        // With a clamped window, rare losses mean long constant-window phases.
        assert!(expected_rounds_limited(p(0.001), 2, 8) > expected_rounds_limited(p(0.01), 2, 8));
    }

    #[test]
    fn window_continuous_near_extremes() {
        // No NaN/inf anywhere in the valid domain.
        for &pv in &[1e-9, 1e-3, 0.5, 0.999_999] {
            for &b in &[1u32, 2, 16] {
                assert!(expected_window(p(pv), b).is_finite());
                assert!(expected_rounds(p(pv), b).is_finite());
            }
        }
    }
}
