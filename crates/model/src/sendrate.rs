//! Steady-state send-rate models (§II).
//!
//! Three models of increasing fidelity, all returning packets per second:
//!
//! * [`td_only`] — the "TD only" baseline of Mathis et al. / Mahdavi–Floyd
//!   (refs \[8\], \[9\] of the paper): congestion avoidance with losses signalled
//!   exclusively by triple-duplicate ACKs, Eq. (20):
//!   `B(p) = (1/RTT)·sqrt(3/(2bp))`.
//! * [`full_model`] — the paper's contribution, Eq. (32): captures timeouts
//!   with exponential backoff *and* the receiver-window limitation.
//! * [`approx_model`] — Eq. (33), the widely quoted closed form
//!   (the "PFTK equation" used by TFRC, RFC 5348):
//!
//!   ```text
//!                             W_m                          1
//!   B(p) = min( ───, ───────────────────────────────────────────────────────────── )
//!                RTT   RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1 + 32p²)
//!   ```
//!
//! Every function takes the loss rate as a validated [`LossProb`] and the
//! remaining inputs as [`ModelParams`].

use crate::params::ModelParams;
use crate::timeout::{
    backoff_polynomial, expected_timeout_retransmissions, expected_timeout_sequence_duration,
    q_hat_exact,
};
use crate::units::LossProb;
use crate::window::{
    expected_rounds, expected_rounds_limited, expected_tdp_packets, expected_window,
};

/// Which branch of the full model Eq. (32) applied at a given `(p, params)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// `E[W_u] < W_m`: the window is effectively unconstrained and the
    /// TD+TO expression of Eq. (28) applies.
    Unconstrained,
    /// `E[W_u] ≥ W_m`: the receiver window clamps the process (§II-C).
    WindowLimited,
}

/// Detailed output of the full model: the rate plus every intermediate
/// quantity, useful for debugging, tables, and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FullModelOutput {
    /// Predicted send rate, packets/second.
    pub rate: f64,
    /// Which branch of Eq. (32) was taken.
    pub regime: Regime,
    /// `E[W_u]` from Eq. (13) (unconstrained mean peak window).
    pub expected_window_unconstrained: f64,
    /// Effective `E[W]` used: `min(E[W_u], W_m)`.
    pub expected_window: f64,
    /// `Q̂(E[W])` — probability a loss indication is a timeout, Eq. (24)/(26).
    pub timeout_probability: f64,
    /// Mean packets per TD period, `E[Y]` (numerator's first two terms).
    pub packets_per_tdp: f64,
    /// Mean TD-period duration in seconds (denominator's first term).
    pub tdp_duration: f64,
}

/// The TD-only baseline, Eq. (20): `(1/RTT)·sqrt(3/(2bp))`.
///
/// This is the model of refs \[8\] and \[9\] (with \[9\]'s delayed-ACK factor
/// `b`); it ignores timeouts and the receiver window, which is exactly the
/// failure mode the paper's evaluation (Figs. 7–10) demonstrates.
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
//= pftk#eq-20
pub fn td_only(p: LossProb, params: &ModelParams) -> f64 {
    let b = f64::from(params.b);
    (3.0 / (2.0 * b * p.get())).sqrt() / params.rtt.get()
}

/// The exact TD-only expression, Eq. (19) — the ratio `E[Y]/E[A]` before the
/// small-`p` expansion that yields Eq. (20). Used by tests to show Eq. (20)
/// is its asymptote and by the ablation benchmarks.
//= pftk#eq-19
pub fn td_only_exact(p: LossProb, params: &ModelParams) -> f64 {
    let ey = expected_tdp_packets(p, params.b);
    let ea = params.rtt.get() * (expected_rounds(p, params.b) + 1.0);
    ey / ea
}

/// The TD+TO model without window limitation — Eq. (28):
///
/// ```text
///            (1-p)/p + E[W] + Q̂(E[W]) · 1/(1-p)
/// B(p) = ─────────────────────────────────────────────
///          RTT·(E[X]+1) + Q̂(E[W]) · T0 · f(p)/(1-p)
/// ```
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
//= pftk#eq-28
//= pftk#eq-26
pub fn td_to_model(p: LossProb, params: &ModelParams) -> f64 {
    let ew = expected_window(p, params.b);
    let q = q_hat_exact(p, ew);
    let numer = p.survival() / p.get() + ew + q * expected_timeout_retransmissions(p);
    let denom = params.rtt.get() * (expected_rounds(p, params.b) + 1.0)
        + q * expected_timeout_sequence_duration(p, params.t0.get());
    numer / denom
}

/// The **full model**, Eq. (32), with both branches, returning every
/// intermediate quantity. See [`full_model`] for the rate-only wrapper.
//= pftk#eq-32
pub fn full_model_detailed(p: LossProb, params: &ModelParams) -> FullModelOutput {
    let ewu = expected_window(p, params.b);
    let wm = f64::from(params.wmax);
    let rtt = params.rtt.get();
    let t0 = params.t0.get();
    let one_minus_p = p.survival();
    let pv = p.get();

    if ewu < wm {
        let q = q_hat_exact(p, ewu);
        let packets_per_tdp = one_minus_p / pv + ewu;
        let tdp_duration = rtt * (expected_rounds(p, params.b) + 1.0);
        let numer = packets_per_tdp + q / one_minus_p;
        let denom = tdp_duration + q * t0 * backoff_polynomial(p) / one_minus_p;
        FullModelOutput {
            rate: numer / denom,
            regime: Regime::Unconstrained,
            expected_window_unconstrained: ewu,
            expected_window: ewu,
            timeout_probability: q,
            packets_per_tdp,
            tdp_duration,
        }
    } else {
        let q = q_hat_exact(p, wm);
        let packets_per_tdp = one_minus_p / pv + wm;
        // E[X] + 1 = b/8·W_m + (1-p)/(p·W_m) + 2 (§II-C).
        let tdp_duration = rtt * (expected_rounds_limited(p, params.b, params.wmax) + 1.0);
        let numer = packets_per_tdp + q / one_minus_p;
        let denom = tdp_duration + q * t0 * backoff_polynomial(p) / one_minus_p;
        FullModelOutput {
            rate: numer / denom,
            regime: Regime::WindowLimited,
            expected_window_unconstrained: ewu,
            expected_window: wm,
            timeout_probability: q,
            packets_per_tdp,
            tdp_duration,
        }
    }
}

/// The **full model** B(p) — Eq. (32) — in packets per second.
///
/// ```
/// use pftk_model::{params::ModelParams, units::LossProb, sendrate::full_model};
///
/// let params = ModelParams::new(0.243, 2.495, 2, 6).unwrap();
/// let rate = full_model(LossProb::new(0.02).unwrap(), &params);
/// assert!(rate > 0.0 && rate <= params.window_limited_rate());
/// ```
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
pub fn full_model(p: LossProb, params: &ModelParams) -> f64 {
    full_model_detailed(p, params).rate
}

/// The **approximate model** — Eq. (33) — the "PFTK equation":
///
/// ```text
/// B(p) = min( W_m/RTT,
///             1 / ( RTT·sqrt(2bp/3) + T0·min(1, 3·sqrt(3bp/8))·p·(1+32p²) ) )
/// ```
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
//= pftk#eq-33
pub fn approx_model(p: LossProb, params: &ModelParams) -> f64 {
    let pv = p.get();
    let b = f64::from(params.b);
    let rtt = params.rtt.get();
    let t0 = params.t0.get();
    let td_term = rtt * (2.0 * b * pv / 3.0).sqrt();
    let to_term = t0 * (3.0 * (3.0 * b * pv / 8.0).sqrt()).min(1.0) * pv * (1.0 + 32.0 * pv * pv);
    (f64::from(params.wmax) / rtt).min(1.0 / (td_term + to_term))
}

/// Evaluates one of the three models by tag — convenient for sweeping all
/// models over a grid in the figure-regeneration binaries and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Eq. (20), refs \[8\]/\[9\].
    TdOnly,
    /// Eq. (32).
    Full,
    /// Eq. (33).
    Approximate,
}

impl ModelKind {
    /// All three model kinds, in the order the paper's figures present them.
    pub const ALL: [ModelKind; 3] = [ModelKind::TdOnly, ModelKind::Full, ModelKind::Approximate];

    /// Evaluates this model at `(p, params)`.
    pub fn evaluate(self, p: LossProb, params: &ModelParams) -> f64 {
        match self {
            ModelKind::TdOnly => td_only(p, params),
            ModelKind::Full => full_model(p, params),
            ModelKind::Approximate => approx_model(p, params),
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::TdOnly => "TD only",
            ModelKind::Full => "proposed (full)",
            ModelKind::Approximate => "proposed (approx.)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    fn params(rtt: f64, t0: f64, b: u32, wm: u32) -> ModelParams {
        ModelParams::new(rtt, t0, b, wm).unwrap()
    }

    #[test]
    //= pftk#eq-20 type=test
    fn td_only_closed_form() {
        // b = 1, RTT = 1: B = sqrt(3/(2p)); at p = 3/2·10⁻² → sqrt(100) = 10.
        let pr = params(1.0, 1.0, 1, 1_000_000);
        let rate = td_only(p(0.015), &pr);
        assert!((rate - 10.0).abs() < 1e-9);
    }

    #[test]
    fn td_only_scales_inverse_rtt() {
        let a = td_only(p(0.01), &params(0.1, 1.0, 2, 1_000_000));
        let b = td_only(p(0.01), &params(0.2, 1.0, 2, 1_000_000));
        assert!((a / b - 2.0).abs() < 1e-12);
    }

    #[test]
    //= pftk#eq-19 type=test
    fn td_only_exact_asymptote() {
        // Eq. (20) is the small-p limit of Eq. (19).
        let pr = params(0.2, 1.0, 2, u32::MAX);
        for &pv in &[1e-5, 1e-6] {
            let exact = td_only_exact(p(pv), &pr);
            let approx = td_only(p(pv), &pr);
            assert!(
                (exact - approx).abs() / exact < 100.0 * pv.sqrt(),
                "p={pv}: exact={exact}, approx={approx}"
            );
        }
    }

    #[test]
    //= pftk#eq-28 type=test
    fn full_model_below_td_only() {
        // Timeouts can only slow TCP down: the full model never exceeds the
        // exact TD-only rate at the same (p, params).
        let pr = params(0.25, 2.0, 2, u32::MAX);
        for &pv in &[0.001, 0.01, 0.05, 0.1, 0.3] {
            let full = full_model(p(pv), &pr);
            let td = td_only_exact(p(pv), &pr);
            assert!(full <= td * (1.0 + 1e-12), "p={pv}: full={full} > td={td}");
        }
    }

    #[test]
    fn full_model_monotone_decreasing_in_p() {
        let pr = params(0.2, 1.5, 2, 1_000);
        let mut last = f64::INFINITY;
        for i in 1..200 {
            let pv = f64::from(i) * 0.004;
            let r = full_model(p(pv), &pr);
            assert!(r < last, "B(p) must decrease, violated at p={pv}");
            assert!(r.is_finite() && r > 0.0);
            last = r;
        }
    }

    #[test]
    fn full_model_respects_window_ceiling() {
        let pr = params(0.2, 1.5, 2, 8);
        for &pv in &[1e-6, 1e-4, 0.01, 0.1, 0.5] {
            let r = full_model(p(pv), &pr);
            assert!(
                r <= pr.window_limited_rate() * (1.0 + 1e-9),
                "p={pv}: rate {r} above W_m/RTT {}",
                pr.window_limited_rate()
            );
        }
    }

    #[test]
    //= pftk#eq-32 type=test
    fn regime_switches_at_wm() {
        let pr = params(0.2, 1.5, 2, 8);
        // At tiny p, E[W_u] >> 8 → window-limited.
        assert_eq!(
            full_model_detailed(p(1e-5), &pr).regime,
            Regime::WindowLimited
        );
        // At huge p, E[W_u] ~ 1 → unconstrained branch.
        assert_eq!(
            full_model_detailed(p(0.5), &pr).regime,
            Regime::Unconstrained
        );
    }

    #[test]
    fn branches_agree_at_crossover() {
        // Where E[W_u] == W_m the two branches of Eq. (32) coincide (the
        // limited formulas were derived by substituting E[W] = W_m).
        let pr = params(0.2, 1.5, 2, 12);
        // Find p where E[W_u] crosses 12 by bisection.
        let (mut lo, mut hi) = (1e-6, 0.9);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if expected_window(p(mid), 2) > 12.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let below = full_model(p(lo), &pr); // barely window-limited
        let above = full_model(p(hi), &pr); // barely unconstrained
        assert!(
            (below - above).abs() / above < 1e-3,
            "discontinuity at crossover: {below} vs {above}"
        );
    }

    #[test]
    //= pftk#eq-33 type=test
    fn approx_tracks_full_model() {
        // §III: "(33) is indeed a very good approximation of (32)".
        // Check over the realistic range of the paper's traces.
        let pr = params(0.25, 2.4, 2, 48);
        // Tight at low-to-moderate loss…
        for &pv in &[0.002, 0.01, 0.03] {
            let f = full_model(p(pv), &pr);
            let a = approx_model(p(pv), &pr);
            let rel = (f - a).abs() / f;
            assert!(rel < 0.05, "p={pv}: full={f}, approx={a}, rel={rel}");
        }
        // …and still the right magnitude at the high-loss end of the paper's
        // traces (Eq. (33) drops lower-order terms that matter as p grows).
        for &pv in &[0.08, 0.15] {
            let f = full_model(p(pv), &pr);
            let a = approx_model(p(pv), &pr);
            let rel = (f - a).abs() / f;
            assert!(rel < 0.5, "p={pv}: full={f}, approx={a}, rel={rel}");
        }
    }

    #[test]
    fn approx_model_window_clamp() {
        let pr = params(0.25, 2.4, 2, 6);
        assert!((approx_model(p(1e-6), &pr) - 24.0).abs() < 1e-9);
    }

    #[test]
    //= pftk#eq-26 type=test
    fn td_to_model_equals_full_when_unconstrained() {
        let pr = params(0.25, 2.4, 2, u32::MAX);
        for &pv in &[0.01, 0.1, 0.4] {
            let a = td_to_model(p(pv), &pr);
            let b = full_model(p(pv), &pr);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn model_kind_dispatch() {
        let pr = params(0.2, 2.0, 2, 32);
        let pv = p(0.02);
        assert_eq!(ModelKind::TdOnly.evaluate(pv, &pr), td_only(pv, &pr));
        assert_eq!(ModelKind::Full.evaluate(pv, &pr), full_model(pv, &pr));
        assert_eq!(
            ModelKind::Approximate.evaluate(pv, &pr),
            approx_model(pv, &pr)
        );
        assert_eq!(ModelKind::ALL.len(), 3);
        assert_eq!(ModelKind::TdOnly.label(), "TD only");
    }

    #[test]
    fn paper_figure_7a_parameters_sane() {
        // manic→baskerville: RTT=0.243, T0=2.495, W_m=6. At the measured
        // p≈0.0126 (735/58120) the hour-long trace sent 58 120 packets
        // (≈16 pkt/s). The full model should land in the right decade and
        // below the TD-only prediction.
        let pr = params(0.243, 2.495, 2, 6);
        let pv = p(735.0 / 58_120.0);
        let full = full_model(pv, &pr);
        let td = td_only(pv, &pr);
        assert!(full < td);
        assert!(
            full > 4.0 && full < 40.0,
            "full-model rate {full} pkt/s not in decade"
        );
    }

    #[test]
    fn no_pathologies_at_extreme_p() {
        let pr = params(0.2, 1.0, 2, 64);
        for &pv in &[1e-9, 1e-6, 0.5, 0.99, 0.999_999] {
            let r = full_model(p(pv), &pr);
            assert!(r.is_finite() && r >= 0.0, "p={pv} gave {r}");
            let a = approx_model(p(pv), &pr);
            assert!(a.is_finite() && a >= 0.0);
        }
    }
}
