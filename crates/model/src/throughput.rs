//! Receiver throughput of a bulk-transfer flow (§V).
//!
//! *Send rate* `B(p)` counts every transmission, including retransmissions
//! that never reach (or have already reached) the receiver. *Throughput*
//! `T(p)` counts only data that arrives. The paper modifies the numerator of
//! Eq. (21):
//!
//! * per TD period the receiver gets `E[Y'] = E[α] + E[W] − E[β] − 1 =
//!   (1−p)/p + E[W]/2` packets (the β packets of the final round are lost);
//! * per timeout sequence exactly one packet gets through
//!   (`E[R'] = 1`, Eq. (35)).
//!
//! Eq. (37) of the paper specializes to `b = 2`; [`throughput`] here keeps
//! `b` general (§V's derivation goes through unchanged) and
//! [`throughput_paper_b2`] evaluates the literal Eq. (37)/(38) text — the two
//! agree when `b = 2` (tested).

use crate::params::ModelParams;
use crate::timeout::{backoff_polynomial, q_hat_exact};
use crate::units::LossProb;
use crate::window::{expected_rounds, expected_rounds_limited, expected_window};

/// Receiver throughput `T(p)` in packets per second — Eq. (34) with the
/// §V numerator substitutions, both regimes of Eq. (37), general `b`.
///
/// A `[[domain]]` root: proven total over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
pub fn throughput(p: LossProb, params: &ModelParams) -> f64 {
    let ewu = expected_window(p, params.b);
    let wm = f64::from(params.wmax);
    let rtt = params.rtt.get();
    let t0 = params.t0.get();
    let pv = p.get();
    let one_minus_p = p.survival();

    let (w_eff, rounds) = if ewu < wm {
        (ewu, expected_rounds(p, params.b))
    } else {
        (wm, expected_rounds_limited(p, params.b, params.wmax))
    };
    let q = q_hat_exact(p, w_eff);
    // E[Y'] + Q·E[R'] with E[R'] = 1 (Eq. (35)(36)).
    let numer = one_minus_p / pv + w_eff / 2.0 + q;
    // Same denominator as the send-rate model: E[A] + Q·E[Z^TO].
    let denom = rtt * (rounds + 1.0) + q * t0 * backoff_polynomial(p) / one_minus_p;
    numer / denom
}

/// `W(p)` of Eq. (38) — `E[W_u]` with `b` fixed at 2:
/// `W(p) = 2/3 + sqrt(4(1−p)/(3p) + 4/9)`.
pub fn w_of_p(p: LossProb) -> f64 {
    let pv = p.get();
    2.0 / 3.0 + (4.0 * (1.0 - pv) / (3.0 * pv) + 4.0 / 9.0).sqrt()
}

/// The literal Eq. (37)/(38) of the paper (which hard-codes `b = 2`).
pub fn throughput_paper_b2(p: LossProb, rtt_secs: f64, t0_secs: f64, wmax: u32) -> f64 {
    let pv = p.get();
    let one_minus_p = p.survival();
    let wm = f64::from(wmax);
    let g = backoff_polynomial(p);
    let wp = w_of_p(p);
    if wp < wm {
        let q = q_hat_exact(p, wp);
        (one_minus_p / pv + wp / 2.0 + q) / (rtt_secs * (wp + 1.0) + q * g * t0_secs / one_minus_p)
    } else {
        let q = q_hat_exact(p, wm);
        (one_minus_p / pv + wm / 2.0 + q)
            / (rtt_secs * (wm / 4.0 + one_minus_p / (pv * wm) + 2.0)
                + q * g * t0_secs / one_minus_p)
    }
}

/// Goodput efficiency `T(p)/B(p)` — the fraction of transmissions that are
/// useful. Always in `(0, 1]`; decreases with `p` as retransmissions and
/// final-round losses mount.
pub fn efficiency(p: LossProb, params: &ModelParams) -> f64 {
    throughput(p, params) / crate::sendrate::full_model(p, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    fn params(rtt: f64, t0: f64, b: u32, wm: u32) -> ModelParams {
        ModelParams::new(rtt, t0, b, wm).unwrap()
    }

    #[test]
    fn w_of_p_is_expected_window_at_b2() {
        for &pv in &[0.001, 0.01, 0.1, 0.5] {
            let a = w_of_p(p(pv));
            let b = expected_window(p(pv), 2);
            assert!((a - b).abs() < 1e-12, "p={pv}: {a} vs {b}");
        }
    }

    #[test]
    fn generic_b_matches_paper_form_at_b2() {
        let pr = params(0.47, 3.2, 2, 12);
        for &pv in &[0.001, 0.005, 0.02, 0.08, 0.2, 0.5] {
            let a = throughput(p(pv), &pr);
            let b = throughput_paper_b2(p(pv), 0.47, 3.2, 12);
            assert!(
                (a - b).abs() / a < 1e-12,
                "p={pv}: generic {a} vs paper {b}"
            );
        }
    }

    #[test]
    fn throughput_below_send_rate() {
        // Fig. 13's message: T(p) ≤ B(p) everywhere; retransmitted copies
        // don't count.
        let pr = params(0.47, 3.2, 2, 12);
        for i in 1..100 {
            let pv = p(f64::from(i) * 0.009);
            let t = throughput(pv, &pr);
            let b = crate::sendrate::full_model(pv, &pr);
            assert!(t <= b * (1.0 + 1e-12), "p={:?}: T={t} > B={b}", pv);
        }
    }

    #[test]
    fn gap_grows_with_p() {
        // At small p nearly every packet is useful; at large p the ratio
        // T/B collapses.
        let pr = params(0.47, 3.2, 2, 12);
        let eff_small = efficiency(p(0.001), &pr);
        let eff_large = efficiency(p(0.3), &pr);
        assert!(eff_small > 0.9, "efficiency at p=0.001 was {eff_small}");
        assert!(eff_large < eff_small);
    }

    #[test]
    fn efficiency_bounded() {
        let pr = params(0.2, 2.0, 2, 32);
        for &pv in &[1e-4, 0.01, 0.1, 0.5, 0.9] {
            let e = efficiency(p(pv), &pr);
            assert!(e > 0.0 && e <= 1.0 + 1e-9, "p={pv}: efficiency {e}");
        }
    }

    #[test]
    fn throughput_monotone_decreasing() {
        let pr = params(0.47, 3.2, 2, 12);
        let mut last = f64::INFINITY;
        for i in 1..150 {
            let t = throughput(p(f64::from(i) * 0.006), &pr);
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn throughput_finite_at_extremes() {
        let pr = params(0.47, 3.2, 2, 12);
        for &pv in &[1e-9, 0.999] {
            assert!(throughput(p(pv), &pr).is_finite());
        }
    }
}
