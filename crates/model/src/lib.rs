//! # pftk-model
//!
//! Analytic models of the steady-state performance of a bulk-transfer TCP
//! Reno flow, from J. Padhye, V. Firoiu, D. Towsley and J. Kurose,
//! *"Modeling TCP Throughput: A Simple Model and Its Empirical Validation"*
//! (SIGCOMM 1998 / IEEE/ACM ToN 2000) — the **PFTK model**.
//!
//! The headline result is a closed-form send rate `B(p)` in packets per
//! second as a function of:
//!
//! * `p` — the loss-event rate ([`units::LossProb`]);
//! * `RTT` — average round-trip time;
//! * `T0` — average retransmission-timeout duration;
//! * `b` — packets acknowledged per ACK (2 with delayed ACKs);
//! * `W_m` — maximum receiver-advertised window.
//!
//! Unlike earlier "TD only" models (Mathis et al.), the PFTK model accounts
//! for retransmission **timeouts** with exponential backoff — which the
//! paper's measurements show dominate real loss indications — and for the
//! receiver-window ceiling.
//!
//! ## Quickstart
//!
//! ```
//! use pftk_model::prelude::*;
//!
//! // Network state: 200 ms RTT, 2 s timeouts, delayed ACKs, 32-packet window.
//! let params = ModelParams::new(0.2, 2.0, 2, 32).unwrap();
//! let p = LossProb::new(0.02).unwrap(); // 2% loss
//!
//! let b_full = full_model(p, &params);      // Eq. (32), the full model
//! let b_approx = approx_model(p, &params);  // Eq. (33), the "PFTK equation"
//! let b_td = td_only(p, &params);           // Eq. (20), the old baseline
//! let t = throughput(p, &params);           // §V receiver throughput
//!
//! assert!(t <= b_full && b_full <= b_td);
//! assert!((b_full - b_approx).abs() / b_full < 0.3);
//! ```
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §II-A window process, Eqs. (13)–(17) | [`window`] |
//! | §II-B timeouts, Eqs. (22)–(29) | [`timeout`] |
//! | §II-A/B/C send rate, Eqs. (20), (28), (32), (33) | [`sendrate`] |
//! | §V throughput, Eqs. (34)–(38) | [`throughput`] |
//! | §IV / Fig. 12 Markov model (\[13\]) | [`markov`] |
//! | §I TCP-friendliness application | [`inverse`] |
//! | ref \[2\] short-transfer latency (extension) | [`shortflow`] |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod inverse;
pub mod markov;
pub mod params;
pub mod sendrate;
pub mod sensitivity;
pub mod shortflow;
pub mod throughput;
pub mod timeout;
pub mod units;
pub mod window;

/// Convenient glob-import surface: the types and functions most callers need.
pub mod prelude {
    pub use crate::error::ModelError;
    pub use crate::inverse::{loss_for_rate, tcp_friendly_rate};
    pub use crate::markov::MarkovModel;
    pub use crate::params::ModelParams;
    pub use crate::sendrate::{
        approx_model, full_model, full_model_detailed, td_only, td_to_model, ModelKind, Regime,
    };
    pub use crate::sensitivity::{elasticities, Elasticities};
    pub use crate::shortflow::{
        handshake_time, transfer_time, transfer_time_detailed, transfer_time_with_delack,
        TransferEstimate,
    };
    pub use crate::throughput::throughput;
    pub use crate::units::{LossProb, PacketsPerSec, Seconds};
}
