//! Model inversion: from a target rate back to a loss rate, and the
//! "TCP-friendly rate" application that motivated the paper (§I).
//!
//! The paper's §I explains why a closed-form `B(p)` matters: a non-TCP flow
//! can be called *TCP-friendly* if its send rate does not exceed what a
//! conformant TCP would achieve under the same loss rate and RTT — the idea
//! behind TFRC (RFC 5348), whose control equation is this paper's Eq. (33).
//! Two helpers:
//!
//! * [`tcp_friendly_rate`] — the forward direction: given measured `(p, RTT,
//!   T0, W_m)`, the rate an equation-based protocol may use;
//! * [`loss_for_rate`] — the inverse: the loss rate at which TCP attains a
//!   given rate. `B(p)` is strictly decreasing, so bisection on
//!   `log p` is reliable.

use crate::error::ModelError;
use crate::params::ModelParams;
use crate::sendrate::{full_model, ModelKind};
use crate::units::LossProb;

/// Lower edge of the bisection bracket (loss rates below this predict rates
/// indistinguishable from the window-limited ceiling).
const P_MIN: f64 = 1e-12;
/// Upper edge of the bracket.
const P_MAX: f64 = 1.0 - 1e-9;
/// Bisection budget; 200 halvings of a 12-decade log bracket is ~1e-60
/// resolution, far below f64 noise, so convergence failures indicate a
/// non-bracketing target, reported as such.
const MAX_BISECT: usize = 200;

/// The TCP-friendly send rate for the measured network state, per the
/// equation-based-congestion-control recipe: evaluate the chosen model at
/// the measured loss rate. Returns packets per second.
//= pftk#tcp-friendly
//= pftk#eq-32
pub fn tcp_friendly_rate(p: LossProb, params: &ModelParams, model: ModelKind) -> f64 {
    model.evaluate(p, params)
}

/// Inverts the full model: finds `p` such that `B(p) = target_rate`.
///
/// Fails with [`ModelError::TargetOutOfRange`] if the target exceeds what
/// TCP could do even at negligible loss (`≈ min(W_m/RTT, B(p→0))`) or is
/// below `B(p → 1)`.
///
/// A `[[domain]]` root: proven total (a panic-free, finite result or a
/// typed error) over the input intervals declared in
/// `specs/pftk-spec.toml` by the audit's value-range pass.
pub fn loss_for_rate(target_rate: f64, params: &ModelParams) -> Result<LossProb, ModelError> {
    if !(target_rate.is_finite() && target_rate > 0.0) {
        return Err(ModelError::NonPositive {
            name: "target rate",
            value: target_rate,
        });
    }
    let rate_at = |p: f64| -> Result<f64, ModelError> { Ok(full_model(LossProb::new(p)?, params)) };
    let hi_rate = rate_at(P_MIN)?;
    let lo_rate = rate_at(P_MAX)?;
    if target_rate > hi_rate || target_rate < lo_rate {
        return Err(ModelError::TargetOutOfRange {
            what: "target rate for loss_for_rate",
            value: target_rate,
        });
    }
    // Bisect on log10(p): B is strictly decreasing in p.
    let (mut lo, mut hi) = (P_MIN.log10(), P_MAX.log10());
    for _ in 0..MAX_BISECT {
        let mid = 0.5 * (lo + hi);
        let r = rate_at(10f64.powf(mid))?;
        if r > target_rate {
            lo = mid; // too fast → need more loss
        } else {
            hi = mid;
        }
        if hi - lo < 1e-14 {
            break;
        }
    }
    LossProb::new(10f64.powf(0.5 * (lo + hi)))
}

/// Convenience: the loss rate a TCP-friendly flow of `target_rate` implies,
/// then the rate a *different* parameter set would get at that loss rate.
/// Useful for "what would a shorter-RTT TCP get through the same
/// bottleneck?" questions.
pub fn equivalent_rate(
    target_rate: f64,
    params: &ModelParams,
    other: &ModelParams,
) -> Result<f64, ModelError> {
    let p = loss_for_rate(target_rate, params)?;
    Ok(full_model(p, other))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::new(0.2, 2.0, 2, 64).unwrap()
    }

    #[test]
    fn roundtrip_rate_to_loss() {
        let pr = params();
        for &pv in &[0.001, 0.01, 0.05, 0.2] {
            let rate = full_model(LossProb::new(pv).unwrap(), &pr);
            let back = loss_for_rate(rate, &pr).unwrap().get();
            assert!(
                (back - pv).abs() / pv < 1e-6,
                "p={pv} → rate={rate} → p'={back}"
            );
        }
    }

    #[test]
    fn unreachable_targets_rejected() {
        let pr = params();
        // More than W_m/RTT = 320 pkt/s is impossible.
        assert!(matches!(
            loss_for_rate(1e9, &pr),
            Err(ModelError::TargetOutOfRange { .. })
        ));
        assert!(loss_for_rate(-5.0, &pr).is_err());
        assert!(loss_for_rate(f64::NAN, &pr).is_err());
    }

    #[test]
    fn tcp_friendly_rate_matches_model() {
        let pr = params();
        let p = LossProb::new(0.02).unwrap();
        assert_eq!(
            tcp_friendly_rate(p, &pr, ModelKind::Full),
            full_model(p, &pr)
        );
    }

    #[test]
    fn shorter_rtt_wins_at_same_loss() {
        // A classic TCP-fairness fact the model encodes: at the same p the
        // shorter-RTT flow sends faster.
        let long = ModelParams::new(0.4, 2.0, 2, 64).unwrap();
        let short = ModelParams::new(0.1, 2.0, 2, 64).unwrap();
        let rate_long = full_model(LossProb::new(0.01).unwrap(), &long);
        let eq = equivalent_rate(rate_long, &long, &short).unwrap();
        assert!(eq > rate_long);
    }

    #[test]
    fn inverse_is_monotone() {
        let pr = params();
        let p_slow = loss_for_rate(10.0, &pr).unwrap().get();
        let p_fast = loss_for_rate(100.0, &pr).unwrap().get();
        assert!(p_slow > p_fast, "higher rate needs less loss");
    }
}
