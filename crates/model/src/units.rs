//! Unit newtypes used throughout the model crate.
//!
//! The paper's formulas mix quantities measured in seconds (RTT, `T0`),
//! packets (`W_m`, `E[W]`), probabilities (`p`) and packets-per-second
//! (`B(p)`, `T(p)`). Mixing these up is the classic source of silent bugs in
//! throughput calculators, so each gets a validated newtype. The inner value
//! is plain `f64`; accessors are zero-cost.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// A strictly positive, finite duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[must_use]
pub struct Seconds(f64);

impl Seconds {
    /// Validates that `value` is strictly positive and finite.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && value > 0.0 {
            Ok(Seconds(value))
        } else {
            Err(ModelError::NonPositive {
                name: "duration (seconds)",
                value,
            })
        }
    }

    /// The raw number of seconds.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

/// A loss-event probability in the closed interval
/// [[`LossProb::MIN`], [`LossProb::MAX`]] = `[1e-12, 1 − 1e-12]`.
///
/// The paper's `p` is the probability that a packet is lost, given that it is
/// the first packet in its round or the preceding packet in its round was not
/// lost (§II-A). The closed forms divide by both `p` and `1 - p`, so an open
/// interval around 0 and 1 is mandatory; the validator goes further and
/// enforces a floor/ceiling of `1e-12` so that every kernel's denominator is
/// provably bounded away from zero over the whole admissible range — the
/// exact intervals the `[[domain]]` registry in `specs/pftk-spec.toml`
/// declares and `pftk-audit`'s numlint pass checks statically. One loss event
/// per 10^12 packets is far beyond anything measurable (the paper's traces
/// span `p ≈ 0.0019 … 0.25`), so the clamp costs no modeling power.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[must_use]
pub struct LossProb(f64);

impl LossProb {
    /// Smallest admissible loss probability.
    pub const MIN: f64 = 1e-12;
    /// Largest admissible loss probability, `1 − 1e-12`.
    pub const MAX: f64 = 1.0 - 1e-12;

    /// Validates that `value` lies in `[Self::MIN, Self::MAX]`.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && (Self::MIN..=Self::MAX).contains(&value) {
            Ok(LossProb(value))
        } else {
            Err(ModelError::InvalidLossProbability(value))
        }
    }

    /// The raw probability.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `1 - p`, the per-packet survival probability.
    #[inline]
    pub fn survival(self) -> f64 {
        1.0 - self.0
    }
}

/// A send rate or throughput in packets per second.
///
/// Produced by the models; never constructed from unvalidated user input, so
/// the only invariant enforced is non-negativity (a model can legitimately
/// predict a rate arbitrarily close to zero at very high loss).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[must_use]
pub struct PacketsPerSec(f64);

impl PacketsPerSec {
    /// Wraps a non-negative, finite rate.
    pub fn new(value: f64) -> Result<Self, ModelError> {
        if value.is_finite() && value >= 0.0 {
            Ok(PacketsPerSec(value))
        } else {
            Err(ModelError::NonPositive {
                name: "rate (packets/s)",
                value,
            })
        }
    }

    /// The raw rate in packets per second.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Converts to bytes per second for a given segment size.
    #[inline]
    pub fn to_bytes_per_sec(self, mss_bytes: u32) -> f64 {
        self.0 * f64::from(mss_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_accepts_positive() {
        assert_eq!(Seconds::new(0.207).unwrap().get(), 0.207);
    }

    #[test]
    fn seconds_rejects_zero_negative_nan_inf() {
        assert!(Seconds::new(0.0).is_err());
        assert!(Seconds::new(-1.0).is_err());
        assert!(Seconds::new(f64::NAN).is_err());
        assert!(Seconds::new(f64::INFINITY).is_err());
    }

    #[test]
    fn loss_prob_open_interval() {
        assert!(LossProb::new(0.0).is_err());
        assert!(LossProb::new(1.0).is_err());
        assert!(LossProb::new(0.5).is_ok());
        assert!(LossProb::new(1e-9).is_ok());
        assert!(LossProb::new(1.0 - 1e-9).is_ok());
        assert!(LossProb::new(f64::NAN).is_err());
    }

    #[test]
    fn loss_prob_boundaries_are_closed_at_the_declared_floor() {
        // The declared-domain endpoints themselves are admissible…
        assert_eq!(LossProb::new(LossProb::MIN).unwrap().get(), 1e-12);
        assert_eq!(LossProb::new(LossProb::MAX).unwrap().get(), 1.0 - 1e-12);
        // …and anything beyond them is rejected, including values the
        // old strictly-open validator accepted.
        assert!(LossProb::new(1e-13).is_err());
        assert!(LossProb::new(f64::MIN_POSITIVE).is_err());
        assert!(LossProb::new(1.0 - 1e-13).is_err());
        assert!(LossProb::new(-1e-12).is_err());
    }

    #[test]
    fn loss_prob_survival() {
        let p = LossProb::new(0.25).unwrap();
        assert!((p.survival() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn rate_allows_zero_but_not_negative() {
        assert!(PacketsPerSec::new(0.0).is_ok());
        assert!(PacketsPerSec::new(-1e-12).is_err());
        assert!(PacketsPerSec::new(f64::NAN).is_err());
    }

    #[test]
    fn rate_byte_conversion() {
        let r = PacketsPerSec::new(100.0).unwrap();
        assert_eq!(r.to_bytes_per_sec(1460), 146_000.0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = LossProb::new(0.01).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<LossProb>(&json).unwrap(), p);
        let s = Seconds::new(0.5).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Seconds>(&json).unwrap(), s);
        let r = PacketsPerSec::new(42.0).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<PacketsPerSec>(&json).unwrap(), r);
    }
}
