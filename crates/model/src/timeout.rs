//! Timeout-regime quantities (§II-B).
//!
//! A retransmission timeout (TO) occurs when a loss is followed by fewer than
//! three duplicate ACKs. The paper derives:
//!
//! * `Q̂(w)` — probability that a loss indication at window `w` is a TO
//!   rather than a triple-duplicate, both exactly (Eq. (24)) and via the
//!   `min(1, 3/w)` approximation (Eq. (25));
//! * the geometric law of timeout-sequence length and its consequences
//!   `E[R] = 1/(1-p)` (Eq. (27)) and
//!   `E[Z^TO] = T0 · f(p)/(1-p)` with `f(p) = 1 + p + 2p² + 4p³ + 8p⁴ +
//!   16p⁵ + 32p⁶` (Eq. (29));
//! * the duration `L_k` of a sequence of `k` back-to-back timeouts under
//!   exponential backoff capped at `64·T0`.

use crate::units::LossProb;

/// `A(w, k)`: probability that exactly the first `k` of `w` packets in the
/// penultimate round are ACKed, conditioned on at least one loss in the
/// round (§II-B, Fig. 4).
//= pftk#eq-23
pub fn prob_first_k_acked(p: LossProb, w: u32, k: u32) -> f64 {
    debug_assert!(k <= w, "cannot ACK more packets than were sent");
    let q = p.survival();
    q.powi(k as i32) * p.get() / (1.0 - q.powi(w as i32)) //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
}

/// `C(n, m)`: probability that `m` packets are ACKed in sequence in the last
/// round of `n` packets, the remainder (if any) being lost (§II-B).
//= pftk#eq-23
pub fn prob_last_round_acked(p: LossProb, n: u32, m: u32) -> f64 {
    debug_assert!(m <= n);
    let q = p.survival();
    if m == n {
        q.powi(n as i32) //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
    } else {
        q.powi(m as i32) * p.get() //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
    }
}

/// `h(k) = Σ_{m=0}^{2} C(k, m)` — probability that fewer than three packets
/// of the `k` sent in the last round get through (Eq. (23)), so the loss
/// indication degenerates to a timeout.
pub fn prob_last_round_times_out(p: LossProb, k: u32) -> f64 {
    (0..=2u32.min(k))
        .map(|m| prob_last_round_acked(p, k, m))
        .sum()
}

/// `Q̂(w)` from first principles: the double sum of Eq. (22). `w ≤ 3` always
/// times out (three duplicate ACKs can never be generated).
///
/// This is the definitional form; [`q_hat_exact`] evaluates the paper's
/// algebraically simplified Eq. (24) and the two must agree (tested).
//= pftk#eq-22
pub fn q_hat_definitional(p: LossProb, w: u32) -> f64 {
    if w <= 3 {
        return 1.0;
    }
    // Given at least one loss in the round, at most w − 1 packets can be
    // ACKed, so k ranges over 0..w (the algebra behind Eq. (24) sums
    // k = 3..w−1 for the second term).
    let direct: f64 = (0..=2).map(|k| prob_first_k_acked(p, w, k)).sum();
    let via_last: f64 = (3..w)
        .map(|k| prob_first_k_acked(p, w, k) * prob_last_round_times_out(p, k))
        .sum();
    (direct + via_last).min(1.0)
}

/// `1 − (1−p)^x`, evaluated as `−expm1(x · ln1p(−p))`.
///
/// The literal form `1.0 - q.powf(x)` cancels catastrophically when
/// `p·x ≪ 1` (`q^x` rounds toward 1 and the subtraction keeps only the
/// rounding error), which is exactly the regime of Eq. (24)'s denominator
/// at the admissible loss floor. Chaining `ln_1p` and `exp_m1` never forms
/// a quantity near 1, so the result is sign-tight: strictly positive for
/// every `p` in `[LossProb::MIN, LossProb::MAX]` and every `x > 0`, with
/// full relative precision down to `1 − (1−1e-12)^x ≈ x·1e-12`.
pub fn one_minus_q_pow(p: LossProb, x: f64) -> f64 {
    -(x * (-p.get()).ln_1p()).exp_m1()
}

/// `Q̂(w)` — Eq. (24), the closed form:
///
/// ```text
/// Q̂(w) = min(1, (1-(1-p)³)(1+(1-p)³(1-(1-p)^(w-3))) / (1-(1-p)^w))
/// ```
///
/// Accepts a real-valued `w` because the model substitutes `E[W]`, which is
/// not an integer (Eq. (26)). For `w ≤ 3` the probability is 1. Every
/// `1-(1-p)^x` factor — in particular the denominator — is evaluated
/// through [`one_minus_q_pow`], keeping the ratio finite and positive over
/// the whole declared domain `p ∈ [1e-12, 1-1e-12]`, `w ∈ [1, 1e6]`.
//= pftk#q-hat-24
pub fn q_hat_exact(p: LossProb, w: f64) -> f64 {
    if w <= 3.0 {
        return 1.0;
    }
    let q = p.survival();
    let q3 = q * q * q;
    let num = one_minus_q_pow(p, 3.0) * (1.0 + q3 * one_minus_q_pow(p, w - 3.0));
    let den = one_minus_q_pow(p, w);
    (num / den).min(1.0)
}

/// `Q̂(w) ≈ min(1, 3/w)` — Eq. (25), the small-`p` limit of Eq. (24)
/// (the paper verifies numerically that it is a very good approximation).
//= pftk#q-hat-25
pub fn q_hat_approx(w: f64) -> f64 {
    if w <= 0.0 {
        return 1.0;
    }
    (3.0 / w).min(1.0)
}

/// `f(p) = 1 + p + 2p² + 4p³ + 8p⁴ + 16p⁵ + 32p⁶` — Eq. (29). Together with
/// the `1/(1-p)` factor it gives the mean timeout-sequence duration in units
/// of `T0`.
//= pftk#eq-29
pub fn backoff_polynomial(p: LossProb) -> f64 {
    let p = p.get();
    // Horner form of 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6.
    1.0 + p * (1.0 + p * (2.0 + p * (4.0 + p * (8.0 + p * (16.0 + p * 32.0)))))
}

/// `E[R] = 1/(1-p)` — Eq. (27): mean number of (re)transmissions in a
/// timeout sequence. The sequence length is geometric because each
/// retransmission independently fails with probability `p`.
//= pftk#eq-27
pub fn expected_timeout_retransmissions(p: LossProb) -> f64 {
    1.0 / p.survival()
}

/// `P[R = k] = p^(k-1)(1-p)` — the geometric law of the number of timeouts
/// in a timeout sequence (§II-B).
pub fn timeout_count_pmf(p: LossProb, k: u32) -> f64 {
    debug_assert!(k >= 1, "a timeout sequence contains at least one timeout");
    p.get().powi(k as i32 - 1) * p.survival() //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
}

/// `L_k`: total duration (in units of `T0`) of a sequence of `k` timeouts
/// under doubling backoff capped at `64·T0` (§II-B):
///
/// ```text
/// L_k = (2^k − 1) T0            k ≤ 6
///     = (63 + 64 (k − 6)) T0    k ≥ 7
/// ```
//= pftk#backoff-lk
pub fn timeout_sequence_duration(k: u32, t0_secs: f64) -> f64 {
    debug_assert!(k >= 1);
    if k <= 6 {
        ((1u64 << k) - 1) as f64 * t0_secs //~ allow(cast): integer count to f64, exact below 2^53
    } else {
        (63 + 64 * (u64::from(k) - 6)) as f64 * t0_secs //~ allow(cast): integer count to f64, exact below 2^53
    }
}

/// `E[Z^TO] = T0 · f(p)/(1-p)` — mean duration of a timeout sequence
/// (the closed form of `Σ L_k P[R=k]`, §II-B).
//= pftk#eq-29
pub fn expected_timeout_sequence_duration(p: LossProb, t0_secs: f64) -> f64 {
    t0_secs * backoff_polynomial(p) / p.survival()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    #[test]
    //= pftk#eq-23 type=test
    fn a_wk_sums_to_one_over_k() {
        // Σ_{k=0}^{w-1} A(w,k) = 1: given a loss occurred, the first loss
        // position is somewhere in 0..w.
        for &pv in &[0.01, 0.1, 0.5] {
            for &w in &[1u32, 4, 10, 40] {
                let total: f64 = (0..w).map(|k| prob_first_k_acked(p(pv), w, k)).sum();
                assert!((total - 1.0).abs() < 1e-12, "p={pv}, w={w}: sum={total}");
            }
        }
    }

    #[test]
    fn c_nm_sums_to_one() {
        // Σ_{m=0}^{n} C(n,m) = 1: the last round ends somehow.
        for &pv in &[0.01, 0.3, 0.9] {
            for &n in &[1u32, 3, 7, 20] {
                let total: f64 = (0..=n).map(|m| prob_last_round_acked(p(pv), n, m)).sum();
                assert!((total - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    //= pftk#q-hat-24 type=test
    //= pftk#eq-22 type=test
    fn q_hat_exact_matches_definitional_sum() {
        // Eq. (24) is the algebraic simplification of Eq. (22); they must
        // agree for integer w.
        for &pv in &[0.005, 0.02, 0.1, 0.3, 0.6] {
            for &w in &[1u32, 2, 3, 4, 5, 8, 16, 50] {
                let def = q_hat_definitional(p(pv), w);
                let exact = q_hat_exact(p(pv), f64::from(w));
                assert!(
                    (def - exact).abs() < 1e-9,
                    "p={pv}, w={w}: definitional={def}, closed-form={exact}"
                );
            }
        }
    }

    #[test]
    fn q_hat_is_one_for_tiny_windows() {
        assert_eq!(q_hat_exact(p(0.1), 1.0), 1.0);
        assert_eq!(q_hat_exact(p(0.1), 3.0), 1.0);
        assert_eq!(q_hat_definitional(p(0.1), 2), 1.0);
    }

    #[test]
    //= pftk#q-hat-25 type=test
    fn q_hat_small_p_limit_is_3_over_w() {
        // limₚ→₀ Q̂(w) = 3/w (the paper derives this by L'Hôpital).
        for &w in &[4.0, 8.0, 20.0, 100.0] {
            let qh = q_hat_exact(p(1e-9), w);
            assert!((qh - 3.0 / w).abs() < 1e-6, "w={w}: {qh} vs {}", 3.0 / w);
        }
    }

    #[test]
    fn q_hat_approx_close_to_exact() {
        // The paper calls min(1, 3/w) "a very good approximation"; it is the
        // p → 0 limit, so the agreement tightens as p shrinks. At p = 0.005
        // (the low end of the paper's traces) it is within 10% up to w = 16.
        for &w in &[4.0, 8.0, 16.0] {
            let e = q_hat_exact(p(0.005), w);
            let a = q_hat_approx(w);
            assert!((e - a).abs() / e < 0.10, "w={w}: exact={e} approx={a}");
        }
        // And it converges pointwise as p → 0.
        for &w in &[4.0, 8.0, 16.0, 32.0] {
            let e = q_hat_exact(p(1e-7), w);
            assert!((e - q_hat_approx(w)).abs() / e < 1e-3);
        }
    }

    #[test]
    fn q_hat_bounded_and_monotone_in_w() {
        let pv = p(0.05);
        let mut last = 1.0;
        for w in 1..60 {
            let q = q_hat_exact(pv, f64::from(w));
            assert!((0.0..=1.0).contains(&q));
            assert!(q <= last + 1e-12, "Q̂ must not increase with w");
            last = q;
        }
    }

    #[test]
    //= pftk#eq-29 type=test
    fn backoff_polynomial_values() {
        assert_eq!(backoff_polynomial(p(1e-12)), 1.000_000_000_001);
        let f = backoff_polynomial(p(0.5));
        // 1 + .5 + 2(.25) + 4(.125) + 8(.0625) + 16(.03125) + 32(.015625)
        // = 1 + .5 + .5 + .5 + .5 + .5 + .5 = 4.0
        assert!((f - 4.0).abs() < 1e-12);
    }

    #[test]
    fn timeout_pmf_is_proper() {
        let pv = p(0.2);
        let total: f64 = (1..200).map(|k| timeout_count_pmf(pv, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    //= pftk#eq-27 type=test
    fn expected_retransmissions_matches_pmf_mean() {
        let pv = p(0.3);
        let mean: f64 = (1..500)
            .map(|k| f64::from(k) * timeout_count_pmf(pv, k))
            .sum();
        assert!((mean - expected_timeout_retransmissions(pv)).abs() < 1e-9);
    }

    #[test]
    //= pftk#backoff-lk type=test
    fn sequence_duration_doubles_then_caps() {
        let t0 = 1.0;
        assert_eq!(timeout_sequence_duration(1, t0), 1.0);
        assert_eq!(timeout_sequence_duration(2, t0), 3.0);
        assert_eq!(timeout_sequence_duration(3, t0), 7.0);
        assert_eq!(timeout_sequence_duration(6, t0), 63.0);
        // After the cap every extra timeout adds exactly 64·T0.
        assert_eq!(timeout_sequence_duration(7, t0), 127.0);
        assert_eq!(timeout_sequence_duration(8, t0), 191.0);
    }

    #[test]
    //= pftk#eq-29 type=test
    fn closed_form_sequence_duration_matches_series() {
        // E[Z^TO] = Σ_k L_k P[R=k]; the closed form T0·f(p)/(1-p) truncates
        // the backoff exactly as L_k does.
        for &pv in &[0.02, 0.1, 0.3] {
            let t0 = 2.5;
            let series: f64 = (1..400)
                .map(|k| timeout_sequence_duration(k, t0) * timeout_count_pmf(p(pv), k))
                .sum();
            let closed = expected_timeout_sequence_duration(p(pv), t0);
            assert!(
                (series - closed).abs() / closed < 1e-9,
                "p={pv}: series={series}, closed={closed}"
            );
        }
    }

    #[test]
    fn one_minus_q_pow_is_exact_where_the_naive_form_cancels() {
        // Mathematically 1 − (1−p)^1 = p; at the admissible floor the
        // expm1∘ln1p chain reproduces it to a relative error below 1e-9,
        // while the literal subtraction keeps only rounding noise (its
        // relative error is ~1e-4 here).
        let p12 = p(1e-12);
        let precise = one_minus_q_pow(p12, 1.0);
        assert!(
            (precise - 1e-12).abs() / 1e-12 < 1e-9,
            "precise={precise:e}"
        );
        let naive = 1.0 - p12.survival().powf(1.0);
        assert!(
            (naive - 1e-12).abs() / 1e-12 > 1e-6,
            "naive form unexpectedly exact: {naive:e}"
        );
        // And at the opposite extreme (q^x underflows toward 0) the
        // chain saturates cleanly at 1.
        let hi = one_minus_q_pow(p(1.0 - 1e-12), 1e6);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn q_hat_exact_survives_declared_domain_boundaries() {
        // The [[domain]] corners from specs/pftk-spec.toml: every
        // combination must yield a finite probability in (0, 1].
        for &pv in &[1e-12, 1e-9, 0.0019, 0.25, 0.5, 1.0 - 1e-12] {
            for &w in &[1.0, 3.0 + 1e-9, 4.0, 100.0, 1e6] {
                let v = q_hat_exact(p(pv), w);
                assert!(
                    v.is_finite() && v > 0.0 && v <= 1.0,
                    "p={pv:e} w={w}: Q̂={v}"
                );
            }
        }
        // Continuity at the w→3⁺ seam where the early return hands over
        // to the closed form.
        let seam = q_hat_exact(p(0.01), 3.0 + 1e-12);
        assert!((seam - 1.0).abs() < 1e-6, "seam={seam}");
    }
}
