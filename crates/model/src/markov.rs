//! A numerically solved Markov-chain model of TCP Reno congestion avoidance.
//!
//! §IV of the paper compares its closed form against "a more detailed
//! stochastic analysis, leading to a Markov model of TCP Reno \[13\]" that
//! "does not appear to have a simple closed-form solution" but, solved
//! numerically, "closely match\[es\] the predictions of the model proposed in
//! this paper" (Fig. 12). The tech report \[13\] is not part of the supplied
//! text, so this module *reconstructs* the chain from the same primitives the
//! closed form linearizes — without the i.i.d./independence approximations
//! of §II-A:
//!
//! * state: the congestion-window size at the *start* of a TD period
//!   (after halving, or 1 after a timeout);
//! * within a TDP the window grows by 1 packet every `b` rounds and is
//!   clamped at `W_m`; each packet is lost with probability `p`, losses
//!   being correlated within a round exactly as in §II (the first loss in a
//!   round dooms the rest of the round);
//! * the round where the first loss lands determines the peak window `W`;
//!   one more round of `W − 1` packets follows (Fig. 2), then the loss
//!   indication is a timeout with probability `Q̂(W)` (Eq. (24)) — in which
//!   case the chain collects the timeout-sequence rewards
//!   `E[R] = 1/(1−p)` packets and `E[Z^TO] = T0·f(p)/(1−p)` seconds and
//!   restarts from window 1 — otherwise a triple-duplicate halves the
//!   window to `⌊W/2⌋`.
//!
//! The send rate is the stationary renewal–reward ratio
//! `B = Σ_s π(s)·E[packets|s] / Σ_s π(s)·E[duration|s]`,
//! with π obtained by power iteration.

use crate::error::ModelError;
use crate::params::ModelParams;
use crate::timeout::{
    expected_timeout_retransmissions, expected_timeout_sequence_duration, q_hat_exact,
};
use crate::units::LossProb;

/// Tail mass at which the per-state enumeration of "first loss in round `j`"
/// stops; the retained mass is renormalized.
const TAIL_EPS: f64 = 1e-13;

/// Convergence threshold for the stationary distribution (L1 distance
/// between successive power-iteration vectors).
const PI_EPS: f64 = 1e-13;

/// Iteration budget for power iteration.
const MAX_ITERS: usize = 200_000;

/// The per-state expectations and transition law of the chain.
#[derive(Debug, Clone)]
struct ChainRow {
    /// Transition probabilities to each start-window state (1-indexed by
    /// `state − 1`).
    next: Vec<f64>,
    /// Expected packets sent until (and including) the TDP that ends in this
    /// state's loss indication, plus timeout-sequence retransmissions when
    /// the indication is a TO.
    packets: f64,
    /// Expected wall-clock duration of the same (seconds).
    duration: f64,
}

/// Numerically solved Markov model. Construction precomputes the chain for
/// one `(p, params)` point; [`MarkovModel::send_rate`] returns the rate.
#[derive(Debug, Clone)]
pub struct MarkovModel {
    rows: Vec<ChainRow>,
    stationary: Vec<f64>,
    send_rate: f64,
}

impl MarkovModel {
    /// Builds and solves the chain at loss rate `p`.
    ///
    /// `params.wmax` bounds the state space, so it must be finite and modest
    /// (the paper's Fig. 12 uses `W_m = 12`); values above 4096 are rejected
    /// to keep the solve tractable.
    ///
    /// A `[[domain]]` root: proven total over the input intervals declared
    /// in `specs/pftk-spec.toml` by the audit's value-range pass (whose
    /// registry caps `wmax` at 64 — the chain walk is `O(1/(p·wmax))`).
    //= pftk#markov-crosscheck
    //= pftk#loss-model
    pub fn solve(p: LossProb, params: &ModelParams) -> Result<Self, ModelError> {
        if params.wmax > 4096 {
            return Err(ModelError::TargetOutOfRange {
                what: "Markov model W_m (state-space bound)",
                value: f64::from(params.wmax),
            });
        }
        let n_states = params.wmax as usize; //~ allow(cast): wmax-bounded index, fits usize
        let mut rows = Vec::with_capacity(n_states);
        for start in 1..=params.wmax {
            rows.push(build_row(p, params, start));
        }
        let stationary = stationary_distribution(&rows)?;
        let mut num = 0.0;
        let mut den = 0.0;
        for (pi, row) in stationary.iter().zip(&rows) {
            num += pi * row.packets;
            den += pi * row.duration;
        }
        Ok(MarkovModel {
            rows,
            stationary,
            send_rate: num / den,
        })
    }

    /// Long-run send rate in packets per second.
    pub fn send_rate(&self) -> f64 {
        self.send_rate
    }

    /// The stationary distribution over TDP start-window sizes
    /// (index `w − 1` holds `π(start window = w)`).
    pub fn stationary(&self) -> &[f64] {
        &self.stationary
    }

    /// Mean TDP-start window under the stationary law.
    pub fn mean_start_window(&self) -> f64 {
        self.stationary
            .iter()
            .enumerate()
            .map(|(i, pi)| (i as f64 + 1.0) * pi) //~ allow(cast): integer count to f64, exact below 2^53
            .sum()
    }

    /// Stationary probability that a loss indication is a timeout — the
    /// chain's counterpart of `Q` (Eq. (26)); compared against
    /// `Q̂(E[W])` in tests.
    pub fn timeout_fraction(&self, p: LossProb, params: &ModelParams) -> f64 {
        // Reconstruct by re-walking each state's loss-round distribution and
        // weighting Q̂(peak W) by the stationary law.
        let mut q = 0.0;
        for (i, pi) in self.stationary.iter().enumerate() {
            let mut row_q = 0.0;
            walk_tdp(
                p,
                params,
                //~ allow(cast): state index below wmax, fits u32
                (i + 1) as u32,
                |peak, _rounds, _packets, prob| {
                    row_q += prob * q_hat_exact(p, f64::from(peak));
                },
            );
            q += pi * row_q;
        }
        let _ = &self.rows;
        q
    }
}

/// Walks the TDP started at window `start`, invoking `visit(peak_window,
/// rounds_to_loss, expected_packets_through_loss, probability)` for every
/// "first loss lands in round `j`" outcome (with the within-round loss
/// position marginalized into the expected-packet count). Probabilities are
/// renormalized over the retained mass.
fn walk_tdp<F: FnMut(u32, u32, f64, f64)>(
    p: LossProb,
    params: &ModelParams,
    start: u32,
    mut visit: F,
) {
    let pv = p.get();
    let q = p.survival();
    let mut survive_before = 1.0; // (1-p)^{packets in rounds < j}
    let mut packets_before = 0.0f64;
    let mut outcomes: Vec<(u32, u32, f64, f64)> = Vec::new();
    let mut total_mass = 0.0;
    let mut j: u32 = 0;
    loop {
        let w = start.saturating_add(j / params.b).min(params.wmax);
        // P[first loss in this round] = survive_before · (1 − q^w).
        let loss_here = survive_before * (1.0 - q.powi(w as i32)); //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
        if loss_here > 0.0 {
            // E[position of first loss within the round | loss in round]
            // for a truncated geometric on 1..=w.
            let mean_k = truncated_geometric_mean(pv, w);
            let expected_packets = packets_before + mean_k + f64::from(w) - 1.0;
            outcomes.push((w, j + 1, expected_packets, loss_here));
            total_mass += loss_here;
        }
        survive_before *= q.powi(w as i32); //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
        packets_before += f64::from(w);
        j += 1;
        if survive_before < TAIL_EPS {
            break;
        }
        // Safety valve: at microscopic p with a clamped window the loop is
        // O(ln(1/ε)/(p·W_m)) rounds; cap generously.
        if j > 50_000_000 {
            break;
        }
    }
    for (w, rounds, pkts, mass) in outcomes {
        visit(w, rounds, pkts, mass / total_mass);
    }
}

/// Mean of a geometric(p) variable truncated to `1..=w`:
/// `E[K | K ≤ w]` where `P[K=k] = (1−p)^{k−1} p`.
fn truncated_geometric_mean(p: f64, w: u32) -> f64 {
    let q = 1.0 - p;
    let qw = q.powi(w as i32); //~ allow(cast): powi exponent; window and counts bounded far below i32::MAX
    let wf = f64::from(w);
    // Σ_{k=1}^{w} k q^{k-1} p = (1 − q^w (1 + w p)) / p ; divide by mass 1 − q^w.
    (1.0 - qw * (1.0 + wf * p)) / (p * (1.0 - qw))
}

fn build_row(p: LossProb, params: &ModelParams, start: u32) -> ChainRow {
    let n_states = params.wmax as usize; //~ allow(cast): wmax-bounded index, fits usize
    let mut next = vec![0.0; n_states];
    let mut packets = 0.0;
    let mut duration = 0.0;
    let rtt = params.rtt.get();
    let e_r = expected_timeout_retransmissions(p);
    let e_zto = expected_timeout_sequence_duration(p, params.t0.get());

    walk_tdp(
        p,
        params,
        start,
        |peak, rounds_to_loss, expected_packets, prob| {
            // The TDP itself: Y = α + W − 1 packets in X + 1 rounds (Fig. 2).
            packets += prob * expected_packets;
            duration += prob * rtt * f64::from(rounds_to_loss + 1);
            let q_to = q_hat_exact(p, f64::from(peak));
            let halved = (peak / 2).max(1) as usize; //~ allow(cast): wmax-bounded index, fits usize
                                                     // Timeout branch: TO-sequence rewards. The next TDP restarts from
                                                     // window 1 but slow-starts back to ssthresh = peak/2 in a handful of
                                                     // rounds; following the paper (§II-B reuses the §II-A TDP statistics
                                                     // for post-timeout periods), the chain credits that recovery and
                                                     // transitions to the halved window, same as the TD branch.
            packets += prob * q_to * e_r;
            duration += prob * q_to * e_zto;
            next[halved - 1] += prob * q_to;
            // Triple-duplicate branch: halve.
            next[halved - 1] += prob * (1.0 - q_to);
        },
    );

    ChainRow {
        next,
        packets,
        duration,
    }
}

fn stationary_distribution(rows: &[ChainRow]) -> Result<Vec<f64>, ModelError> {
    let n = rows.len();
    let mut pi = vec![1.0 / n as f64; n]; //~ allow(cast): integer count to f64, exact below 2^53
    let mut nxt = vec![0.0; n];
    for it in 0..MAX_ITERS {
        nxt.iter_mut().for_each(|x| *x = 0.0);
        for (s, row) in rows.iter().enumerate() {
            let mass = pi[s];
            if mass <= 0.0 {
                // Stationary masses are non-negative; skipping exact zeros
                // (never NaN — rows are normalized) saves the inner loop.
                continue;
            }
            for (t, pr) in row.next.iter().enumerate() {
                if *pr > 0.0 {
                    nxt[t] += mass * pr;
                }
            }
        }
        // Renormalize against the tiny truncation leakage.
        let total: f64 = nxt.iter().sum();
        nxt.iter_mut().for_each(|x| *x /= total);
        let delta: f64 = pi.iter().zip(&nxt).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut pi, &mut nxt);
        if delta < PI_EPS {
            return Ok(pi);
        }
        let _ = it;
    }
    Err(ModelError::NoConvergence {
        what: "Markov stationary distribution",
        iterations: MAX_ITERS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sendrate::full_model;

    fn p(v: f64) -> LossProb {
        LossProb::new(v).unwrap()
    }

    fn fig12_params() -> ModelParams {
        // Fig. 12: RTT = 0.47 s, T0 = 3.2 s, W_m = 12.
        ModelParams::new(0.47, 3.2, 2, 12).unwrap()
    }

    #[test]
    fn truncated_geometric_mean_limits() {
        // w = 1: the loss must be the first packet.
        assert!((truncated_geometric_mean(0.3, 1) - 1.0).abs() < 1e-12);
        // w → ∞: plain geometric mean 1/p.
        assert!((truncated_geometric_mean(0.3, 10_000) - 1.0 / 0.3).abs() < 1e-9);
        // Brute-force check at moderate w.
        let (pv, w) = (0.2, 7u32);
        let q: f64 = 1.0 - pv;
        let mass: f64 = (1..=w).map(|k| q.powi(k as i32 - 1) * pv).sum();
        let mean: f64 = (1..=w)
            .map(|k| f64::from(k) * q.powi(k as i32 - 1) * pv)
            .sum::<f64>()
            / mass;
        assert!((truncated_geometric_mean(pv, w) - mean).abs() < 1e-12);
    }

    #[test]
    fn stationary_is_a_distribution() {
        let m = MarkovModel::solve(p(0.05), &fig12_params()).unwrap();
        let total: f64 = m.stationary().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(m.stationary().iter().all(|&x| x >= -1e-15));
    }

    #[test]
    //= pftk#markov-crosscheck type=test
    fn matches_closed_form_fig12() {
        // The paper's Fig. 12 message: the numerically solved chain and the
        // closed form track each other closely across the loss range.
        let params = fig12_params();
        for &pv in &[0.005, 0.01, 0.03, 0.07, 0.15, 0.3] {
            let markov = MarkovModel::solve(p(pv), &params).unwrap().send_rate();
            let closed = full_model(p(pv), &params);
            let rel = (markov - closed).abs() / closed;
            assert!(
                rel < 0.25,
                "p={pv}: markov={markov:.3}, closed={closed:.3}, rel={rel:.3}"
            );
        }
    }

    #[test]
    fn monotone_in_p() {
        let params = fig12_params();
        let hi = MarkovModel::solve(p(0.01), &params).unwrap().send_rate();
        let lo = MarkovModel::solve(p(0.2), &params).unwrap().send_rate();
        assert!(hi > lo);
    }

    #[test]
    fn respects_window_ceiling() {
        let params = fig12_params();
        let rate = MarkovModel::solve(p(0.001), &params).unwrap().send_rate();
        assert!(rate <= params.window_limited_rate() * (1.0 + 1e-9));
    }

    #[test]
    fn timeout_fraction_behaves_like_q_hat() {
        let params = fig12_params();
        // High loss → almost every indication is a timeout.
        let m = MarkovModel::solve(p(0.4), &params).unwrap();
        assert!(m.timeout_fraction(p(0.4), &params) > 0.9);
        // Low loss with a large window → mostly triple-duplicates.
        let big = ModelParams::new(0.47, 3.2, 2, 64).unwrap();
        let m = MarkovModel::solve(p(0.002), &big).unwrap();
        assert!(m.timeout_fraction(p(0.002), &big) < 0.35);
    }

    #[test]
    fn rejects_huge_state_space() {
        let params = ModelParams::new(0.2, 1.0, 2, 100_000).unwrap();
        assert!(MarkovModel::solve(p(0.01), &params).is_err());
    }

    #[test]
    fn mean_start_window_reasonable() {
        let params = fig12_params();
        let m = MarkovModel::solve(p(0.02), &params).unwrap();
        let mean = m.mean_start_window();
        assert!((1.0..=12.0).contains(&mean), "mean start window {mean}");
    }
}
