//! Runtime counterpart of pftk-audit's static numlint pass: parses the
//! `[[domain]]` registry out of `specs/pftk-spec.toml` (the same file
//! the abstract interpreter proves totality over) and grid-samples
//! every declared root across its declared intervals, asserting the
//! kernel returns finite, in-range values at every grid point — the
//! interval endpoints included.
//!
//! The two checks are deliberately redundant: the static pass covers
//! *all* of the domain but over-approximates the arithmetic, while this
//! sweep evaluates the real IEEE arithmetic but only at sample points.
//! A root either check cannot handle fails loudly — an unknown root
//! panics here, an unresolvable one fails the audit gate — so the
//! registry cannot silently drift from the code.

use std::collections::BTreeMap;
use std::path::Path;

use pftk_audit::domain::Range;
use pftk_audit::spec::DomainSpec;
use pftk_model::inverse::loss_for_rate;
use pftk_model::markov::MarkovModel;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::{approx_model, full_model, td_only, td_to_model};
use pftk_model::throughput::throughput;
use pftk_model::timeout::q_hat_exact;
use pftk_model::units::LossProb;
use pftk_model::window::{expected_tdp_packets, expected_window};

/// Loads the workspace spec's `[[domain]]` entries.
fn domains() -> Vec<DomainSpec> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/pftk-spec.toml");
    let text = std::fs::read_to_string(&path).expect("workspace spec readable");
    pftk_audit::spec::parse_spec(&text)
        .expect("workspace spec parses")
        .domains
}

/// Geometric grid over a declared interval: both (nudged-inward, if
/// open) endpoints plus log-spaced interior points. Every registry
/// interval is strictly positive, so the geometric spacing is well
/// defined and biases samples toward the small end — where the
/// denominator hazards live.
fn samples(r: &Range) -> Vec<f64> {
    const N: usize = 6;
    let lo = if r.lo_open { r.lo * (1.0 + 1e-9) } else { r.lo };
    let hi = if r.hi_open { r.hi * (1.0 - 1e-9) } else { r.hi };
    assert!(lo > 0.0 && hi >= lo, "non-positive interval [{lo}, {hi}]");
    let ratio = hi / lo;
    (0..N)
        .map(|k| lo * ratio.powf(k as f64 / (N - 1) as f64))
        .collect()
}

/// Integer grid (for `b` and `wmax`): rounded, clamped, deduplicated.
fn int_samples(r: &Range) -> Vec<u32> {
    let mut out: Vec<u32> = samples(r)
        .into_iter()
        .map(|v| (v.round() as u32).clamp(r.lo.ceil() as u32, r.hi.floor() as u32))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// One root's sample vectors, keyed by declared parameter name.
struct Grid<'a> {
    root: &'a str,
    params: &'a BTreeMap<String, Range>,
}

impl Grid<'_> {
    fn f(&self, key: &str) -> Vec<f64> {
        samples(self.key(key))
    }

    fn u(&self, key: &str) -> Vec<u32> {
        int_samples(self.key(key))
    }

    fn key(&self, key: &str) -> &Range {
        self.params
            .get(key)
            .unwrap_or_else(|| panic!("root {:?} declares no {key:?} interval", self.root))
    }
}

fn assert_finite(root: &str, v: f64, at: &str) -> u64 {
    assert!(v.is_finite(), "{root} not finite at {at}: {v}");
    1
}

/// Cross-product sweep of `p × rtt × t0 × b × wmax` for the
/// full-parameter send-rate kernels.
fn sweep_rate_kernel(g: &Grid, eval: impl Fn(LossProb, &ModelParams) -> f64) -> u64 {
    let mut n = 0;
    for &pv in &g.f("p") {
        for &rtt in &g.f("rtt") {
            for &t0 in &g.f("t0") {
                for &b in &g.u("b") {
                    for &wmax in &g.u("wmax") {
                        let params = ModelParams::new(rtt, t0, b, wmax).unwrap();
                        let p = LossProb::new(pv).unwrap();
                        let at = format!("p={pv:e} rtt={rtt} t0={t0} b={b} wmax={wmax}");
                        let rate = eval(p, &params);
                        n += assert_finite(g.root, rate, &at);
                        assert!(rate >= 0.0, "{} negative at {at}: {rate}", g.root);
                    }
                }
            }
        }
    }
    n
}

#[test]
fn every_declared_domain_root_is_finite_over_its_grid() {
    let domains = domains();
    assert!(
        domains.len() >= 8,
        "registry shrank below the tentpole floor: {}",
        domains.len()
    );
    let mut checks = 0u64;
    for d in &domains {
        let g = Grid {
            root: &d.root,
            params: &d.params,
        };
        checks += match d.root.as_str() {
            "td_only" => {
                let mut n = 0;
                for &pv in &g.f("p") {
                    for &rtt in &g.f("rtt") {
                        for &b in &g.u("b") {
                            let params = ModelParams::new(rtt, 2.0, b, 65535).unwrap();
                            let v = td_only(LossProb::new(pv).unwrap(), &params);
                            n += assert_finite(&d.root, v, &format!("p={pv:e} rtt={rtt} b={b}"));
                        }
                    }
                }
                n
            }
            "td_to_model" => {
                let mut n = 0;
                for &pv in &g.f("p") {
                    for &rtt in &g.f("rtt") {
                        for &t0 in &g.f("t0") {
                            for &b in &g.u("b") {
                                let params = ModelParams::new(rtt, t0, b, 65535).unwrap();
                                let v = td_to_model(LossProb::new(pv).unwrap(), &params);
                                let at = format!("p={pv:e} rtt={rtt} t0={t0} b={b}");
                                n += assert_finite(&d.root, v, &at);
                            }
                        }
                    }
                }
                n
            }
            "full_model" => sweep_rate_kernel(&g, full_model),
            "approx_model" => sweep_rate_kernel(&g, approx_model),
            "throughput" => sweep_rate_kernel(&g, throughput),
            "q_hat_exact" => {
                let mut n = 0;
                for &pv in &g.f("p") {
                    for &w in &g.f("w") {
                        let v = q_hat_exact(LossProb::new(pv).unwrap(), w);
                        let at = format!("p={pv:e} w={w}");
                        n += assert_finite(&d.root, v, &at);
                        assert!(v > 0.0 && v <= 1.0, "Q̂ out of (0,1] at {at}: {v}");
                    }
                }
                n
            }
            "expected_window" | "expected_tdp_packets" => {
                let eval: fn(LossProb, u32) -> f64 = if d.root == "expected_window" {
                    expected_window
                } else {
                    expected_tdp_packets
                };
                let mut n = 0;
                for &pv in &g.f("p") {
                    for &b in &g.u("b") {
                        let v = eval(LossProb::new(pv).unwrap(), b);
                        n += assert_finite(&d.root, v, &format!("p={pv:e} b={b}"));
                    }
                }
                n
            }
            "loss_for_rate" => {
                let mut n = 0;
                for &target in &g.f("target_rate") {
                    for &rtt in &g.f("rtt") {
                        for &b in &g.u("b") {
                            for &wmax in &g.u("wmax") {
                                let params = ModelParams::new(rtt, 2.0, b, wmax).unwrap();
                                // An unreachable target is a legitimate
                                // typed error; totality here means no
                                // panic and no non-finite loss estimate.
                                if let Ok(p) = loss_for_rate(target, &params) {
                                    let at = format!("target={target:e} rtt={rtt} b={b}");
                                    n += assert_finite(&d.root, p.get(), &at);
                                } else {
                                    n += 1;
                                }
                            }
                        }
                    }
                }
                n
            }
            "MarkovModel::solve" => {
                let mut n = 0;
                // The chain walk is O(1/(p·wmax)) rounds, so the loss
                // grid is floored at 1e-3 to keep the sweep fast; the
                // static pass still covers the full declared interval.
                for &pv in &[1e-3, 1e-2, 0.25, 1.0 - 1e-12] {
                    for &rtt in &g.f("rtt") {
                        for &b in &g.u("b") {
                            for &wmax in &g.u("wmax") {
                                let params = ModelParams::new(rtt, 2.0, b, wmax).unwrap();
                                let m = MarkovModel::solve(LossProb::new(pv).unwrap(), &params)
                                    .unwrap();
                                let at = format!("p={pv:e} rtt={rtt} b={b} wmax={wmax}");
                                n += assert_finite(&d.root, m.send_rate(), &at);
                            }
                        }
                    }
                }
                n
            }
            // Roots owned by tcp-sim (the CUBIC window kernels): this
            // crate sits below the simulator in the dependency graph, so
            // their runtime sweep lives next to the code —
            // crates/sim/tests/cubic_domain_sweep.rs parses the same
            // registry entries and grid-samples them there. The static
            // numlint pass covers their full declared intervals either
            // way.
            "cubic_k" | "cubic_window" => 0,
            other => panic!(
                "[[domain]] root {other:?} has no sweep harness — \
                 extend tests/domain_sweep.rs (model kernels) or \
                 crates/sim/tests/cubic_domain_sweep.rs (sim kernels) \
                 alongside the registry"
            ),
        };
    }
    assert!(checks > 1_000, "suspiciously small sweep: {checks} checks");
}
