//! Property-based tests of the model's analytic invariants.

use pftk_model::prelude::*;
use pftk_model::{throughput, timeout, window};
use proptest::prelude::*;

/// Loss rates spanning the paper's observed range (0.1%–50%), log-uniform.
fn loss_rate() -> impl Strategy<Value = f64> {
    (-3.0f64..-0.301).prop_map(|e| 10f64.powf(e))
}

fn params_strategy() -> impl Strategy<Value = ModelParams> {
    (0.01f64..2.0, 0.1f64..10.0, 1u32..=4, 2u32..=256)
        .prop_map(|(rtt, t0, b, wmax)| ModelParams::new(rtt, t0, b, wmax).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn full_model_rate_is_positive_and_finite(p in loss_rate(), params in params_strategy()) {
        let rate = full_model(LossProb::new(p).unwrap(), &params);
        prop_assert!(rate.is_finite());
        prop_assert!(rate > 0.0);
    }

    #[test]
    //= pftk#eq-31 type=test
    //= pftk#eq-32 type=test
    fn full_model_never_exceeds_window_ceiling(p in loss_rate(), params in params_strategy()) {
        let rate = full_model(LossProb::new(p).unwrap(), &params);
        prop_assert!(rate <= params.window_limited_rate() * (1.0 + 1e-9));
    }

    #[test]
    fn full_model_monotone_in_p(
        p in loss_rate(),
        factor in 1.05f64..4.0,
        params in params_strategy(),
    ) {
        let p2 = (p * factor).min(0.6);
        prop_assume!(p2 > p);
        let lo = full_model(LossProb::new(p).unwrap(), &params);
        let hi = full_model(LossProb::new(p2).unwrap(), &params);
        prop_assert!(hi <= lo * (1.0 + 1e-9), "B({p2})={hi} > B({p})={lo}");
    }

    #[test]
    fn full_model_monotone_in_rtt(p in loss_rate(), params in params_strategy()) {
        let slower = ModelParams::new(
            params.rtt.get() * 2.0, params.t0.get(), params.b, params.wmax).unwrap();
        let fast = full_model(LossProb::new(p).unwrap(), &params);
        let slow = full_model(LossProb::new(p).unwrap(), &slower);
        prop_assert!(slow <= fast * (1.0 + 1e-9));
    }

    #[test]
    fn full_model_monotone_in_t0(p in loss_rate(), params in params_strategy()) {
        let slower = ModelParams::new(
            params.rtt.get(), params.t0.get() * 2.0, params.b, params.wmax).unwrap();
        let fast = full_model(LossProb::new(p).unwrap(), &params);
        let slow = full_model(LossProb::new(p).unwrap(), &slower);
        prop_assert!(slow <= fast * (1.0 + 1e-9), "longer timeouts cannot speed TCP up");
    }

    #[test]
    fn timeouts_only_slow_tcp_down(p in loss_rate(), params in params_strategy()) {
        // Full model (TD + TO) vs the exact TD-only ratio Eq. (19). Holds
        // whenever T0 ≥ RTT — true of every real TCP (RTO ≥ SRTT); with a
        // hypothetical timeout *shorter* than a round trip, timing out can
        // genuinely beat waiting for duplicate ACKs.
        prop_assume!(params.t0.get() >= params.rtt.get());
        let lp = LossProb::new(p).unwrap();
        let full = full_model(lp, &params);
        let td = pftk_model::sendrate::td_only_exact(lp, &params);
        prop_assert!(full <= td * (1.0 + 1e-9));
    }

    #[test]
    //= pftk#eq-33 type=test
    fn approx_model_brackets_full_model(p in loss_rate(), params in params_strategy()) {
        // Eq. (33) vs Eq. (32): same order of magnitude over the domain the
        // paper validates on — loss-indication rates up to ~15%, receiver
        // windows of at least 6 packets, and T0/RTT up to ~50 (Table II
        // spans 2.5–43). Outside that domain the band genuinely breaks:
        // W_m = 4 at p = 0.28 exceeds 3x, and at T0/RTT ≈ 1000 with a tight
        // window clamp Eq. (33)'s *unclamped* Q̂ ≈ 3·sqrt(3bp/8) can sit 6x
        // below Q̂(W_m), overestimating the rate by the same factor — a
        // real, documented weakness of the approximation, not of this
        // implementation.
        prop_assume!(
            p <= 0.15 && params.wmax >= 6 && params.t0.get() / params.rtt.get() <= 50.0
        );
        let lp = LossProb::new(p).unwrap();
        let full = full_model(lp, &params);
        let approx = approx_model(lp, &params);
        prop_assert!(approx < full * 3.0 && approx > full / 3.0,
            "p={p}: full={full}, approx={approx}");
    }

    #[test]
    fn throughput_at_most_send_rate(p in loss_rate(), params in params_strategy()) {
        let lp = LossProb::new(p).unwrap();
        let t = throughput::throughput(lp, &params);
        let b = full_model(lp, &params);
        prop_assert!(t <= b * (1.0 + 1e-9));
        prop_assert!(t > 0.0);
    }

    #[test]
    //= pftk#q-hat-24 type=test
    //= pftk#eq-22 type=test
    fn q_hat_is_probability_and_decreasing(p in loss_rate(), w in 1.0f64..512.0) {
        let lp = LossProb::new(p).unwrap();
        let q = timeout::q_hat_exact(lp, w);
        prop_assert!((0.0..=1.0).contains(&q));
        let q2 = timeout::q_hat_exact(lp, w + 1.0);
        prop_assert!(q2 <= q + 1e-12);
    }

    #[test]
    fn window_identity_eq_11(p in loss_rate(), b in 1u32..=4) {
        // E[X] = (b/2)·E[W] ties Eqs. (13) and (15) together exactly.
        let lp = LossProb::new(p).unwrap();
        let w = window::expected_window(lp, b);
        let x = window::expected_rounds(lp, b);
        prop_assert!((x - f64::from(b) / 2.0 * w).abs() < 1e-6 * x.max(1.0));
    }

    #[test]
    fn inverse_roundtrips(p in loss_rate(), params in params_strategy()) {
        let lp = LossProb::new(p).unwrap();
        let rate = full_model(lp, &params);
        let back = loss_for_rate(rate, &params).unwrap().get();
        // B is strictly decreasing, so inversion is well-posed; allow for
        // the flat window-limited plateau where p is unidentifiable.
        let rate_back = full_model(LossProb::new(back).unwrap(), &params);
        prop_assert!((rate_back - rate).abs() / rate < 1e-6,
            "rate {rate} → p {back} → rate {rate_back}");
    }

    #[test]
    fn backoff_polynomial_matches_horner(p in loss_rate()) {
        let lp = LossProb::new(p).unwrap();
        let f = timeout::backoff_polynomial(lp);
        let direct = 1.0 + p + 2.0 * p.powi(2) + 4.0 * p.powi(3) + 8.0 * p.powi(4)
            + 16.0 * p.powi(5) + 32.0 * p.powi(6);
        prop_assert!((f - direct).abs() < 1e-12 * direct);
    }

    #[test]
    fn detailed_output_consistent(p in loss_rate(), params in params_strategy()) {
        let lp = LossProb::new(p).unwrap();
        let out = full_model_detailed(lp, &params);
        prop_assert_eq!(out.rate, full_model(lp, &params));
        match out.regime {
            Regime::Unconstrained => prop_assert!(
                out.expected_window_unconstrained < f64::from(params.wmax)),
            Regime::WindowLimited => prop_assert!(
                out.expected_window_unconstrained >= f64::from(params.wmax)),
        }
        prop_assert!((0.0..=1.0).contains(&out.timeout_probability));
    }
}
