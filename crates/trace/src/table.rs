//! Table II assembly: per-trace summary rows ("Summary Data from 1 h
//! Traces") built from an [`Analysis`] plus timing estimates.

use crate::analyzer::Analysis;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of the paper's Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Sender host name.
    pub sender: String,
    /// Receiver host name.
    pub receiver: String,
    /// Total packets sent.
    pub packets_sent: u64,
    /// Total loss indications (TD + timeout sequences).
    pub loss_indications: u64,
    /// Triple-duplicate indications.
    pub td: u64,
    /// Timeout sequences by length: index 0 = single ("T0"), …,
    /// index 5 = "T5 or more".
    pub timeouts: [u64; 6],
    /// Trace-average round-trip time, seconds.
    pub rtt: f64,
    /// Trace-average single-timeout duration, seconds.
    pub t0: f64,
}

impl TableRow {
    /// Builds a row from an analysis and timing estimates.
    pub fn from_analysis(
        sender: &str,
        receiver: &str,
        analysis: &Analysis,
        rtt: f64,
        t0: f64,
    ) -> TableRow {
        TableRow {
            sender: sender.to_string(),
            receiver: receiver.to_string(),
            packets_sent: analysis.packets_sent,
            loss_indications: analysis.indications.len() as u64,
            td: analysis.td_count(),
            timeouts: analysis.to_histogram(),
            rtt,
            t0,
        }
    }

    /// The paper's `p` estimate for this row.
    pub fn loss_rate(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.loss_indications as f64 / self.packets_sent as f64
        }
    }

    /// Fraction of loss indications that are timeouts — the observation the
    /// paper leads with ("in all traces, time-outs constitute the majority
    /// or a significant fraction of the total number of loss indications").
    pub fn timeout_fraction(&self) -> f64 {
        if self.loss_indications == 0 {
            0.0
        } else {
            self.timeouts.iter().sum::<u64>() as f64 / self.loss_indications as f64
        }
    }
}

/// Renders rows as an aligned text table in the paper's column order.
pub fn format_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<12} {:>8} {:>6} {:>5} {:>5} {:>4} {:>4} {:>4} {:>4} {:>7} {:>6} {:>6}\n",
        "Sender",
        "Receiver",
        "Packets",
        "Loss",
        "TD",
        "T0",
        "T1",
        "T2",
        "T3",
        "T4",
        "T5+",
        "RTT",
        "T.Out"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<12} {:>8} {:>6} {:>5} {:>5} {:>4} {:>4} {:>4} {:>4} {:>7} {:>6.3} {:>6.3}\n",
            r.sender,
            r.receiver,
            r.packets_sent,
            r.loss_indications,
            r.td,
            r.timeouts[0],
            r.timeouts[1],
            r.timeouts[2],
            r.timeouts[3],
            r.timeouts[4],
            r.timeouts[5],
            r.rtt,
            r.t0
        ));
    }
    out
}

impl fmt::Display for TableRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            format_table(std::slice::from_ref(self))
                .lines()
                .nth(1)
                .unwrap_or("")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{Analysis, IndicationKind, LossIndication};

    fn sample_analysis() -> Analysis {
        Analysis {
            indications: vec![
                LossIndication {
                    time_ns: 1,
                    kind: IndicationKind::TripleDuplicate,
                },
                LossIndication {
                    time_ns: 2,
                    kind: IndicationKind::Timeout { sequence_len: 1 },
                },
                LossIndication {
                    time_ns: 3,
                    kind: IndicationKind::Timeout { sequence_len: 2 },
                },
                LossIndication {
                    time_ns: 4,
                    kind: IndicationKind::Timeout { sequence_len: 9 },
                },
            ],
            packets_sent: 1000,
            retransmissions: 5,
            acks_seen: 400,
        }
    }

    #[test]
    fn row_from_analysis() {
        let row = TableRow::from_analysis("manic", "alps", &sample_analysis(), 0.207, 2.505);
        assert_eq!(row.packets_sent, 1000);
        assert_eq!(row.loss_indications, 4);
        assert_eq!(row.td, 1);
        assert_eq!(row.timeouts, [1, 1, 0, 0, 0, 1]);
        assert!((row.loss_rate() - 0.004).abs() < 1e-12);
        assert!((row.timeout_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn formatting_includes_all_columns() {
        let row = TableRow::from_analysis("manic", "baskerville", &sample_analysis(), 0.243, 2.495);
        let text = format_table(&[row]);
        assert!(text.contains("manic"));
        assert!(text.contains("baskerville"));
        assert!(text.contains("1000"));
        assert!(text.contains("0.243"));
        assert!(text.contains("2.495"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn display_matches_table_row() {
        let row = TableRow::from_analysis("a", "b", &sample_analysis(), 0.1, 1.0);
        let display = row.to_string();
        assert!(display.contains("1000"));
    }

    #[test]
    fn empty_row_edge_cases() {
        let a = Analysis {
            indications: vec![],
            packets_sent: 0,
            retransmissions: 0,
            acks_seen: 0,
        };
        let row = TableRow::from_analysis("x", "y", &a, 0.1, 1.0);
        assert_eq!(row.loss_rate(), 0.0);
        assert_eq!(row.timeout_fraction(), 0.0);
    }
}
