//! Fixed-interval segmentation of a trace — the paper's per-100-second
//! analysis (§III: "each 1 h trace was divided into 36 consecutive 100 s
//! intervals, and each plotted point on a graph represents the number of
//! packets sent versus the frequency of loss indications during a 100 s
//! interval").
//!
//! Each interval is also categorized like the paper's Fig. 7 legend:
//! `TD` if it suffered no timeout, `T0` if it saw at least one single
//! timeout but no backoff, `T1` for at least one double timeout, etc. —
//! the category is the *deepest* backoff observed.

use crate::analyzer::{Analysis, IndicationKind, LossIndication};
use crate::record::{Trace, TraceEvent};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};

/// The paper's interval categories (Fig. 7): the deepest loss-indication
/// type observed in the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IntervalCategory {
    /// No loss indications at all.
    NoLoss,
    /// Only triple-duplicate indications.
    TdOnly,
    /// At least one timeout; the payload is the deepest backoff level
    /// (0 = single timeout "T0", 1 = double "T1", …, capped at 5).
    Timeout(u8),
}

/// Per-interval statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Interval index (0-based).
    pub index: usize,
    /// Packets sent during the interval (the paper's `N_observed`).
    pub packets_sent: u64,
    /// Loss indications falling in the interval.
    pub loss_indications: u64,
    /// The paper's `p_observed` = indications ÷ packets (0 if nothing sent).
    pub loss_rate: f64,
    /// Deepest indication type in the interval.
    pub category: IntervalCategory,
}

/// Splits a trace plus its analysis into consecutive `interval_secs`-long
/// intervals (the trailing partial interval is dropped, as a partial
/// interval's send count is not comparable). The horizon is inferred from
/// the last record; use [`split_intervals_bounded`] when the true
/// experiment duration is known (an hour-long run's last packet rarely
/// lands exactly on the hour).
//= pftk#interval-100s
pub fn split_intervals(
    trace: &Trace,
    analysis: &Analysis,
    interval_secs: f64,
) -> Vec<IntervalStats> {
    let end_ns = trace.records().last().map_or(0, |r| r.time_ns);
    split_intervals_bounded(trace, analysis, interval_secs, end_ns as f64 / 1e9)
}

/// The incremental per-interval send counter: the streaming core behind
/// [`split_intervals_bounded`].
///
/// Between events the only retained state is one `u64` per *elapsed*
/// interval — 36 counters for the paper's hour at 100 s — because loss
/// indications arrive already-reduced (the classifier's `Analysis`) at
/// [`IntervalCore::finish`], which replays the exact batch bucketing and
/// categorization over them.
#[derive(Debug, Clone)]
pub struct IntervalCore {
    interval_ns: u64,
    sent: Vec<u64>,
}

impl IntervalCore {
    /// A fresh counter for `interval_secs`-long intervals.
    ///
    /// # Panics
    /// If `interval_secs` is not positive.
    pub fn new(interval_secs: f64) -> Self {
        assert!(interval_secs > 0.0, "interval length must be positive");
        IntervalCore {
            interval_ns: (interval_secs * 1e9) as u64,
            sent: Vec::new(),
        }
    }

    /// Consumes one data-segment departure (original or retransmission —
    /// the paper counts both as "packets sent").
    pub fn on_send(&mut self, time_ns: u64) {
        let idx = (time_ns / self.interval_ns) as usize;
        if idx >= self.sent.len() {
            self.sent.resize(idx + 1, 0);
        }
        self.sent[idx] += 1; //~ allow(hot_panic): resize above guarantees idx is in bounds
    }

    /// Number of interval counters currently retained — the input to
    /// streaming memory accounting.
    pub fn state_len(&self) -> usize {
        self.sent.len()
    }

    /// Writes the counters. The interval length is a shape tag: restore
    /// requires a core built with the same segmentation.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_tag(self.interval_ns);
        w.put_usize(self.sent.len());
        for v in &self.sent {
            w.put_u64(*v);
        }
    }

    /// Reads state written by [`IntervalCore::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.expect_tag("interval-ns", self.interval_ns)?;
        let n = r.get_usize()?;
        self.sent.clear();
        for _ in 0..n {
            self.sent.push(r.get_u64()?);
        }
        Ok(())
    }

    /// Buckets the finished connection's loss indications and emits the
    /// per-interval statistics, exactly `⌊total_secs / interval_secs⌋`
    /// of them (trailing partial intervals are dropped; intervals past the
    /// last send are zero-padded).
    pub fn finish(&self, indications_in: &[LossIndication], total_secs: f64) -> Vec<IntervalStats> {
        let interval_ns = self.interval_ns;
        let end_ns = (total_secs * 1e9) as u64;
        let n_full = (end_ns / interval_ns) as usize;
        if n_full == 0 {
            return Vec::new();
        }
        let mut sent = vec![0u64; n_full];
        let take = n_full.min(self.sent.len());
        sent[..take].copy_from_slice(&self.sent[..take]);
        let mut indications = vec![0u64; n_full];
        let mut deepest: Vec<Option<IntervalCategory>> = vec![None; n_full];
        for ind in indications_in {
            let idx = (ind.time_ns / interval_ns) as usize;
            if idx >= n_full {
                continue;
            }
            indications[idx] += 1;
            let cat = match ind.kind {
                IndicationKind::TripleDuplicate => IntervalCategory::TdOnly,
                IndicationKind::Timeout { sequence_len } => {
                    // `saturating_sub`: a deserialized `Analysis` may carry
                    // `sequence_len == 0`; it categorizes as a single
                    // timeout, matching `Analysis::to_histogram`.
                    IntervalCategory::Timeout((sequence_len.saturating_sub(1)).min(5) as u8)
                }
            };
            let slot = &mut deepest[idx];
            *slot = Some(match slot.take() {
                None => cat,
                Some(prev) => prev.max(cat),
            });
        }
        (0..n_full)
            .map(|i| IntervalStats {
                index: i,
                packets_sent: sent[i],
                loss_indications: indications[i],
                loss_rate: if sent[i] == 0 {
                    0.0
                } else {
                    indications[i] as f64 / sent[i] as f64
                },
                category: deepest[i].unwrap_or(IntervalCategory::NoLoss),
            })
            .collect()
    }
}

/// [`split_intervals`] with an explicit total duration: exactly
/// `⌊total_secs / interval_secs⌋` intervals are produced. A thin fold of
/// the incremental [`IntervalCore`] over the materialized records, so
/// batch and streaming segmentation are identical by construction.
pub fn split_intervals_bounded(
    trace: &Trace,
    analysis: &Analysis,
    interval_secs: f64,
    total_secs: f64,
) -> Vec<IntervalStats> {
    let mut core = IntervalCore::new(interval_secs);
    for rec in trace.records() {
        if let TraceEvent::Send { .. } = rec.event {
            core.on_send(rec.time_ns);
        }
    }
    core.finish(&analysis.indications, total_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze, AnalyzerConfig};
    use crate::record::TraceRecord;

    const S: u64 = 1_000_000_000;

    fn rec(time_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { time_ns, event }
    }

    fn send(seq: u64) -> TraceEvent {
        TraceEvent::Send { seq, retx: false }
    }

    fn ack(a: u64) -> TraceEvent {
        TraceEvent::AckIn { ack: a }
    }

    /// Builds a 350-second synthetic trace:
    ///   interval 0 (0–100 s): clean sends;
    ///   interval 1 (100–200 s): one single timeout;
    ///   interval 2 (200–300 s): one double timeout;
    ///   tail (300–350 s): partial, must be dropped.
    fn build() -> (Trace, Analysis) {
        let mut t = Trace::new();
        let mut seq = 0u64;
        // Interval 0: 10 clean packets, acked.
        for i in 0..10 {
            t.push(rec(i * S / 10, send(seq)));
            seq += 1;
        }
        t.push(rec(2 * S, ack(seq)));
        // Interval 1: a packet and its single timeout retransmission.
        t.push(rec(110 * S, send(seq)));
        t.push(rec(115 * S, send(seq))); // retransmission → T0
        t.push(rec(116 * S, ack(seq + 1)));
        seq += 1;
        // Interval 2: a double timeout.
        t.push(rec(210 * S, send(seq)));
        t.push(rec(214 * S, send(seq)));
        t.push(rec(222 * S, send(seq)));
        t.push(rec(223 * S, ack(seq + 1)));
        // Partial tail.
        t.push(rec(340 * S, send(seq + 1)));
        let a = analyze(&t, AnalyzerConfig::default());
        (t, a)
    }

    #[test]
    //= pftk#interval-100s type=test
    fn intervals_counted_and_categorized() {
        let (t, a) = build();
        let iv = split_intervals(&t, &a, 100.0);
        assert_eq!(iv.len(), 3, "partial tail dropped");
        assert_eq!(iv[0].packets_sent, 10);
        assert_eq!(iv[0].loss_indications, 0);
        assert_eq!(iv[0].category, IntervalCategory::NoLoss);
        assert_eq!(iv[1].loss_indications, 1);
        assert_eq!(iv[1].category, IntervalCategory::Timeout(0));
        assert_eq!(iv[2].category, IntervalCategory::Timeout(1));
        assert!((iv[1].loss_rate - 1.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn category_ordering_matches_paper_severity() {
        assert!(IntervalCategory::NoLoss < IntervalCategory::TdOnly);
        assert!(IntervalCategory::TdOnly < IntervalCategory::Timeout(0));
        assert!(IntervalCategory::Timeout(0) < IntervalCategory::Timeout(3));
    }

    #[test]
    fn empty_trace_no_intervals() {
        let t = Trace::new();
        let a = analyze(&t, AnalyzerConfig::default());
        assert!(split_intervals(&t, &a, 100.0).is_empty());
    }

    #[test]
    fn short_trace_no_full_interval() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(50 * S, send(1)));
        let a = analyze(&t, AnalyzerConfig::default());
        assert!(split_intervals(&t, &a, 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let t = Trace::new();
        let a = analyze(&t, AnalyzerConfig::default());
        let _ = split_intervals(&t, &a, 0.0);
    }

    #[test]
    fn zero_send_interval_has_zero_rate() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        // Nothing in interval 1, a send in interval 2 to extend the trace.
        t.push(rec(250 * S, send(1)));
        let a = analyze(&t, AnalyzerConfig::default());
        let iv = split_intervals(&t, &a, 100.0);
        assert_eq!(iv[1].packets_sent, 0);
        assert_eq!(iv[1].loss_rate, 0.0);
    }
}
