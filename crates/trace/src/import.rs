//! Import of external sender-side dumps in a simple line format, so traces
//! captured outside this workspace (e.g. converted from `tcpdump` output)
//! can feed the §III analysis programs.
//!
//! The format is one event per line:
//!
//! ```text
//! # comments and blank lines are skipped
//! 0.000000 send 0
//! 0.104211 ack 1
//! 0.104300 send 1
//! 3.201423 send 1        # repeated seq = retransmission (inferred anyway)
//! ```
//!
//! * column 1 — timestamp in seconds (float, non-decreasing);
//! * column 2 — `send` or `ack`;
//! * column 3 — packet sequence number (for `send`) or cumulative ACK
//!   ("next expected") value (for `ack`).
//!
//! A tcpdump line like `14:02:11.342 IP a.1234 > b.80: . 4345:5793(1448)
//! ack 1 win 8760` maps to `send <seq/1448>` after byte→packet conversion;
//! a one-line `awk` does the job, which is the point of the format.

use crate::record::{Trace, TraceEvent, TraceRecord};
use std::io::BufRead;

/// Errors raised while parsing an imported dump.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Malformed {
        /// 1-based line number.
        line_no: usize,
        /// The offending line.
        line: String,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "I/O error: {e}"),
            ImportError::Malformed {
                line_no,
                line,
                reason,
            } => {
                write!(f, "line {line_no}: {reason}: {line:?}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// Parses the line format described in the module docs into a [`Trace`].
pub fn import_text<R: BufRead>(reader: R) -> Result<Trace, ImportError> {
    let mut trace = Trace::new();
    let mut last_ns: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut fields = content.split_whitespace();
        let (Some(ts), Some(kind), Some(value)) = (fields.next(), fields.next(), fields.next())
        else {
            return Err(ImportError::Malformed {
                line_no,
                line,
                reason: "expected `<time> <send|ack> <number>`".into(),
            });
        };
        if fields.next().is_some() {
            return Err(ImportError::Malformed {
                line_no,
                line,
                reason: "trailing fields".into(),
            });
        }
        let secs: f64 = ts.parse().map_err(|_| ImportError::Malformed {
            line_no,
            line: line.clone(),
            reason: "bad timestamp".into(),
        })?;
        if !(secs.is_finite() && secs >= 0.0) {
            return Err(ImportError::Malformed {
                line_no,
                line,
                reason: "timestamp must be a non-negative number".into(),
            });
        }
        let number: u64 = value.parse().map_err(|_| ImportError::Malformed {
            line_no,
            line: line.clone(),
            reason: "bad sequence/ack number".into(),
        })?;
        let time_ns = (secs * 1e9).round() as u64;
        if time_ns < last_ns {
            return Err(ImportError::Malformed {
                line_no,
                line,
                reason: format!(
                    "timestamps must be non-decreasing (previous {:.6})",
                    last_ns as f64 / 1e9
                ),
            });
        }
        // Records at identical timestamps are fine; nudge is not needed —
        // Trace::push accepts equal times.
        last_ns = time_ns;
        let event = match kind {
            "send" => TraceEvent::Send {
                seq: number,
                retx: false,
            },
            "ack" => TraceEvent::AckIn { ack: number },
            other => {
                let reason = format!("unknown event kind {other:?} (want send|ack)");
                return Err(ImportError::Malformed {
                    line_no,
                    line,
                    reason,
                });
            }
        };
        trace.push(TraceRecord { time_ns, event });
    }
    Ok(trace)
}

/// Exports a trace to the same line format (lossless for analysis purposes;
/// the ground-truth `retx` flag is not representable and is re-inferred on
/// import).
pub fn export_text<W: std::io::Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                writeln!(w, "{:.9} send {}", rec.time_ns as f64 / 1e9, seq)?;
            }
            TraceEvent::AckIn { ack } => {
                writeln!(w, "{:.9} ack {}", rec.time_ns as f64 / 1e9, ack)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze, AnalyzerConfig};
    use std::io::Cursor;

    #[test]
    fn parses_the_documented_example() {
        let input = "\
# comments and blank lines are skipped

0.000000 send 0
0.104211 ack 1
0.104300 send 1
3.201423 send 1        # repeated seq = retransmission (inferred anyway)
";
        let trace = import_text(Cursor::new(input)).unwrap();
        assert_eq!(trace.len(), 4);
        let a = analyze(&trace, AnalyzerConfig::default());
        assert_eq!(a.packets_sent, 3);
        assert_eq!(a.retransmissions, 1);
        assert_eq!(
            a.to_count(),
            1,
            "the repeated send is a timeout retransmission"
        );
    }

    #[test]
    fn rejects_malformed_lines_with_position() {
        for (input, needle) in [
            ("0.0 send\n", "expected"),
            ("0.0 send 1 extra\n", "trailing"),
            ("abc send 1\n", "bad timestamp"),
            ("-1.0 send 1\n", "non-negative"),
            ("0.0 push 1\n", "unknown event kind"),
            ("0.0 send x\n", "bad sequence"),
            ("1.0 send 1\n0.5 send 2\n", "non-decreasing"),
        ] {
            let err = import_text(Cursor::new(input)).unwrap_err();
            let text = err.to_string();
            assert!(text.contains(needle), "{input:?} → {text}");
        }
    }

    #[test]
    fn export_import_roundtrip_preserves_analysis() {
        let mut trace = Trace::new();
        trace.push(TraceRecord {
            time_ns: 0,
            event: TraceEvent::Send {
                seq: 0,
                retx: false,
            },
        });
        trace.push(TraceRecord {
            time_ns: 100_000_000,
            event: TraceEvent::AckIn { ack: 1 },
        });
        trace.push(TraceRecord {
            time_ns: 100_000_001,
            event: TraceEvent::Send {
                seq: 1,
                retx: false,
            },
        });
        trace.push(TraceRecord {
            time_ns: 3_000_000_000,
            event: TraceEvent::Send { seq: 1, retx: true },
        });
        let mut buf = Vec::new();
        export_text(&trace, &mut buf).unwrap();
        let back = import_text(Cursor::new(buf)).unwrap();
        // The retx flag is re-inferred, so compare analyses, not records.
        let a1 = analyze(&trace, AnalyzerConfig::default());
        let a2 = analyze(&back, AnalyzerConfig::default());
        assert_eq!(a1, a2);
    }

    #[test]
    fn equal_timestamps_accepted() {
        let input = "1.0 send 0\n1.0 send 1\n";
        let trace = import_text(Cursor::new(input)).unwrap();
        assert_eq!(trace.len(), 2);
    }
}
