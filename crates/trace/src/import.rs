//! Import of external sender-side dumps in a simple line format, so traces
//! captured outside this workspace (e.g. converted from `tcpdump` output)
//! can feed the §III analysis programs.
//!
//! The format is one event per line:
//!
//! ```text
//! # comments and blank lines are skipped
//! 0.000000 send 0
//! 0.104211 ack 1
//! 0.104300 send 1
//! 3.201423 send 1        # repeated seq = retransmission (inferred anyway)
//! ```
//!
//! * column 1 — timestamp in seconds (float, non-decreasing);
//! * column 2 — `send` or `ack`;
//! * column 3 — packet sequence number (for `send`) or cumulative ACK
//!   ("next expected") value (for `ack`).
//!
//! A tcpdump line like `14:02:11.342 IP a.1234 > b.80: . 4345:5793(1448)
//! ack 1 win 8760` maps to `send <seq/1448>` after byte→packet conversion;
//! a one-line `awk` does the job, which is the point of the format.
//!
//! Two parsers are provided. [`import_text`] is **lenient**: real captures
//! get truncated mid-record, duplicated by flaky pipes, and mildly
//! reordered by clock steps, so it salvages every usable event and reports
//! the damage in a [`TraceHealth`] instead of failing (only I/O errors are
//! hard errors). [`import_text_strict`] is the old all-or-nothing parser,
//! for callers that want a conversion bug to be loud.

use crate::health::{HealthIssue, TraceHealth};
use crate::record::{Trace, TraceEvent, TraceRecord};
use std::io::BufRead;

/// Errors raised while parsing an imported dump.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content
    /// ([`import_text_strict`] only).
    Malformed {
        /// 1-based line number.
        line_no: usize,
        /// The offending line.
        line: String,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "I/O error: {e}"),
            ImportError::Malformed {
                line_no,
                line,
                reason,
            } => {
                write!(f, "line {line_no}: {reason}: {line:?}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// The result of a lenient import: the salvaged trace plus its health.
#[derive(Debug, Clone, PartialEq)]
pub struct Import {
    /// The salvaged, monotone trace.
    pub trace: Trace,
    /// What was discarded or repaired on the way in.
    pub health: TraceHealth,
}

/// One successfully parsed line, before monotonicity repair.
struct ParsedLine {
    time_ns: u64,
    event: TraceEvent,
}

/// Parses one non-empty, comment-stripped line; `Err` is a human-readable
/// reason.
fn parse_line(content: &str) -> Result<ParsedLine, String> {
    let mut fields = content.split_whitespace();
    let (Some(ts), Some(kind), Some(value)) = (fields.next(), fields.next(), fields.next()) else {
        return Err("expected `<time> <send|ack> <number>`".into());
    };
    if fields.next().is_some() {
        return Err("trailing fields".into());
    }
    let secs: f64 = ts.parse().map_err(|_| "bad timestamp".to_string())?;
    if !(secs.is_finite() && secs >= 0.0) {
        return Err("timestamp must be a non-negative number".into());
    }
    let number: u64 = value
        .parse()
        .map_err(|_| "bad sequence/ack number".to_string())?;
    //~ allow(cast): finite non-negative seconds to integer nanoseconds
    let time_ns = (secs * 1e9).round() as u64;
    let event = match kind {
        "send" => TraceEvent::Send {
            seq: number,
            retx: false,
        },
        "ack" => TraceEvent::AckIn { ack: number },
        other => return Err(format!("unknown event kind {other:?} (want send|ack)")),
    };
    Ok(ParsedLine { time_ns, event })
}

/// Leniently parses the line format described in the module docs.
///
/// Salvage policy:
///
/// * a malformed **final** line is treated as a truncated tail (the capture
///   was cut mid-record): the complete prefix is kept and the fragment
///   reported as [`HealthIssue::TruncatedTail`];
/// * a malformed **mid-stream** line is discarded with
///   [`HealthIssue::Malformed`];
/// * a timestamp that goes backwards is clamped up to its predecessor
///   ([`HealthIssue::TimestampClamped`]) so the salvaged trace is monotone;
/// * an exact consecutive duplicate of the previous record is discarded
///   ([`HealthIssue::DuplicateRecord`]).
///
/// Only I/O failures are hard errors.
pub fn import_text<R: BufRead>(mut reader: R) -> Result<Import, ImportError> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    let mut trace = Trace::new();
    let mut health = TraceHealth::new();
    let mut last_ns: u64 = 0;
    let mut last_event: Option<TraceEvent> = None;
    // Remember only meaningful lines so "last line" means "last record
    // attempt", not a trailing blank.
    let meaningful: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter_map(|(idx, raw)| {
            let content = raw.split('#').next().unwrap_or("").trim();
            (!content.is_empty()).then_some((idx + 1, content))
        })
        .collect();
    let total = meaningful.len();
    for (pos, (line_no, content)) in meaningful.into_iter().enumerate() {
        match parse_line(content) {
            Err(reason) => {
                health.discarded += 1;
                if pos + 1 == total {
                    health.warn(
                        line_no,
                        HealthIssue::TruncatedTail {
                            fragment: content.to_string(),
                        },
                    );
                } else {
                    health.warn(line_no, HealthIssue::Malformed { reason });
                }
            }
            Ok(parsed) => {
                let mut time_ns = parsed.time_ns;
                if time_ns < last_ns {
                    health.warn(
                        line_no,
                        HealthIssue::TimestampClamped {
                            original_ns: time_ns,
                            clamped_to_ns: last_ns,
                        },
                    );
                    health.repaired += 1;
                    time_ns = last_ns;
                }
                if time_ns == last_ns && last_event == Some(parsed.event) && !trace.is_empty() {
                    health.warn(line_no, HealthIssue::DuplicateRecord);
                    health.discarded += 1;
                    continue;
                }
                last_ns = time_ns;
                last_event = Some(parsed.event);
                health.salvaged += 1;
                trace.push(TraceRecord {
                    time_ns,
                    event: parsed.event,
                });
            }
        }
    }
    Ok(Import { trace, health })
}

/// Strictly parses the line format: the first malformed line, decreasing
/// timestamp, or unknown event kind aborts the import with a located
/// [`ImportError::Malformed`]. Use when a conversion bug should be loud
/// rather than salvaged around.
pub fn import_text_strict<R: BufRead>(reader: R) -> Result<Trace, ImportError> {
    let mut trace = Trace::new();
    let mut last_ns: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let parsed = parse_line(content).map_err(|reason| ImportError::Malformed {
            line_no,
            line: line.clone(),
            reason,
        })?;
        if parsed.time_ns < last_ns {
            return Err(ImportError::Malformed {
                line_no,
                line,
                reason: format!(
                    "timestamps must be non-decreasing (previous {:.6})",
                    last_ns as f64 / 1e9
                ),
            });
        }
        // Records at identical timestamps are fine; Trace::push accepts
        // equal times.
        last_ns = parsed.time_ns;
        trace.push(TraceRecord {
            time_ns: parsed.time_ns,
            event: parsed.event,
        });
    }
    Ok(trace)
}

/// Exports a trace to the same line format (lossless for analysis purposes;
/// the ground-truth `retx` flag is not representable and is re-inferred on
/// import).
pub fn export_text<W: std::io::Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                writeln!(w, "{:.9} send {}", rec.time_ns as f64 / 1e9, seq)?;
            }
            TraceEvent::AckIn { ack } => {
                writeln!(w, "{:.9} ack {}", rec.time_ns as f64 / 1e9, ack)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze, AnalyzerConfig};
    use std::io::Cursor;

    #[test]
    fn parses_the_documented_example() {
        let input = "\
# comments and blank lines are skipped

0.000000 send 0
0.104211 ack 1
0.104300 send 1
3.201423 send 1        # repeated seq = retransmission (inferred anyway)
";
        let imported = import_text(Cursor::new(input)).unwrap();
        assert!(imported.health.is_clean());
        assert_eq!(imported.health.salvaged, 4);
        let trace = imported.trace;
        assert_eq!(trace.len(), 4);
        assert_eq!(trace, import_text_strict(Cursor::new(input)).unwrap());
        let a = analyze(&trace, AnalyzerConfig::default());
        assert_eq!(a.packets_sent, 3);
        assert_eq!(a.retransmissions, 1);
        assert_eq!(
            a.to_count(),
            1,
            "the repeated send is a timeout retransmission"
        );
    }

    #[test]
    fn strict_rejects_malformed_lines_with_position() {
        for (input, needle) in [
            ("0.0 send\n", "expected"),
            ("0.0 send 1 extra\n", "trailing"),
            ("abc send 1\n", "bad timestamp"),
            ("-1.0 send 1\n", "non-negative"),
            ("0.0 push 1\n", "unknown event kind"),
            ("0.0 send x\n", "bad sequence"),
            ("1.0 send 1\n0.5 send 2\n", "non-decreasing"),
        ] {
            let err = import_text_strict(Cursor::new(input)).unwrap_err();
            let text = err.to_string();
            assert!(text.contains(needle), "{input:?} → {text}");
        }
    }

    #[test]
    fn export_import_roundtrip_preserves_analysis() {
        let mut trace = Trace::new();
        trace.push(TraceRecord {
            time_ns: 0,
            event: TraceEvent::Send {
                seq: 0,
                retx: false,
            },
        });
        trace.push(TraceRecord {
            time_ns: 100_000_000,
            event: TraceEvent::AckIn { ack: 1 },
        });
        trace.push(TraceRecord {
            time_ns: 100_000_001,
            event: TraceEvent::Send {
                seq: 1,
                retx: false,
            },
        });
        trace.push(TraceRecord {
            time_ns: 3_000_000_000,
            event: TraceEvent::Send { seq: 1, retx: true },
        });
        let mut buf = Vec::new();
        export_text(&trace, &mut buf).unwrap();
        let back = import_text(Cursor::new(buf)).unwrap();
        assert!(back.health.is_clean());
        // The retx flag is re-inferred, so compare analyses, not records.
        let a1 = analyze(&trace, AnalyzerConfig::default());
        let a2 = analyze(&back.trace, AnalyzerConfig::default());
        assert_eq!(a1, a2);
    }

    #[test]
    fn equal_timestamps_accepted() {
        let input = "1.0 send 0\n1.0 send 1\n";
        let imported = import_text(Cursor::new(input)).unwrap();
        assert!(imported.health.is_clean());
        assert_eq!(imported.trace.len(), 2);
    }

    #[test]
    fn truncated_final_line_salvages_prefix() {
        // The capture died mid-record: the last line has no value column.
        let input = "0.0 send 0\n0.1 ack 1\n0.2 se";
        let imported = import_text(Cursor::new(input)).unwrap();
        assert_eq!(imported.trace.len(), 2);
        assert_eq!(imported.health.salvaged, 2);
        assert_eq!(imported.health.discarded, 1);
        assert!(matches!(
            &imported.health.warnings()[0].issue,
            HealthIssue::TruncatedTail { fragment } if fragment == "0.2 se"
        ));
        assert_eq!(imported.health.warnings()[0].location, 3);
        // The strict parser still rejects the same input.
        assert!(import_text_strict(Cursor::new(input)).is_err());
    }

    #[test]
    fn midstream_garbage_is_discarded_with_reason() {
        let input = "0.0 send 0\nGARBAGE LINE\n0.2 send 1\n";
        let imported = import_text(Cursor::new(input)).unwrap();
        assert_eq!(imported.trace.len(), 2);
        assert_eq!(imported.health.discarded, 1);
        assert!(matches!(
            &imported.health.warnings()[0].issue,
            HealthIssue::Malformed { .. }
        ));
        assert_eq!(imported.health.warnings()[0].location, 2);
    }

    #[test]
    fn out_of_order_timestamps_are_clamped_monotone() {
        // 0.3 then 0.2: the second is clamped up to 0.3.
        let input = "0.1 send 0\n0.3 send 1\n0.2 ack 1\n0.4 send 2\n";
        let imported = import_text(Cursor::new(input)).unwrap();
        assert_eq!(imported.trace.len(), 4);
        assert_eq!(imported.health.repaired, 1);
        assert!(matches!(
            imported.health.warnings()[0].issue,
            HealthIssue::TimestampClamped {
                original_ns: 200_000_000,
                clamped_to_ns: 300_000_000
            }
        ));
        let times: Vec<u64> = imported.trace.records().iter().map(|r| r.time_ns).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "monotone after repair"
        );
    }

    #[test]
    fn consecutive_duplicates_are_discarded() {
        let input = "0.1 send 0\n0.1 send 0\n0.2 ack 1\n";
        let imported = import_text(Cursor::new(input)).unwrap();
        assert_eq!(imported.trace.len(), 2);
        assert_eq!(imported.health.discarded, 1);
        assert!(matches!(
            imported.health.warnings()[0].issue,
            HealthIssue::DuplicateRecord
        ));
        // A retransmission at a *later* time is NOT a duplicate.
        let retx = "0.1 send 0\n0.5 send 0\n";
        let imported = import_text(Cursor::new(retx)).unwrap();
        assert_eq!(imported.trace.len(), 2);
        assert!(imported.health.is_clean());
    }

    #[test]
    fn lenient_import_never_hard_errors_on_text() {
        for input in [
            "",
            "\n\n#only comments\n",
            "total nonsense\nmore nonsense",
            "9.9 ack\n",
            "1.0 send 1\nNaN send 2\ninf ack 3\n-0.5 send 4\n",
        ] {
            let imported = import_text(Cursor::new(input)).unwrap();
            let times: Vec<u64> = imported.trace.records().iter().map(|r| r.time_ns).collect();
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{input:?}");
        }
    }
}
