//! Loss-indication extraction and TD/TO classification from sender-side
//! traces — a reimplementation of the paper's trace-analysis programs
//! (§III; the originals were "verified by checking them against tcptrace
//! and ns", ours is verified against the simulator's ground-truth counters).
//!
//! Only wire-visible information is used: the analyzer re-derives
//! retransmissions from sequence-number repetition and counts duplicate
//! ACKs itself. The `retx` flag in the records is deliberately ignored.
//!
//! Classification rules:
//!
//! * a retransmission preceded (since the last forward ACK) by at least
//!   `dupack_threshold` duplicate ACKs is a **TD** (fast-retransmit)
//!   indication — the threshold is 3, or 2 for Linux senders (§III: "we
//!   account for the fact that TD events occur after getting only two
//!   duplicate ACKs");
//! * any other retransmission is a **timeout**; consecutive timeout
//!   retransmissions with no intervening forward ACK chain into a single
//!   timeout *sequence* whose length gives the paper's T0/T1/…/T5+
//!   buckets (Table II).

use crate::record::{Trace, TraceEvent};
use pftk_snap::{SnapError, SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};

/// Loss-indication kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndicationKind {
    /// Triple-duplicate (fast retransmit).
    TripleDuplicate,
    /// A timeout sequence of the given length (1 = single timeout, 2 =
    /// one exponential backoff, …).
    Timeout {
        /// Number of consecutive timeout retransmissions in the sequence.
        sequence_len: u32,
    },
}

/// One detected loss indication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossIndication {
    /// Time of the indication (first retransmission of the sequence for
    /// timeouts), nanoseconds.
    pub time_ns: u64,
    /// TD or TO (with sequence length).
    pub kind: IndicationKind,
}

impl LossIndication {
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_u64(self.time_ns);
        match self.kind {
            IndicationKind::TripleDuplicate => w.put_u8(0),
            IndicationKind::Timeout { sequence_len } => {
                w.put_u8(1);
                w.put_u32(sequence_len);
            }
        }
    }

    pub(crate) fn restore_from(r: &mut SnapReader<'_>) -> SnapResult<LossIndication> {
        let time_ns = r.get_u64()?;
        let kind = match r.get_u8()? {
            0 => IndicationKind::TripleDuplicate,
            1 => IndicationKind::Timeout {
                sequence_len: r.get_u32()?,
            },
            _ => return Err(SnapError::Invalid("loss-indication discriminant")),
        };
        Ok(LossIndication { time_ns, kind })
    }
}

/// Analyzer configuration.
#[derive(Debug, Clone, Copy)]
//= pftk#linux-dupthresh
pub struct AnalyzerConfig {
    /// Duplicate ACKs that mark a retransmission as a fast retransmit
    /// (3 standard, 2 for Linux senders).
    pub dupack_threshold: u32,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            dupack_threshold: 3,
        }
    }
}

/// Full analysis result for one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Every loss indication, in time order.
    pub indications: Vec<LossIndication>,
    /// Total data transmissions observed.
    pub packets_sent: u64,
    /// Retransmissions inferred from sequence repetition.
    pub retransmissions: u64,
    /// ACKs observed.
    pub acks_seen: u64,
}

impl Analysis {
    /// Number of TD indications.
    pub fn td_count(&self) -> u64 {
        self.indications
            .iter()
            .filter(|i| i.kind == IndicationKind::TripleDuplicate)
            .count() as u64
    }

    /// Number of timeout sequences.
    pub fn to_count(&self) -> u64 {
        self.indications.len() as u64 - self.td_count()
    }

    /// Timeout sequences bucketed by length, Table II style: index 0 holds
    /// single timeouts ("T0"), …, index 5 holds length ≥ 6 ("T5 or more").
    ///
    /// A `sequence_len` of 0 cannot be produced by the classifier, but an
    /// [`Analysis`] deserialized from external data may carry one; such a
    /// record lands in the "T0" bucket instead of panicking on underflow.
    pub fn to_histogram(&self) -> [u64; 6] {
        let mut hist = [0u64; 6];
        for ind in &self.indications {
            if let IndicationKind::Timeout { sequence_len } = ind.kind {
                let idx = (sequence_len as usize).saturating_sub(1).min(5);
                hist[idx] += 1;
            }
        }
        hist
    }

    /// The paper's loss-rate estimate `p` = loss indications ÷ packets sent.
    //= pftk#loss-rate-estimate
    pub fn loss_rate(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.indications.len() as f64 / self.packets_sent as f64
        }
    }
}

/// The incremental TD/TO classification automaton: the streaming core
/// behind [`analyze`].
///
/// Feed it wire events one at a time ([`Classifier::on_send`] /
/// [`Classifier::on_ack`]) and call [`Classifier::finish`] at end of
/// trace. Between events it holds O(1) automaton state plus the
/// indications emitted so far; it never needs the trace itself, which is
/// what lets hour-long campaigns analyze while simulating instead of
/// materializing every wire event first (see [`crate::stream`]).
#[derive(Debug, Clone)]
pub struct Classifier {
    config: AnalyzerConfig,
    snd_max: u64,
    last_ack: u64,
    dupacks: u32,
    /// An open timeout sequence: (start time, length).
    open_to: Option<(u64, u32)>,
    /// Set right after a TD classification; cleared on forward progress.
    /// A further retransmission without progress is a timeout, not a second
    /// TD (the duplicate ACKs were already "spent").
    td_consumed: bool,
    out: Analysis,
}

impl Classifier {
    /// A fresh automaton.
    pub fn new(config: AnalyzerConfig) -> Self {
        Classifier {
            config,
            snd_max: 0,
            last_ack: 0,
            dupacks: 0,
            open_to: None,
            td_consumed: false,
            out: Analysis {
                indications: Vec::new(),
                packets_sent: 0,
                retransmissions: 0,
                acks_seen: 0,
            },
        }
    }

    /// Consumes one ACK arrival.
    pub fn on_ack(&mut self, _time_ns: u64, ack: u64) {
        self.out.acks_seen += 1;
        if ack > self.last_ack {
            // Forward progress closes any open timeout sequence.
            if let Some((start, len)) = self.open_to.take() {
                self.out.indications.push(LossIndication {
                    time_ns: start,
                    kind: IndicationKind::Timeout { sequence_len: len },
                });
            }
            self.last_ack = ack;
            self.dupacks = 0;
            self.td_consumed = false;
        } else if ack == self.last_ack {
            self.dupacks += 1;
        }
    }

    /// Consumes one data-segment departure.
    pub fn on_send(&mut self, time_ns: u64, seq: u64) {
        self.out.packets_sent += 1;
        if seq >= self.snd_max {
            self.snd_max = seq + 1;
            return;
        }
        // A repeated sequence number: retransmission.
        self.out.retransmissions += 1;
        if self.dupacks >= self.config.dupack_threshold
            && !self.td_consumed
            && self.open_to.is_none()
        {
            self.out.indications.push(LossIndication {
                time_ns,
                kind: IndicationKind::TripleDuplicate,
            });
            self.td_consumed = true;
        } else {
            match &mut self.open_to {
                Some((_, len)) => *len += 1,
                None => self.open_to = Some((time_ns, 1)),
            }
        }
    }

    /// Loss indications emitted so far (an open timeout sequence is not yet
    /// among them; [`Classifier::finish`] flushes it).
    pub fn indications(&self) -> &[LossIndication] {
        &self.out.indications
    }

    /// Writes the automaton's mutable state (field order is part of the
    /// snapshot format — see DESIGN.md §13). The dupack threshold is a
    /// shape tag: restore requires an identically-configured classifier.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_tag(u64::from(self.config.dupack_threshold));
        w.put_u64(self.snd_max);
        w.put_u64(self.last_ack);
        w.put_u32(self.dupacks);
        match self.open_to {
            Some((start, len)) => {
                w.put_bool(true);
                w.put_u64(start);
                w.put_u32(len);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.td_consumed);
        w.put_usize(self.out.indications.len());
        for ind in &self.out.indications {
            ind.snapshot_into(w);
        }
        w.put_u64(self.out.packets_sent);
        w.put_u64(self.out.retransmissions);
        w.put_u64(self.out.acks_seen);
    }

    /// Reads state written by [`Classifier::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        r.expect_tag(
            "classifier-dupack-threshold",
            u64::from(self.config.dupack_threshold),
        )?;
        self.snd_max = r.get_u64()?;
        self.last_ack = r.get_u64()?;
        self.dupacks = r.get_u32()?;
        self.open_to = if r.get_bool()? {
            Some((r.get_u64()?, r.get_u32()?))
        } else {
            None
        };
        self.td_consumed = r.get_bool()?;
        let n = r.get_usize()?;
        self.out.indications.clear();
        for _ in 0..n {
            self.out.indications.push(LossIndication::restore_from(r)?);
        }
        self.out.packets_sent = r.get_u64()?;
        self.out.retransmissions = r.get_u64()?;
        self.out.acks_seen = r.get_u64()?;
        Ok(())
    }

    /// Closes the automaton: flushes an unterminated timeout sequence and
    /// restores time order (timeout sequences are recorded at close time,
    /// which can interleave with TDs out of order).
    pub fn finish(mut self) -> Analysis {
        if let Some((start, len)) = self.open_to.take() {
            self.out.indications.push(LossIndication {
                time_ns: start,
                kind: IndicationKind::Timeout { sequence_len: len },
            });
        }
        self.out.indications.sort_by_key(|i| i.time_ns);
        self.out
    }
}

/// Analyzes a sender-side trace: a thin fold of the incremental
/// [`Classifier`] over the materialized records. Streaming consumers feed
/// the same automaton event by event through [`crate::stream`], so batch
/// and streaming classification are identical by construction.
//= pftk#td-to-classify
//= pftk#to-sequence
pub fn analyze(trace: &Trace, config: AnalyzerConfig) -> Analysis {
    let mut cls = Classifier::new(config);
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => cls.on_send(rec.time_ns, seq),
            TraceEvent::AckIn { ack } => cls.on_ack(rec.time_ns, ack),
        }
    }
    cls.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn trace(events: &[(u64, TraceEvent)]) -> Trace {
        let mut t = Trace::new();
        for &(time_ns, event) in events {
            t.push(TraceRecord { time_ns, event });
        }
        t
    }

    fn send(seq: u64) -> TraceEvent {
        TraceEvent::Send { seq, retx: false }
    }

    fn ack(a: u64) -> TraceEvent {
        TraceEvent::AckIn { ack: a }
    }

    #[test]
    fn clean_transfer_has_no_indications() {
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (100, ack(2)),
            (101, send(2)),
            (102, send(3)),
            (200, ack(4)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert!(a.indications.is_empty());
        assert_eq!(a.packets_sent, 4);
        assert_eq!(a.retransmissions, 0);
        assert_eq!(a.acks_seen, 2);
        assert_eq!(a.loss_rate(), 0.0);
    }

    #[test]
    //= pftk#td-to-classify type=test
    fn triple_duplicate_classified_as_td() {
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (2, send(2)),
            (3, send(3)),
            (4, send(4)),
            (100, ack(1)), // packet 1 lost; these are dupacks for 1
            (110, ack(1)),
            (120, ack(1)),
            (130, ack(1)),  // third duplicate
            (131, send(1)), // fast retransmit
            (200, ack(5)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.indications.len(), 1);
        assert_eq!(a.indications[0].kind, IndicationKind::TripleDuplicate);
        assert_eq!(a.indications[0].time_ns, 131);
        assert_eq!(a.retransmissions, 1);
    }

    #[test]
    //= pftk#linux-dupthresh type=test
    fn linux_threshold_two() {
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (2, send(2)),
            (100, ack(1)),
            (110, ack(1)),
            (120, ack(1)), // two duplicates
            (121, send(1)),
        ]);
        let std = analyze(&t, AnalyzerConfig::default());
        assert!(matches!(
            std.indications[0].kind,
            IndicationKind::Timeout { .. }
        ));
        let linux = analyze(
            &t,
            AnalyzerConfig {
                dupack_threshold: 2,
            },
        );
        assert_eq!(linux.indications[0].kind, IndicationKind::TripleDuplicate);
    }

    #[test]
    fn lone_retransmission_is_single_timeout() {
        let t = trace(&[
            (0, send(0)),
            (3_000_000_000, send(0)), // RTO retransmission
            (3_100_000_000, ack(1)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.indications.len(), 1);
        assert_eq!(
            a.indications[0].kind,
            IndicationKind::Timeout { sequence_len: 1 }
        );
        assert_eq!(a.indications[0].time_ns, 3_000_000_000);
    }

    #[test]
    //= pftk#to-sequence type=test
    fn backoff_chain_is_one_sequence() {
        let t = trace(&[
            (0, send(0)),
            (3_000_000_000, send(0)),
            (9_000_000_000, send(0)),  // doubled
            (21_000_000_000, send(0)), // doubled again
            (21_100_000_000, ack(1)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.indications.len(), 1);
        assert_eq!(
            a.indications[0].kind,
            IndicationKind::Timeout { sequence_len: 3 }
        );
        assert_eq!(a.to_histogram(), [0, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn unterminated_sequence_flushed_at_end() {
        let t = trace(&[(0, send(0)), (3_000_000_000, send(0))]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.indications.len(), 1);
        assert!(matches!(
            a.indications[0].kind,
            IndicationKind::Timeout { sequence_len: 1 }
        ));
    }

    #[test]
    fn fast_retransmit_then_rto_counts_td_and_to() {
        // The fast retransmit itself is lost; the subsequent RTO
        // retransmission (no new dupacks, no progress) must be a timeout,
        // not a second TD.
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (2, send(2)),
            (3, send(3)),
            (100, ack(1)),
            (110, ack(1)),
            (120, ack(1)),
            (130, ack(1)),
            (131, send(1)),           // fast retransmit (lost)
            (5_000_000_000, send(1)), // RTO
            (5_100_000_000, ack(4)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.indications.len(), 2);
        assert_eq!(a.td_count(), 1);
        assert_eq!(a.to_count(), 1);
    }

    #[test]
    fn separate_sequences_after_progress() {
        let t = trace(&[
            (0, send(0)),
            (3_000_000_000, send(0)),
            (3_100_000_000, ack(1)), // progress: sequence 1 closes
            (3_100_000_001, send(1)),
            (8_000_000_000, send(1)), // new sequence
            (8_100_000_000, ack(2)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.to_count(), 2);
        assert_eq!(a.to_histogram()[0], 2);
    }

    #[test]
    fn loss_rate_counts_indications_over_sent() {
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (2, send(2)),
            (3, send(3)),
            (3_000_000_000, send(0)),
            (3_100_000_000, ack(4)),
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        assert_eq!(a.packets_sent, 5);
        assert!((a.loss_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn indications_sorted_in_time() {
        // A TD occurring after a TO sequence started but before it closed
        // must still come out in time order.
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (2, send(2)),
            (3, send(3)),
            (3_000_000_000, send(0)), // TO starts
            (3_000_000_100, ack(1)),  // progress closes TO
            (3_000_000_200, ack(1)),
            (3_000_000_300, ack(1)),
            (3_000_000_400, ack(1)),
            (3_000_000_500, send(1)), // TD
        ]);
        let a = analyze(&t, AnalyzerConfig::default());
        let times: Vec<u64> = a.indications.iter().map(|i| i.time_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(a.indications.len(), 2);
    }

    #[test]
    fn empty_trace() {
        let a = analyze(&Trace::new(), AnalyzerConfig::default());
        assert!(a.indications.is_empty());
        assert_eq!(a.loss_rate(), 0.0);
    }

    #[test]
    fn zero_length_timeout_sequence_does_not_underflow_histogram() {
        // The classifier never emits sequence_len == 0, but a deserialized
        // Analysis (external JSON) can carry one; the histogram must not
        // panic on `0 - 1` in debug builds.
        let a = Analysis {
            indications: vec![LossIndication {
                time_ns: 0,
                kind: IndicationKind::Timeout { sequence_len: 0 },
            }],
            packets_sent: 1,
            retransmissions: 1,
            acks_seen: 0,
        };
        assert_eq!(a.to_histogram(), [1, 0, 0, 0, 0, 0]);
        assert_eq!(a.to_count(), 1);
    }
}
