//! RTT and timeout-duration estimation from sender-side traces.
//!
//! The paper (§III): "When calculating RTT values, we follow Karn's
//! algorithm, in an attempt to minimize the impact of time-outs and
//! retransmissions on the RTT estimates." Karn's rule: never take an RTT
//! sample from a segment that was retransmitted, because the ACK cannot be
//! attributed to a particular transmission.
//!
//! `T0` (Table II's "Time Out" column) is estimated as the duration of the
//! *first* timeout in each timeout sequence: the gap between the
//! retransmission and the later of (a) the last prior transmission of that
//! sequence number and (b) the last forward-ACK arrival (the events that
//! restart a TCP retransmission timer).

use crate::record::{Trace, TraceEvent};
use std::collections::BTreeMap;

/// RTT/T0 estimates extracted from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingEstimates {
    /// Mean round-trip time over all Karn-valid samples, seconds.
    pub mean_rtt: Option<f64>,
    /// Number of RTT samples taken.
    pub rtt_samples: u64,
    /// Mean single-timeout duration, seconds.
    pub mean_t0: Option<f64>,
    /// Number of T0 samples (one per timeout sequence).
    pub t0_samples: u64,
}

/// Extracts RTT and T0 estimates from a sender-side trace.
//= pftk#karn-rto
//= pftk#t0-first-timeout
pub fn estimate_timing(trace: &Trace) -> TimingEstimates {
    // --- RTT via Karn ---------------------------------------------------
    // pending: first-transmission times of not-yet-acked segments; a
    // retransmission permanently disqualifies its sequence number.
    let mut pending: BTreeMap<u64, u64> = BTreeMap::new();
    let mut snd_max: u64 = 0;
    let mut last_ack: u64 = 0;
    // Samples tagged with how many segments the ACK covered: delayed-ACK
    // receivers hold an odd final segment for the delack timer (~200 ms),
    // inflating single-cover samples; when the trace shows delayed acking
    // (a substantial share of multi-cover ACKs), single-cover samples are
    // discarded.
    let mut samples: Vec<(f64, usize)> = Vec::new();

    // --- T0 --------------------------------------------------------------
    // last transmission time per in-flight seq is also what T0 needs.
    let mut last_send_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_progress_ns: Option<u64> = None;
    let mut in_to_sequence = false;
    let mut t0_sum = 0.0;
    let mut t0_n: u64 = 0;

    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                if seq >= snd_max {
                    snd_max = seq + 1;
                    pending.insert(seq, rec.time_ns);
                } else {
                    // Retransmission: Karn-disqualify this sequence.
                    pending.remove(&seq);
                    if !in_to_sequence {
                        // First retransmission since last progress: if it is
                        // a timeout (no way to tell TD vs TO here without
                        // the classifier; T0 sampling accepts the small TD
                        // contamination the same way trace tools do — the
                        // gap for a fast retransmit is ≈RTT and for a
                        // timeout ≈RTO, so downstream users combine this
                        // with the classifier; see `estimate_t0_classified`).
                        let anchor = last_send_of
                            .get(&seq)
                            .copied()
                            .into_iter()
                            .chain(last_progress_ns)
                            .max();
                        if let Some(anchor) = anchor {
                            if rec.time_ns > anchor {
                                t0_sum += (rec.time_ns - anchor) as f64 / 1e9;
                                t0_n += 1;
                            }
                        }
                        in_to_sequence = true;
                    }
                }
                last_send_of.insert(seq, rec.time_ns);
            }
            TraceEvent::AckIn { ack } => {
                if ack > last_ack {
                    last_ack = ack;
                    last_progress_ns = Some(rec.time_ns);
                    in_to_sequence = false;
                    // Sample the *highest* newly covered segment: with
                    // delayed ACKs its send→ack gap is the cleanest RTT
                    // (lower segments include the delayed-ACK hold).
                    let covered: Vec<u64> = pending.range(..ack).map(|(&s, _)| s).collect();
                    if let Some(&highest) = covered.last() {
                        let sent = pending[&highest];
                        if rec.time_ns > sent {
                            samples.push(((rec.time_ns - sent) as f64 / 1e9, covered.len()));
                        }
                    }
                    for s in covered {
                        pending.remove(&s);
                        last_send_of.remove(&s);
                    }
                }
            }
        }
    }

    let multi = samples.iter().filter(|(_, c)| *c >= 2).count();
    let delayed_acking = multi * 3 >= samples.len(); // ≥1/3 multi-cover ACKs
    let mut kept: Vec<f64> = samples
        .iter()
        .filter(|(_, c)| !delayed_acking || *c >= 2)
        .map(|(r, _)| *r)
        .collect();
    // Robust location: the median. Two artifacts pollute the sample set —
    // delack-timer ACKs add the delayed-ACK hold (filtered above when the
    // receiver delays ACKs), and cumulative ACKs that jump a repaired hole
    // anchor on segments sent a recovery ago. Both are heavy right tails;
    // the median ignores them where a mean would not.
    kept.sort_by(f64::total_cmp);
    let rtt_n = kept.len() as u64;
    let median = match kept.len() {
        0 => None,
        n if n % 2 == 1 => Some(kept[n / 2]),
        n => Some(0.5 * (kept[n / 2 - 1] + kept[n / 2])),
    };
    TimingEstimates {
        mean_rtt: median,
        rtt_samples: rtt_n,
        mean_t0: (t0_n > 0).then(|| t0_sum / t0_n as f64),
        t0_samples: t0_n,
    }
}

/// T0 estimation restricted to retransmissions the classifier labelled as
/// timeout-sequence starts — use when TD contamination matters (the plain
/// [`estimate_timing`] also averages fast-retransmit gaps, biasing T0 low
/// on TD-heavy traces).
pub fn estimate_t0_classified(trace: &Trace, timeout_start_times: &[u64]) -> Option<f64> {
    if timeout_start_times.is_empty() {
        return None;
    }
    let starts: std::collections::BTreeSet<u64> = timeout_start_times.iter().copied().collect();
    let mut last_send_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_progress_ns: Option<u64> = None;
    let mut last_ack: u64 = 0;
    let mut snd_max: u64 = 0;
    let mut sum = 0.0;
    let mut n: u64 = 0;
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                if seq >= snd_max {
                    snd_max = seq + 1;
                } else if starts.contains(&rec.time_ns) {
                    let anchor = last_send_of
                        .get(&seq)
                        .copied()
                        .into_iter()
                        .chain(last_progress_ns)
                        .max();
                    if let Some(anchor) = anchor {
                        if rec.time_ns > anchor {
                            sum += (rec.time_ns - anchor) as f64 / 1e9;
                            n += 1;
                        }
                    }
                }
                last_send_of.insert(seq, rec.time_ns);
            }
            TraceEvent::AckIn { ack } => {
                if ack > last_ack {
                    last_ack = ack;
                    last_progress_ns = Some(rec.time_ns);
                }
            }
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// Pearson correlation between RTT samples and the number of packets in
/// flight when the timed segment was sent — the paper's §IV diagnostic
/// ("we have measured the coefficient of correlation between the duration
/// of round samples and the number of packets in transit"). Values near 0
/// support the model's RTT-independence assumption; values near 1 are the
/// modem-path regime of Fig. 11 where every model fails.
///
/// Returns `None` with fewer than two samples or zero variance.
//= pftk#rtt-window-corr
pub fn rtt_window_correlation(trace: &Trace) -> Option<f64> {
    let mut pending: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // seq → (t, flight)
    let mut snd_max: u64 = 0;
    let mut last_ack: u64 = 0;
    let mut xs: Vec<f64> = Vec::new(); // flight
    let mut ys: Vec<f64> = Vec::new(); // rtt
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                if seq >= snd_max {
                    snd_max = seq + 1;
                    let flight = snd_max - last_ack;
                    pending.insert(seq, (rec.time_ns, flight));
                } else {
                    pending.remove(&seq); // Karn
                }
            }
            TraceEvent::AckIn { ack } => {
                if ack > last_ack {
                    last_ack = ack;
                    let covered: Vec<u64> = pending.range(..ack).map(|(&s, _)| s).collect();
                    if let Some(&highest) = covered.last() {
                        let (sent, flight) = pending[&highest];
                        if rec.time_ns > sent {
                            xs.push(flight as f64);
                            ys.push((rec.time_ns - sent) as f64 / 1e9);
                        }
                    }
                    for s in covered {
                        pending.remove(&s);
                    }
                }
            }
        }
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    // Sums of squares are non-negative; a degenerate (constant) series has
    // an undefined correlation. `<=` avoids a NaN-hazard float equality.
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn trace(events: &[(u64, TraceEvent)]) -> Trace {
        let mut t = Trace::new();
        for &(time_ns, event) in events {
            t.push(TraceRecord { time_ns, event });
        }
        t
    }

    fn send(seq: u64) -> TraceEvent {
        TraceEvent::Send { seq, retx: false }
    }

    fn ack(a: u64) -> TraceEvent {
        TraceEvent::AckIn { ack: a }
    }

    const S: u64 = 1_000_000_000;
    const MS: u64 = 1_000_000;

    #[test]
    fn clean_rtt_measured() {
        let t = trace(&[
            (0, send(0)),
            (200 * MS, ack(1)),
            (200 * MS + 1, send(1)),
            (400 * MS, ack(2)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.rtt_samples, 2);
        let expect = (0.2 + (0.4 - 0.2 - 1e-9) / 1.0) / 2.0;
        assert!((est.mean_rtt.unwrap() - expect).abs() < 1e-6);
        assert!(est.mean_t0.is_none());
    }

    #[test]
    fn delayed_ack_samples_highest_covered() {
        // Two segments sent 10 ms apart; one cumulative ACK 200 ms after the
        // second. The sample must anchor on the second segment (0.2 s), not
        // the first (0.21 s).
        let t = trace(&[(0, send(0)), (10 * MS, send(1)), (210 * MS, ack(2))]);
        let est = estimate_timing(&t);
        assert_eq!(est.rtt_samples, 1);
        assert!((est.mean_rtt.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    //= pftk#karn-rto type=test
    fn karn_excludes_retransmitted_segments() {
        let t = trace(&[
            (0, send(0)),
            (3 * S, send(0)), // retransmission: seq 0 disqualified
            (3 * S + 100 * MS, ack(1)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.rtt_samples, 0, "Karn must reject the ambiguous sample");
    }

    #[test]
    //= pftk#t0-first-timeout type=test
    fn t0_measured_from_send_gap() {
        let t = trace(&[
            (0, send(0)),
            (3 * S, send(0)), // timeout after 3 s
            (3 * S + 100 * MS, ack(1)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.t0_samples, 1);
        assert!((est.mean_t0.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn t0_anchors_on_later_of_send_and_progress() {
        // Progress at t=1s restarts the timer; the timeout retransmission at
        // t=3.5s therefore measures 2.5 s, not 3.5 s.
        let t = trace(&[
            (0, send(0)),
            (500 * MS, send(1)),
            (S, ack(1)), // progress (seq 0 acked)
            (3_500 * MS, send(1)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.t0_samples, 1);
        assert!(
            (est.mean_t0.unwrap() - 2.5).abs() < 1e-9,
            "got {:?}",
            est.mean_t0
        );
    }

    #[test]
    fn only_first_timeout_of_sequence_sampled() {
        let t = trace(&[
            (0, send(0)),
            (3 * S, send(0)),
            (9 * S, send(0)),  // backoff: same sequence, not sampled
            (21 * S, send(0)), // backoff
            (21 * S + 100 * MS, ack(1)),
            (21 * S + 200 * MS, send(1)),
            (24 * S, send(1)), // new sequence after progress
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.t0_samples, 2);
        // First sequence T0 = 3 s; second = 24 − 21.2 = 2.8 s.
        assert!((est.mean_t0.unwrap() - (3.0 + 2.8) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn classified_t0_uses_only_given_starts() {
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (100 * MS, ack(1)),
            (101 * MS, ack(1)),
            (102 * MS, ack(1)),
            (103 * MS, ack(1)),
            (104 * MS, send(1)), // fast retransmit — would contaminate T0
            (5 * S, send(1)),    // true timeout
        ]);
        let plain = estimate_timing(&t);
        // Plain estimator sampled the fast retransmit's tiny gap.
        assert!(plain.mean_t0.unwrap() < 1.0);
        let classified = estimate_t0_classified(&t, &[5 * S]).unwrap();
        assert!(
            (classified - (5.0 - 0.104)).abs() < 1e-6,
            "got {classified}"
        );
        assert!(estimate_t0_classified(&t, &[]).is_none());
    }

    #[test]
    fn empty_trace_yields_nones() {
        let est = estimate_timing(&Trace::new());
        assert!(est.mean_rtt.is_none());
        assert!(est.mean_t0.is_none());
    }

    #[test]
    //= pftk#rtt-window-corr type=test
    fn correlation_detects_queueing_regime() {
        // Build a trace where RTT grows linearly with flight size
        // (a dedicated bottleneck buffer): correlation ≈ 1.
        let mut t = Trace::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for flight in 1..=20u64 {
            // `flight − 1` unacked predecessors, then the timed segment.
            for _ in 0..flight {
                t.push(TraceRecord {
                    time_ns: now,
                    event: send(seq),
                });
                seq += 1;
                now += 1;
            }
            // RTT proportional to flight.
            now += flight * 100 * MS;
            t.push(TraceRecord {
                time_ns: now,
                event: ack(seq),
            });
            now += 1;
        }
        let corr = rtt_window_correlation(&t).unwrap();
        assert!(corr > 0.95, "expected strong correlation, got {corr}");
    }

    #[test]
    fn correlation_near_zero_for_constant_rtt() {
        let mut t = Trace::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for flight in [1u64, 5, 2, 9, 3, 7, 4, 8, 6, 10, 2, 9, 5, 1, 7] {
            for _ in 0..flight {
                t.push(TraceRecord {
                    time_ns: now,
                    event: send(seq),
                });
                seq += 1;
                now += 1;
            }
            now += 200 * MS; // constant RTT regardless of flight
            t.push(TraceRecord {
                time_ns: now,
                event: ack(seq),
            });
            now += 1;
        }
        let corr = rtt_window_correlation(&t).unwrap();
        assert!(
            corr.abs() < 0.2,
            "expected near-zero correlation, got {corr}"
        );
    }

    #[test]
    fn correlation_needs_two_samples() {
        assert!(rtt_window_correlation(&Trace::new()).is_none());
        let mut t = Trace::new();
        t.push(TraceRecord {
            time_ns: 0,
            event: send(0),
        });
        t.push(TraceRecord {
            time_ns: 100 * MS,
            event: ack(1),
        });
        assert!(rtt_window_correlation(&t).is_none());
    }
}
