//! RTT and timeout-duration estimation from sender-side traces.
//!
//! The paper (§III): "When calculating RTT values, we follow Karn's
//! algorithm, in an attempt to minimize the impact of time-outs and
//! retransmissions on the RTT estimates." Karn's rule: never take an RTT
//! sample from a segment that was retransmitted, because the ACK cannot be
//! attributed to a particular transmission.
//!
//! `T0` (Table II's "Time Out" column) is estimated as the duration of the
//! *first* timeout in each timeout sequence: the gap between the
//! retransmission and the later of (a) the last prior transmission of that
//! sequence number and (b) the last forward-ACK arrival (the events that
//! restart a TCP retransmission timer).

use crate::record::{Trace, TraceEvent};
use pftk_snap::{SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// RTT/T0 estimates extracted from a trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimingEstimates {
    /// Mean round-trip time over all Karn-valid samples, seconds.
    pub mean_rtt: Option<f64>,
    /// Number of RTT samples taken.
    pub rtt_samples: u64,
    /// Mean single-timeout duration, seconds.
    pub mean_t0: Option<f64>,
    /// Number of T0 samples (one per timeout sequence).
    pub t0_samples: u64,
}

/// The incremental Karn RTT / T0 estimator: the streaming core behind
/// [`estimate_timing`].
///
/// Between events it holds O(window) in-flight maps (entries below the
/// cumulative ACK are pruned on every forward ACK) plus the RTT sample set
/// — one sample per forward ACK, the irreducible input of the exact
/// end-of-trace median. Everything else is O(1), so an hour-long
/// connection can be timed without ever materializing its trace.
#[derive(Debug, Clone, Default)]
pub struct KarnCore {
    /// First-transmission times of not-yet-acked segments; a
    /// retransmission permanently disqualifies its sequence number.
    pending: BTreeMap<u64, u64>,
    snd_max: u64,
    last_ack: u64,
    /// Samples tagged with how many segments the ACK covered: delayed-ACK
    /// receivers hold an odd final segment for the delack timer (~200 ms),
    /// inflating single-cover samples; when the trace shows delayed acking
    /// (a substantial share of multi-cover ACKs), single-cover samples are
    /// discarded at [`KarnCore::finish`].
    samples: Vec<(f64, usize)>,
    /// Last transmission time per in-flight seq — what T0 anchoring needs.
    last_send_of: BTreeMap<u64, u64>,
    last_progress_ns: Option<u64>,
    in_to_sequence: bool,
    t0_sum: f64,
    t0_n: u64,
}

impl KarnCore {
    /// A fresh estimator.
    pub fn new() -> Self {
        KarnCore::default()
    }

    /// Consumes one data-segment departure.
    pub fn on_send(&mut self, time_ns: u64, seq: u64) {
        if seq >= self.snd_max {
            self.snd_max = seq + 1;
            self.pending.insert(seq, time_ns);
        } else {
            // Retransmission: Karn-disqualify this sequence.
            self.pending.remove(&seq);
            if !self.in_to_sequence {
                // First retransmission since last progress: if it is
                // a timeout (no way to tell TD vs TO here without
                // the classifier; T0 sampling accepts the small TD
                // contamination the same way trace tools do — the
                // gap for a fast retransmit is ≈RTT and for a
                // timeout ≈RTO, so downstream users combine this
                // with the classifier; see `estimate_t0_classified`).
                let anchor = self
                    .last_send_of
                    .get(&seq)
                    .copied()
                    .into_iter()
                    .chain(self.last_progress_ns)
                    .max();
                if let Some(anchor) = anchor {
                    if time_ns > anchor {
                        self.t0_sum += (time_ns - anchor) as f64 / 1e9;
                        self.t0_n += 1;
                    }
                }
                self.in_to_sequence = true;
            }
        }
        self.last_send_of.insert(seq, time_ns);
    }

    /// Consumes one ACK arrival.
    pub fn on_ack(&mut self, time_ns: u64, ack: u64) {
        if ack > self.last_ack {
            self.last_ack = ack;
            self.last_progress_ns = Some(time_ns);
            self.in_to_sequence = false;
            // Sample the *highest* newly covered segment: with
            // delayed ACKs its send→ack gap is the cleanest RTT
            // (lower segments include the delayed-ACK hold). Covered
            // entries are popped in place — this runs per ACK on the
            // streaming hot path, so no scratch allocation.
            let mut covered = 0usize;
            let mut highest_sent = None;
            while let Some(entry) = self.pending.first_entry() {
                if *entry.key() >= ack {
                    break;
                }
                covered += 1;
                highest_sent = Some(entry.remove());
            }
            if let Some(sent) = highest_sent {
                if time_ns > sent {
                    self.samples.push(((time_ns - sent) as f64 / 1e9, covered));
                }
            }
            // Prune every anchor below the cumulative ACK, not only the
            // pending ones: an acked sequence's last send happened at or
            // before this ACK's arrival, so a later (spurious) retransmit
            // of it anchors on `last_progress_ns` either way — the max is
            // unchanged while the map stays O(window) instead of leaking
            // one entry per retransmitted sequence for the whole trace.
            self.last_send_of = self.last_send_of.split_off(&ack);
        }
    }

    /// Entry counts of the retained state `(pending, last_send_of,
    /// rtt_samples)` — the inputs to streaming memory accounting.
    pub fn state_len(&self) -> (usize, usize, usize) {
        (
            self.pending.len(),
            self.last_send_of.len(),
            self.samples.len(),
        )
    }

    /// Writes the estimator's full state. `BTreeMap` iteration is key-
    /// ascending, so the byte encoding is a pure function of the contents.
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.pending.len());
        for (seq, sent) in &self.pending {
            w.put_u64(*seq);
            w.put_u64(*sent);
        }
        w.put_u64(self.snd_max);
        w.put_u64(self.last_ack);
        w.put_usize(self.samples.len());
        for (rtt, covered) in &self.samples {
            w.put_f64(*rtt);
            w.put_usize(*covered);
        }
        w.put_usize(self.last_send_of.len());
        for (seq, sent) in &self.last_send_of {
            w.put_u64(*seq);
            w.put_u64(*sent);
        }
        match self.last_progress_ns {
            Some(t) => {
                w.put_bool(true);
                w.put_u64(t);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.in_to_sequence);
        w.put_f64(self.t0_sum);
        w.put_u64(self.t0_n);
    }

    /// Reads state written by [`KarnCore::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let n = r.get_usize()?;
        self.pending.clear();
        for _ in 0..n {
            let seq = r.get_u64()?;
            let sent = r.get_u64()?;
            self.pending.insert(seq, sent);
        }
        self.snd_max = r.get_u64()?;
        self.last_ack = r.get_u64()?;
        let n = r.get_usize()?;
        self.samples.clear();
        for _ in 0..n {
            let rtt = r.get_f64()?;
            let covered = r.get_usize()?;
            self.samples.push((rtt, covered));
        }
        let n = r.get_usize()?;
        self.last_send_of.clear();
        for _ in 0..n {
            let seq = r.get_u64()?;
            let sent = r.get_u64()?;
            self.last_send_of.insert(seq, sent);
        }
        self.last_progress_ns = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.in_to_sequence = r.get_bool()?;
        self.t0_sum = r.get_f64()?;
        self.t0_n = r.get_u64()?;
        Ok(())
    }

    /// Closes the estimator and computes the estimates.
    pub fn finish(self) -> TimingEstimates {
        let multi = self.samples.iter().filter(|(_, c)| *c >= 2).count();
        let delayed_acking = multi * 3 >= self.samples.len(); // ≥1/3 multi-cover ACKs
        let mut kept: Vec<f64> = self
            .samples
            .iter()
            .filter(|(_, c)| !delayed_acking || *c >= 2)
            .map(|(r, _)| *r)
            .collect();
        // Robust location: the median. Two artifacts pollute the sample set —
        // delack-timer ACKs add the delayed-ACK hold (filtered above when the
        // receiver delays ACKs), and cumulative ACKs that jump a repaired hole
        // anchor on segments sent a recovery ago. Both are heavy right tails;
        // the median ignores them where a mean would not.
        kept.sort_by(f64::total_cmp);
        let rtt_n = kept.len() as u64;
        let median = match kept.len() {
            0 => None,
            n if n % 2 == 1 => Some(kept[n / 2]),
            n => Some(0.5 * (kept[n / 2 - 1] + kept[n / 2])),
        };
        TimingEstimates {
            mean_rtt: median,
            rtt_samples: rtt_n,
            mean_t0: (self.t0_n > 0).then(|| self.t0_sum / self.t0_n as f64),
            t0_samples: self.t0_n,
        }
    }
}

/// Extracts RTT and T0 estimates from a sender-side trace: a thin fold of
/// the incremental [`KarnCore`] over the materialized records, so batch
/// and streaming timing are identical by construction.
//= pftk#karn-rto
//= pftk#t0-first-timeout
pub fn estimate_timing(trace: &Trace) -> TimingEstimates {
    let mut core = KarnCore::new();
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => core.on_send(rec.time_ns, seq),
            TraceEvent::AckIn { ack } => core.on_ack(rec.time_ns, ack),
        }
    }
    core.finish()
}

/// T0 estimation restricted to retransmissions the classifier labelled as
/// timeout-sequence starts — use when TD contamination matters (the plain
/// [`estimate_timing`] also averages fast-retransmit gaps, biasing T0 low
/// on TD-heavy traces).
pub fn estimate_t0_classified(trace: &Trace, timeout_start_times: &[u64]) -> Option<f64> {
    if timeout_start_times.is_empty() {
        return None;
    }
    let starts: std::collections::BTreeSet<u64> = timeout_start_times.iter().copied().collect();
    let mut last_send_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_progress_ns: Option<u64> = None;
    let mut last_ack: u64 = 0;
    let mut snd_max: u64 = 0;
    let mut sum = 0.0;
    let mut n: u64 = 0;
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                if seq >= snd_max {
                    snd_max = seq + 1;
                } else if starts.contains(&rec.time_ns) {
                    let anchor = last_send_of
                        .get(&seq)
                        .copied()
                        .into_iter()
                        .chain(last_progress_ns)
                        .max();
                    if let Some(anchor) = anchor {
                        if rec.time_ns > anchor {
                            sum += (rec.time_ns - anchor) as f64 / 1e9;
                            n += 1;
                        }
                    }
                }
                last_send_of.insert(seq, rec.time_ns);
            }
            TraceEvent::AckIn { ack } => {
                if ack > last_ack {
                    last_ack = ack;
                    last_progress_ns = Some(rec.time_ns);
                }
            }
        }
    }
    (n > 0).then(|| sum / n as f64)
}

/// The incremental RTT-vs-flight correlator: the streaming core behind
/// [`rtt_window_correlation`].
///
/// O(window) in-flight map plus two sample vectors (one point per forward
/// ACK — the irreducible input of the exact end-of-trace Pearson
/// coefficient).
#[derive(Debug, Clone, Default)]
pub struct CorrCore {
    /// seq → (send time, flight size at send).
    pending: BTreeMap<u64, (u64, u64)>,
    snd_max: u64,
    last_ack: u64,
    /// Flight sizes.
    xs: Vec<f64>,
    /// RTT samples, seconds.
    ys: Vec<f64>,
}

impl CorrCore {
    /// A fresh correlator.
    pub fn new() -> Self {
        CorrCore::default()
    }

    /// Consumes one data-segment departure.
    pub fn on_send(&mut self, time_ns: u64, seq: u64) {
        if seq >= self.snd_max {
            self.snd_max = seq + 1;
            // Saturating: a salvaged/corrupt capture can carry an ACK
            // beyond anything sent, leaving `last_ack > snd_max` — flight
            // clamps to 0 there instead of underflowing.
            let flight = self.snd_max.saturating_sub(self.last_ack);
            self.pending.insert(seq, (time_ns, flight));
        } else {
            self.pending.remove(&seq); // Karn
        }
    }

    /// Consumes one ACK arrival.
    pub fn on_ack(&mut self, time_ns: u64, ack: u64) {
        if ack > self.last_ack {
            self.last_ack = ack;
            // Pop covered entries in place (per-ACK hot path: no
            // scratch allocation); the last one popped is the highest
            // newly covered segment, the one worth timing.
            let mut last = None;
            while let Some(entry) = self.pending.first_entry() {
                if *entry.key() >= ack {
                    break;
                }
                last = Some(entry.remove());
            }
            if let Some((sent, flight)) = last {
                if time_ns > sent {
                    self.xs.push(flight as f64);
                    self.ys.push((time_ns - sent) as f64 / 1e9);
                }
            }
        }
    }

    /// Entry counts of the retained state `(pending, samples)` — the
    /// inputs to streaming memory accounting.
    pub fn state_len(&self) -> (usize, usize) {
        (self.pending.len(), self.xs.len())
    }

    /// Writes the correlator's full state (one length prefix covers both
    /// sample vectors — they grow in lock step).
    pub(crate) fn snapshot_into(&self, w: &mut SnapWriter) {
        w.put_usize(self.pending.len());
        for (seq, (sent, flight)) in &self.pending {
            w.put_u64(*seq);
            w.put_u64(*sent);
            w.put_u64(*flight);
        }
        w.put_u64(self.snd_max);
        w.put_u64(self.last_ack);
        w.put_usize(self.xs.len());
        for x in &self.xs {
            w.put_f64(*x);
        }
        for y in &self.ys {
            w.put_f64(*y);
        }
    }

    /// Reads state written by [`CorrCore::snapshot_into`].
    pub(crate) fn restore_from(&mut self, r: &mut SnapReader<'_>) -> SnapResult<()> {
        let n = r.get_usize()?;
        self.pending.clear();
        for _ in 0..n {
            let seq = r.get_u64()?;
            let sent = r.get_u64()?;
            let flight = r.get_u64()?;
            self.pending.insert(seq, (sent, flight));
        }
        self.snd_max = r.get_u64()?;
        self.last_ack = r.get_u64()?;
        let n = r.get_usize()?;
        self.xs.clear();
        self.ys.clear();
        for _ in 0..n {
            self.xs.push(r.get_f64()?);
        }
        for _ in 0..n {
            self.ys.push(r.get_f64()?);
        }
        Ok(())
    }

    /// Closes the correlator: Pearson coefficient, or `None` with fewer
    /// than two samples or zero variance.
    pub fn finish(self) -> Option<f64> {
        pearson(&self.xs, &self.ys)
    }
}

/// Pearson correlation between RTT samples and the number of packets in
/// flight when the timed segment was sent — the paper's §IV diagnostic
/// ("we have measured the coefficient of correlation between the duration
/// of round samples and the number of packets in transit"). Values near 0
/// support the model's RTT-independence assumption; values near 1 are the
/// modem-path regime of Fig. 11 where every model fails.
///
/// A thin fold of the incremental [`CorrCore`].
///
/// Returns `None` with fewer than two samples or zero variance.
//= pftk#rtt-window-corr
pub fn rtt_window_correlation(trace: &Trace) -> Option<f64> {
    let mut core = CorrCore::new();
    for rec in trace.records() {
        match rec.event {
            TraceEvent::Send { seq, .. } => core.on_send(rec.time_ns, seq),
            TraceEvent::AckIn { ack } => core.on_ack(rec.time_ns, ack),
        }
    }
    core.finish()
}

fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    // Sums of squares are non-negative; a degenerate (constant) series has
    // an undefined correlation. `<=` avoids a NaN-hazard float equality.
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn trace(events: &[(u64, TraceEvent)]) -> Trace {
        let mut t = Trace::new();
        for &(time_ns, event) in events {
            t.push(TraceRecord { time_ns, event });
        }
        t
    }

    fn send(seq: u64) -> TraceEvent {
        TraceEvent::Send { seq, retx: false }
    }

    fn ack(a: u64) -> TraceEvent {
        TraceEvent::AckIn { ack: a }
    }

    const S: u64 = 1_000_000_000;
    const MS: u64 = 1_000_000;

    #[test]
    fn correlation_survives_ack_beyond_snd_max() {
        // A salvaged capture can acknowledge data that was never sent;
        // the next send must not underflow the flight computation.
        let t = trace(&[
            (0, send(0)),
            (100 * MS, ack(999)),
            (200 * MS, send(1)),
            (300 * MS, send(2)),
            (400 * MS, ack(1_000)),
        ]);
        let _ = rtt_window_correlation(&t);
    }

    #[test]
    fn clean_rtt_measured() {
        let t = trace(&[
            (0, send(0)),
            (200 * MS, ack(1)),
            (200 * MS + 1, send(1)),
            (400 * MS, ack(2)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.rtt_samples, 2);
        let expect = (0.2 + (0.4 - 0.2 - 1e-9) / 1.0) / 2.0;
        assert!((est.mean_rtt.unwrap() - expect).abs() < 1e-6);
        assert!(est.mean_t0.is_none());
    }

    #[test]
    fn delayed_ack_samples_highest_covered() {
        // Two segments sent 10 ms apart; one cumulative ACK 200 ms after the
        // second. The sample must anchor on the second segment (0.2 s), not
        // the first (0.21 s).
        let t = trace(&[(0, send(0)), (10 * MS, send(1)), (210 * MS, ack(2))]);
        let est = estimate_timing(&t);
        assert_eq!(est.rtt_samples, 1);
        assert!((est.mean_rtt.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    //= pftk#karn-rto type=test
    fn karn_excludes_retransmitted_segments() {
        let t = trace(&[
            (0, send(0)),
            (3 * S, send(0)), // retransmission: seq 0 disqualified
            (3 * S + 100 * MS, ack(1)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.rtt_samples, 0, "Karn must reject the ambiguous sample");
    }

    #[test]
    //= pftk#t0-first-timeout type=test
    fn t0_measured_from_send_gap() {
        let t = trace(&[
            (0, send(0)),
            (3 * S, send(0)), // timeout after 3 s
            (3 * S + 100 * MS, ack(1)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.t0_samples, 1);
        assert!((est.mean_t0.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn t0_anchors_on_later_of_send_and_progress() {
        // Progress at t=1s restarts the timer; the timeout retransmission at
        // t=3.5s therefore measures 2.5 s, not 3.5 s.
        let t = trace(&[
            (0, send(0)),
            (500 * MS, send(1)),
            (S, ack(1)), // progress (seq 0 acked)
            (3_500 * MS, send(1)),
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.t0_samples, 1);
        assert!(
            (est.mean_t0.unwrap() - 2.5).abs() < 1e-9,
            "got {:?}",
            est.mean_t0
        );
    }

    #[test]
    fn only_first_timeout_of_sequence_sampled() {
        let t = trace(&[
            (0, send(0)),
            (3 * S, send(0)),
            (9 * S, send(0)),  // backoff: same sequence, not sampled
            (21 * S, send(0)), // backoff
            (21 * S + 100 * MS, ack(1)),
            (21 * S + 200 * MS, send(1)),
            (24 * S, send(1)), // new sequence after progress
        ]);
        let est = estimate_timing(&t);
        assert_eq!(est.t0_samples, 2);
        // First sequence T0 = 3 s; second = 24 − 21.2 = 2.8 s.
        assert!((est.mean_t0.unwrap() - (3.0 + 2.8) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn classified_t0_uses_only_given_starts() {
        let t = trace(&[
            (0, send(0)),
            (1, send(1)),
            (100 * MS, ack(1)),
            (101 * MS, ack(1)),
            (102 * MS, ack(1)),
            (103 * MS, ack(1)),
            (104 * MS, send(1)), // fast retransmit — would contaminate T0
            (5 * S, send(1)),    // true timeout
        ]);
        let plain = estimate_timing(&t);
        // Plain estimator sampled the fast retransmit's tiny gap.
        assert!(plain.mean_t0.unwrap() < 1.0);
        let classified = estimate_t0_classified(&t, &[5 * S]).unwrap();
        assert!(
            (classified - (5.0 - 0.104)).abs() < 1e-6,
            "got {classified}"
        );
        assert!(estimate_t0_classified(&t, &[]).is_none());
    }

    #[test]
    fn empty_trace_yields_nones() {
        let est = estimate_timing(&Trace::new());
        assert!(est.mean_rtt.is_none());
        assert!(est.mean_t0.is_none());
    }

    #[test]
    //= pftk#rtt-window-corr type=test
    fn correlation_detects_queueing_regime() {
        // Build a trace where RTT grows linearly with flight size
        // (a dedicated bottleneck buffer): correlation ≈ 1.
        let mut t = Trace::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for flight in 1..=20u64 {
            // `flight − 1` unacked predecessors, then the timed segment.
            for _ in 0..flight {
                t.push(TraceRecord {
                    time_ns: now,
                    event: send(seq),
                });
                seq += 1;
                now += 1;
            }
            // RTT proportional to flight.
            now += flight * 100 * MS;
            t.push(TraceRecord {
                time_ns: now,
                event: ack(seq),
            });
            now += 1;
        }
        let corr = rtt_window_correlation(&t).unwrap();
        assert!(corr > 0.95, "expected strong correlation, got {corr}");
    }

    #[test]
    fn correlation_near_zero_for_constant_rtt() {
        let mut t = Trace::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for flight in [1u64, 5, 2, 9, 3, 7, 4, 8, 6, 10, 2, 9, 5, 1, 7] {
            for _ in 0..flight {
                t.push(TraceRecord {
                    time_ns: now,
                    event: send(seq),
                });
                seq += 1;
                now += 1;
            }
            now += 200 * MS; // constant RTT regardless of flight
            t.push(TraceRecord {
                time_ns: now,
                event: ack(seq),
            });
            now += 1;
        }
        let corr = rtt_window_correlation(&t).unwrap();
        assert!(
            corr.abs() < 0.2,
            "expected near-zero correlation, got {corr}"
        );
    }

    #[test]
    fn correlation_needs_two_samples() {
        assert!(rtt_window_correlation(&Trace::new()).is_none());
        let mut t = Trace::new();
        t.push(TraceRecord {
            time_ns: 0,
            event: send(0),
        });
        t.push(TraceRecord {
            time_ns: 100 * MS,
            event: ack(1),
        });
        assert!(rtt_window_correlation(&t).is_none());
    }
}
