//! Streaming trace analysis: analyze while simulating instead of
//! materializing every wire event first.
//!
//! The paper reduces 1-hour `tcpdump` traces to a handful of statistics —
//! loss-indication counts, an RTT median, T0 means, 100-second interval
//! rows. None of those need the trace afterwards, yet the batch pipeline
//! holds O(duration) memory (every wire event as a [`TraceRecord`]) to
//! produce O(1) output. This module inverts that: [`StreamAnalyzer`]
//! consumes wire events one at a time and keeps only the incremental cores
//! the batch functions are themselves folds of —
//!
//! * [`Classifier`] — TD/TO classification
//!   (O(1) automaton state + the emitted indications),
//! * [`KarnCore`] — Karn RTT / T0 estimation
//!   (O(window) in-flight maps + one sample per forward ACK),
//! * [`CorrCore`] — RTT-vs-flight correlation,
//! * [`IntervalCore`] — per-interval send
//!   counts (one `u64` per elapsed interval).
//!
//! Because `analyze`, `estimate_timing`, `rtt_window_correlation`, and
//! `split_intervals_bounded` are *thin folds over these same cores*, a
//! [`StreamAnalyzer`] fed record by record produces **bit-identical**
//! results to the batch pipeline run over the materialized trace — not
//! approximately equal: the same float operations execute in the same
//! order. The workspace equivalence harness pins this with
//! `f64::to_bits` comparisons.
//!
//! The [`TraceSink`] trait is the seam: the testbed's per-event observer
//! writes into *some* sink, and the caller picks retain
//! ([`TraceLog`] — keep every event) or reduce ([`StreamAnalyzer`] —
//! O(window) state) or both ([`TeeSink`]).

use crate::analyzer::{Analysis, AnalyzerConfig, Classifier, LossIndication};
use crate::intervals::{IntervalCore, IntervalStats};
use crate::karn::{CorrCore, KarnCore, TimingEstimates};
use crate::log::TraceLog;
use crate::record::{Trace, TraceEvent, TraceRecord};
use pftk_snap::{frame, unframe, SnapError, SnapReader, SnapResult, SnapWriter};
use serde::{Deserialize, Serialize};

/// Frame kind identifying a streaming-analyzer snapshot (DESIGN.md §13).
pub const STREAM_SNAPSHOT_KIND: u32 = 2;
/// Newest analyzer-snapshot format version this build reads and writes.
pub const STREAM_SNAPSHOT_VERSION: u32 = 1;

/// A consumer of sender-side wire events, fed in nondecreasing time order.
///
/// Implemented by the retaining stores ([`TraceLog`], [`Trace`]) and the
/// reducing analyzer ([`StreamAnalyzer`]); the testbed's observer writes
/// through this trait so retention is a configuration choice, not a code
/// path.
pub trait TraceSink {
    /// Consumes a data-segment departure.
    fn on_send(&mut self, time_ns: u64, seq: u64, retx: bool);
    /// Consumes an ACK arrival.
    fn on_ack_in(&mut self, time_ns: u64, ack: u64);
    /// Consumes a row-oriented record (dispatches to the event methods).
    fn on_record(&mut self, rec: &TraceRecord) {
        match rec.event {
            TraceEvent::Send { seq, retx } => self.on_send(rec.time_ns, seq, retx),
            TraceEvent::AckIn { ack } => self.on_ack_in(rec.time_ns, ack),
        }
    }
}

impl TraceSink for TraceLog {
    fn on_send(&mut self, time_ns: u64, seq: u64, retx: bool) {
        self.push_send(time_ns, seq, retx);
    }
    fn on_ack_in(&mut self, time_ns: u64, ack: u64) {
        self.push_ack_in(time_ns, ack);
    }
}

impl TraceSink for Trace {
    fn on_send(&mut self, time_ns: u64, seq: u64, retx: bool) {
        self.push(TraceRecord {
            time_ns,
            event: TraceEvent::Send { seq, retx },
        });
    }
    fn on_ack_in(&mut self, time_ns: u64, ack: u64) {
        self.push(TraceRecord {
            time_ns,
            event: TraceEvent::AckIn { ack },
        });
    }
}

/// Streaming-analysis configuration: which reductions to run.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// TD/TO classifier configuration (dupack threshold).
    pub analyzer: AnalyzerConfig,
    /// Interval segmentation length in seconds (`Some(100.0)` = the
    /// paper's Fig. 7–10 intervals); `None` disables segmentation.
    pub interval_secs: Option<f64>,
    /// Run Karn RTT / T0 estimation.
    pub timing: bool,
    /// Run the RTT-vs-flight correlation diagnostic (§IV / Fig. 11).
    pub correlation: bool,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            analyzer: AnalyzerConfig::default(),
            interval_secs: Some(100.0),
            timing: true,
            correlation: true,
        }
    }
}

impl StreamConfig {
    /// The default reductions with the given classifier configuration.
    pub fn with_analyzer(analyzer: AnalyzerConfig) -> Self {
        StreamConfig {
            analyzer,
            ..StreamConfig::default()
        }
    }
}

/// The finished product of a streamed connection: everything the batch
/// pipeline used to recompute from a retained trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamAnalysis {
    /// Loss-indication analysis (the batch [`crate::analyze`] output).
    pub analysis: Analysis,
    /// Karn RTT / T0 estimates, when timing was enabled.
    pub timing: Option<TimingEstimates>,
    /// Per-interval statistics, when segmentation was enabled.
    pub intervals: Option<Vec<IntervalStats>>,
    /// RTT-vs-flight Pearson correlation, when enabled (and defined).
    pub rtt_window_corr: Option<f64>,
    /// Interval length used for `intervals`, seconds.
    pub interval_secs: Option<f64>,
    /// Wire events consumed.
    pub events: u64,
    /// High-water mark of the analyzer's retained state, bytes
    /// (see [`StreamAnalyzer::state_bytes`]).
    pub peak_state_bytes: u64,
}

impl StreamAnalysis {
    /// Streams a materialized trace through a fresh [`StreamAnalyzer`] —
    /// the batch-compatibility path for imported/salvaged traces and
    /// tests. `total_secs` bounds the interval segmentation; `None` infers
    /// the horizon from the last record like
    /// [`crate::split_intervals`].
    pub fn from_trace(trace: &Trace, config: StreamConfig, total_secs: Option<f64>) -> Self {
        let mut s = StreamAnalyzer::new(config);
        for rec in trace.records() {
            s.on_record(rec);
        }
        s.finish(total_secs)
    }
}

/// The reducing [`TraceSink`]: incremental trace analysis with O(window)
/// state.
///
/// Feed wire events through the [`TraceSink`] methods (or
/// [`TraceSink::on_record`]) and call [`StreamAnalyzer::finish`] at end of
/// connection. Between events the retained state is the classifier
/// automaton plus the enabled cores — bounded by the congestion window and
/// the number of *reduced* outputs (indications, RTT samples, interval
/// counters), never by the number of wire events. An hour-long modem-path
/// connection analyzes in a few hundred kilobytes where the materialized
/// trace takes tens of megabytes.
///
/// Equivalence contract: every enabled reduction executes the exact
/// per-event code of its batch counterpart (which is a fold of the same
/// core), so streamed and batch results match bit for bit.
//= pftk#stream-batch-equivalence
#[derive(Debug, Clone)]
pub struct StreamAnalyzer {
    config: StreamConfig,
    classifier: Classifier,
    karn: Option<KarnCore>,
    corr: Option<CorrCore>,
    intervals: Option<IntervalCore>,
    interval_secs: Option<f64>,
    events: u64,
    last_time_ns: u64,
    peak_state_bytes: usize,
}

impl StreamAnalyzer {
    /// A fresh analyzer running the reductions named by `config`.
    pub fn new(config: StreamConfig) -> Self {
        StreamAnalyzer {
            config,
            classifier: Classifier::new(config.analyzer),
            karn: config.timing.then(KarnCore::new),
            corr: config.correlation.then(CorrCore::new),
            intervals: config.interval_secs.map(IntervalCore::new),
            interval_secs: config.interval_secs,
            events: 0,
            last_time_ns: 0,
            peak_state_bytes: 0,
        }
    }

    /// The configuration this analyzer was built with.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// Wire events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Loss indications emitted so far (an open timeout sequence is
    /// flushed only at [`StreamAnalyzer::finish`]).
    pub fn indications(&self) -> &[LossIndication] {
        self.classifier.indications()
    }

    /// Estimated bytes of retained analysis state right now: per-entry
    /// payload sizes of the in-flight maps, sample vectors, emitted
    /// indications, and interval counters (container overhead excluded —
    /// this is the scaling term, and the asserted memory ceilings leave
    /// headroom for the constant factors).
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>();
        bytes += std::mem::size_of_val(self.classifier.indications());
        if let Some(karn) = &self.karn {
            let (pending, last_send, samples) = karn.state_len();
            bytes += (pending + last_send) * size_of::<(u64, u64)>();
            bytes += samples * size_of::<(f64, usize)>();
        }
        if let Some(corr) = &self.corr {
            let (pending, samples) = corr.state_len();
            bytes += pending * size_of::<(u64, (u64, u64))>();
            bytes += samples * 2 * size_of::<f64>();
        }
        if let Some(iv) = &self.intervals {
            bytes += iv.state_len() * size_of::<u64>();
        }
        bytes
    }

    /// High-water mark of [`StreamAnalyzer::state_bytes`] over the
    /// connection so far.
    pub fn peak_state_bytes(&self) -> usize {
        self.peak_state_bytes
    }

    fn note_event(&mut self, time_ns: u64) {
        self.events += 1;
        self.last_time_ns = time_ns;
        let now = self.state_bytes();
        if now > self.peak_state_bytes {
            self.peak_state_bytes = now;
        }
    }

    /// Encodes the analyzer's full mid-stream state — the classifier
    /// automaton and every enabled core — as a framed, checksummed
    /// snapshot ([`STREAM_SNAPSHOT_KIND`]). An analyzer restored from this
    /// snapshot into an identically-configured [`StreamAnalyzer::new`] and
    /// fed the remaining events produces a [`StreamAnalysis`] bit-identical
    /// to the uninterrupted one.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        // Size hint: the retained-state estimate tracks the encoded size
        // closely (both are dominated by the same sample vectors), so the
        // buffer almost never reallocates mid-encode.
        let mut w = SnapWriter::with_capacity(self.state_bytes() + 1024);
        self.classifier.snapshot_into(&mut w);
        match &self.karn {
            Some(core) => {
                w.put_bool(true);
                core.snapshot_into(&mut w);
            }
            None => w.put_bool(false),
        }
        match &self.corr {
            Some(core) => {
                w.put_bool(true);
                core.snapshot_into(&mut w);
            }
            None => w.put_bool(false),
        }
        match &self.intervals {
            Some(core) => {
                w.put_bool(true);
                core.snapshot_into(&mut w);
            }
            None => w.put_bool(false),
        }
        w.put_u64(self.events);
        w.put_u64(self.last_time_ns);
        w.put_usize(self.peak_state_bytes);
        frame(
            STREAM_SNAPSHOT_KIND,
            STREAM_SNAPSHOT_VERSION,
            &w.into_bytes(),
        )
    }

    /// Applies a snapshot produced by [`StreamAnalyzer::snapshot`] into
    /// this analyzer, which must have been built with the same
    /// [`StreamConfig`] (mismatches are [`SnapError::TagMismatch`];
    /// corrupt or truncated bytes error, never panic). On error the
    /// analyzer is left in an unspecified partially-restored state:
    /// rebuild it before further use.
    pub fn restore(&mut self, bytes: &[u8]) -> SnapResult<()> {
        let framed = unframe(bytes, STREAM_SNAPSHOT_VERSION)?;
        if framed.kind != STREAM_SNAPSHOT_KIND {
            return Err(SnapError::Invalid("not an analyzer snapshot"));
        }
        let mut r = SnapReader::new(framed.payload);
        self.classifier.restore_from(&mut r)?;
        let karn_present = r.get_bool()?;
        match (&mut self.karn, karn_present) {
            (Some(core), true) => core.restore_from(&mut r)?,
            (None, false) => {}
            (target, found) => {
                return Err(SnapError::TagMismatch {
                    context: "karn-presence",
                    expected: u64::from(target.is_some()),
                    found: u64::from(found),
                });
            }
        }
        let corr_present = r.get_bool()?;
        match (&mut self.corr, corr_present) {
            (Some(core), true) => core.restore_from(&mut r)?,
            (None, false) => {}
            (target, found) => {
                return Err(SnapError::TagMismatch {
                    context: "corr-presence",
                    expected: u64::from(target.is_some()),
                    found: u64::from(found),
                });
            }
        }
        let intervals_present = r.get_bool()?;
        match (&mut self.intervals, intervals_present) {
            (Some(core), true) => core.restore_from(&mut r)?,
            (None, false) => {}
            (target, found) => {
                return Err(SnapError::TagMismatch {
                    context: "intervals-presence",
                    expected: u64::from(target.is_some()),
                    found: u64::from(found),
                });
            }
        }
        self.events = r.get_u64()?;
        self.last_time_ns = r.get_u64()?;
        self.peak_state_bytes = r.get_usize()?;
        r.finish()
    }

    /// Like [`StreamAnalyzer::finish`], but leaves `self` fresh (as if
    /// just built with the same [`StreamConfig`]) instead of consuming
    /// it — the recycling primitive behind [`AnalyzerPool`].
    pub fn finish_and_reset(&mut self, total_secs: Option<f64>) -> StreamAnalysis {
        let fresh = StreamAnalyzer::new(self.config);
        std::mem::replace(self, fresh).finish(total_secs)
    }

    /// Closes the analyzer and assembles the [`StreamAnalysis`].
    ///
    /// `total_secs` is the true experiment duration for interval
    /// segmentation (an hour-long run's last packet rarely lands exactly
    /// on the hour); `None` infers the horizon from the last event, like
    /// [`crate::split_intervals`].
    pub fn finish(self, total_secs: Option<f64>) -> StreamAnalysis {
        let events = self.events;
        let peak_state_bytes = self.peak_state_bytes as u64;
        let horizon = total_secs.unwrap_or(self.last_time_ns as f64 / 1e9);
        let analysis = self.classifier.finish();
        let intervals = self
            .intervals
            .map(|core| core.finish(&analysis.indications, horizon));
        StreamAnalysis {
            timing: self.karn.map(KarnCore::finish),
            rtt_window_corr: self.corr.and_then(CorrCore::finish),
            intervals,
            interval_secs: self.interval_secs,
            analysis,
            events,
            peak_state_bytes,
        }
    }
}

impl TraceSink for StreamAnalyzer {
    fn on_send(&mut self, time_ns: u64, seq: u64, _retx: bool) {
        // The retx flag is ground truth the analyzer deliberately ignores:
        // like the batch classifier, it re-infers retransmissions from
        // sequence repetition, as a real trace analyzer must.
        self.classifier.on_send(time_ns, seq);
        if let Some(karn) = &mut self.karn {
            karn.on_send(time_ns, seq);
        }
        if let Some(corr) = &mut self.corr {
            corr.on_send(time_ns, seq);
        }
        if let Some(iv) = &mut self.intervals {
            iv.on_send(time_ns);
        }
        self.note_event(time_ns);
    }

    fn on_ack_in(&mut self, time_ns: u64, ack: u64) {
        self.classifier.on_ack(time_ns, ack);
        if let Some(karn) = &mut self.karn {
            karn.on_ack(time_ns, ack);
        }
        if let Some(corr) = &mut self.corr {
            corr.on_ack(time_ns, ack);
        }
        self.note_event(time_ns);
    }
}

/// A sink that feeds every event to both of its children — retain *and*
/// reduce in one pass (e.g. keep the trace for export while streaming the
/// analysis).
#[derive(Debug)]
pub struct TeeSink<A, B> {
    /// First child.
    pub a: A,
    /// Second child.
    pub b: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Tees events into `a` and `b`.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }

    /// Dissolves the tee back into its children.
    pub fn into_parts(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn on_send(&mut self, time_ns: u64, seq: u64, retx: bool) {
        self.a.on_send(time_ns, seq, retx);
        self.b.on_send(time_ns, seq, retx);
    }
    fn on_ack_in(&mut self, time_ns: u64, ack: u64) {
        self.a.on_ack_in(time_ns, ack);
        self.b.on_ack_in(time_ns, ack);
    }
}

/// A recycling pool of [`StreamAnalyzer`]s for campaigns that analyze
/// *many* flows — the fleet driver's per-cohort packet-level audit flows,
/// or any serial sweep of short connections.
///
/// At fleet scale the memory question flips: a single streaming analyzer
/// is O(window), but 10^5 of them are not. The pool keeps the number of
/// **live** analyzers equal to the number of flows mid-analysis (for the
/// fleet: a handful of audit flows, not the population), recycles shells
/// through [`StreamAnalyzer::finish_and_reset`], and accounts the
/// high-water analyzer memory across everything it processed, so a
/// campaign can report its true analysis footprint.
#[derive(Debug)]
pub struct AnalyzerPool {
    config: StreamConfig,
    free: Vec<StreamAnalyzer>,
    leased: usize,
    peak_leased: usize,
    flows_finished: u64,
    peak_state_bytes: u64,
}

impl AnalyzerPool {
    /// An empty pool handing out analyzers configured with `config`.
    pub fn new(config: StreamConfig) -> Self {
        AnalyzerPool {
            config,
            free: Vec::new(),
            leased: 0,
            peak_leased: 0,
            flows_finished: 0,
            peak_state_bytes: 0,
        }
    }

    /// Leases an analyzer (recycled if one is free, fresh otherwise).
    pub fn acquire(&mut self) -> StreamAnalyzer {
        self.leased += 1;
        if self.leased > self.peak_leased {
            self.peak_leased = self.leased;
        }
        self.free
            .pop()
            .unwrap_or_else(|| StreamAnalyzer::new(self.config))
    }

    /// Finishes a leased analyzer's flow, returns its analysis, and takes
    /// the shell back for reuse. `total_secs` as in
    /// [`StreamAnalyzer::finish`].
    pub fn finish(
        &mut self,
        mut analyzer: StreamAnalyzer,
        total_secs: Option<f64>,
    ) -> StreamAnalysis {
        self.leased = self.leased.saturating_sub(1);
        self.flows_finished += 1;
        let peak = analyzer.peak_state_bytes() as u64;
        if peak > self.peak_state_bytes {
            self.peak_state_bytes = peak;
        }
        let analysis = analyzer.finish_and_reset(total_secs);
        self.free.push(analyzer);
        analysis
    }

    /// Analyzers currently leased out.
    pub fn leased(&self) -> usize {
        self.leased
    }

    /// High-water mark of simultaneously leased analyzers.
    pub fn peak_leased(&self) -> usize {
        self.peak_leased
    }

    /// Flows finished through this pool.
    pub fn flows_finished(&self) -> u64 {
        self.flows_finished
    }

    /// Largest per-flow [`StreamAnalyzer::peak_state_bytes`] seen.
    pub fn peak_state_bytes(&self) -> u64 {
        self.peak_state_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::intervals::split_intervals_bounded;
    use crate::karn::{estimate_timing, rtt_window_correlation};

    const S: u64 = 1_000_000_000;
    const MS: u64 = 1_000_000;

    /// A 250-second connection with a clean interval, a timeout, a
    /// backoff chain, and a fast retransmit — every classifier path.
    fn eventful_trace() -> Trace {
        let mut t = Trace::new();
        let mut push = |time_ns: u64, event: TraceEvent| {
            t.push(TraceRecord { time_ns, event });
        };
        let send = |seq| TraceEvent::Send { seq, retx: false };
        let ack = |a| TraceEvent::AckIn { ack: a };
        // Interval 0: clean window growth.
        for i in 0..10u64 {
            push(i * S, send(i));
            push(i * S + 80 * MS, ack(i + 1));
        }
        // Interval 1: fast retransmit (packet 10 lost, dupacks from 11–14).
        for i in 10..15u64 {
            push(110 * S + i, send(i));
        }
        for _ in 0..4 {
            push(111 * S, ack(10));
        }
        push(112 * S, send(10)); // TD
        push(113 * S, ack(15));
        // Interval 2: a double-timeout backoff chain.
        push(210 * S, send(15));
        push(213 * S, send(15));
        push(219 * S, send(15));
        push(220 * S, ack(16));
        push(230 * S, send(16));
        t
    }

    fn stream(trace: &Trace, config: StreamConfig, total: Option<f64>) -> StreamAnalysis {
        StreamAnalysis::from_trace(trace, config, total)
    }

    //= pftk#stream-batch-equivalence type=test
    #[test]
    fn streamed_equals_batch_on_eventful_trace() {
        let t = eventful_trace();
        let cfg = StreamConfig::default();
        let got = stream(&t, cfg, Some(250.0));

        let analysis = analyze(&t, cfg.analyzer);
        assert_eq!(got.analysis, analysis);
        assert_eq!(got.timing.as_ref(), Some(&estimate_timing(&t)));
        assert_eq!(
            got.rtt_window_corr.map(f64::to_bits),
            rtt_window_correlation(&t).map(f64::to_bits)
        );
        assert_eq!(
            got.intervals.as_deref(),
            Some(&split_intervals_bounded(&t, &analysis, 100.0, 250.0)[..])
        );
        assert_eq!(got.events, t.len() as u64);
    }

    #[test]
    fn disabled_reductions_stay_none() {
        let t = eventful_trace();
        let cfg = StreamConfig {
            analyzer: AnalyzerConfig::default(),
            interval_secs: None,
            timing: false,
            correlation: false,
        };
        let got = stream(&t, cfg, None);
        assert!(got.timing.is_none());
        assert!(got.intervals.is_none());
        assert!(got.rtt_window_corr.is_none());
        assert_eq!(got.analysis, analyze(&t, cfg.analyzer));
    }

    #[test]
    fn unbounded_horizon_matches_last_event() {
        let t = eventful_trace();
        let cfg = StreamConfig::default();
        let got = stream(&t, cfg, None);
        // Last event at 230 s → two full 100 s intervals.
        assert_eq!(got.intervals.as_ref().map(Vec::len), Some(2));
        let analysis = analyze(&t, cfg.analyzer);
        assert_eq!(
            got.intervals.as_deref(),
            Some(&split_intervals_bounded(&t, &analysis, 100.0, 230.0)[..])
        );
    }

    /// A pooled (recycled) analyzer must be indistinguishable from a
    /// fresh one: same flow, same events ⇒ bit-identical analysis.
    #[test]
    fn pooled_analyzer_matches_fresh() {
        let t = eventful_trace();
        let cfg = StreamConfig::default();
        let fresh = stream(&t, cfg, Some(250.0));

        let mut pool = AnalyzerPool::new(cfg);
        for round in 0..3 {
            let mut a = pool.acquire();
            for rec in t.records() {
                a.on_record(rec);
            }
            let got = pool.finish(a, Some(250.0));
            assert_eq!(got, fresh, "recycled analyzer diverged on round {round}");
        }
        assert_eq!(pool.flows_finished(), 3);
        assert_eq!(pool.leased(), 0);
        assert_eq!(pool.peak_leased(), 1);
        assert!(pool.peak_state_bytes() > 0);
    }

    #[test]
    fn pool_recycles_shells_and_tracks_concurrency() {
        let mut pool = AnalyzerPool::new(StreamConfig::default());
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.leased(), 2);
        assert_eq!(pool.peak_leased(), 2);
        let _ = pool.finish(a, None);
        let _ = pool.finish(b, None);
        // Both shells are back: two more leases reuse them without
        // raising the peak.
        let c = pool.acquire();
        let d = pool.acquire();
        assert_eq!(pool.peak_leased(), 2);
        let _ = pool.finish(c, None);
        let _ = pool.finish(d, None);
        assert_eq!(pool.flows_finished(), 4);
    }

    #[test]
    fn finish_and_reset_leaves_analyzer_fresh() {
        let t = eventful_trace();
        let cfg = StreamConfig::default();
        let mut a = StreamAnalyzer::new(cfg);
        for rec in t.records() {
            a.on_record(rec);
        }
        let first = a.finish_and_reset(Some(250.0));
        assert_eq!(a.events(), 0);
        assert!(a.indications().is_empty());
        for rec in t.records() {
            a.on_record(rec);
        }
        let second = a.finish_and_reset(Some(250.0));
        assert_eq!(first, second);
    }

    #[test]
    fn tee_sink_retains_and_reduces_in_one_pass() {
        let t = eventful_trace();
        let mut tee = TeeSink::new(
            TraceLog::new(),
            StreamAnalyzer::new(StreamConfig::default()),
        );
        for rec in t.records() {
            tee.on_record(rec);
        }
        let (log, analyzer) = tee.into_parts();
        assert_eq!(log.into_trace(), t);
        let got = analyzer.finish(Some(250.0));
        assert_eq!(got.analysis, analyze(&t, AnalyzerConfig::default()));
    }

    #[test]
    fn trace_itself_is_a_sink() {
        let t = eventful_trace();
        let mut copy = Trace::new();
        for rec in t.records() {
            copy.on_record(rec);
        }
        assert_eq!(copy, t);
    }

    #[test]
    fn state_is_window_bounded_not_duration_bounded() {
        // Two connections, one 20× longer, same window/loss behavior: the
        // peak state may grow only by the per-reduced-output terms
        // (indications, RTT samples, interval counters), never
        // proportionally to wire events the way a retained trace does.
        // Classification + intervals only: the timing/correlation cores
        // additionally keep one sample per forward ACK (the irreducible
        // input of their exact end-of-trace statistics), which grows with
        // ACK count — still far below retained-trace memory, but not what
        // this bound is about.
        let cfg = StreamConfig {
            analyzer: AnalyzerConfig::default(),
            interval_secs: Some(100.0),
            timing: false,
            correlation: false,
        };
        let run = |cycles: u64| {
            let mut s = StreamAnalyzer::new(cfg);
            let mut seq = 0u64;
            for c in 0..cycles {
                let base = c * S;
                for k in 0..8u64 {
                    s.on_send(base + k * MS, seq + k, false);
                }
                s.on_ack_in(base + 500 * MS, seq + 8);
                seq += 8;
            }
            (s.peak_state_bytes(), s.finish(None))
        };
        let (short_peak, short) = run(100);
        let (long_peak, long) = run(2000);
        let long_events = long.events as usize;
        let short_events = short.events as usize;
        // Retained-trace memory would scale 20×; reduced state must not.
        let event_ratio = long_events as f64 / short_events as f64;
        let state_ratio = long_peak as f64 / short_peak as f64;
        assert!(
            state_ratio < event_ratio / 2.0,
            "state grew like the trace: {short_peak} → {long_peak} \
             over {short_events} → {long_events} events"
        );
        assert!(short_peak > 0);
    }

    #[test]
    fn serde_roundtrip() {
        let t = eventful_trace();
        let got = stream(&t, StreamConfig::default(), Some(250.0));
        let json = serde_json::to_string(&got).unwrap();
        let back: StreamAnalysis = serde_json::from_str(&json).unwrap();
        assert_eq!(back, got);
    }

    #[test]
    fn mid_stream_snapshot_restore_is_bit_identical() {
        let t = eventful_trace();
        let cfg = StreamConfig::default();
        let whole = stream(&t, cfg, Some(250.0));

        // Cut the stream at several points, snapshot, restore into a fresh
        // analyzer, and feed the remainder: the finished analysis must be
        // bit-identical to the uninterrupted one at every cut.
        let records: Vec<_> = t.records().to_vec();
        for cut in [
            0,
            1,
            records.len() / 3,
            records.len() / 2,
            records.len() - 1,
        ] {
            let mut first = StreamAnalyzer::new(cfg);
            for rec in &records[..cut] {
                first.on_record(rec);
            }
            let snap = first.snapshot();
            assert_eq!(snap, first.snapshot(), "snapshot encoding deterministic");
            let mut resumed = StreamAnalyzer::new(cfg);
            resumed.restore(&snap).expect("restore");
            for rec in &records[cut..] {
                first.on_record(rec);
                resumed.on_record(rec);
            }
            let a = first.finish(Some(250.0));
            let b = resumed.finish(Some(250.0));
            assert_eq!(a, b, "cut at record {cut}");
            assert_eq!(
                a.rtt_window_corr.map(f64::to_bits),
                b.rtt_window_corr.map(f64::to_bits),
                "cut at record {cut}"
            );
            assert_eq!(a, whole, "cut at record {cut} diverged from whole run");
        }
    }

    #[test]
    fn restore_rejects_config_mismatch_and_corruption() {
        let t = eventful_trace();
        let mut donor = StreamAnalyzer::new(StreamConfig::default());
        for rec in t.records() {
            donor.on_record(rec);
        }
        let snap = donor.snapshot();

        // Core enabled in the target but absent from the snapshot.
        let mut no_timing = StreamAnalyzer::new(StreamConfig {
            timing: false,
            ..StreamConfig::default()
        });
        assert!(matches!(
            no_timing.restore(&snap),
            Err(SnapError::TagMismatch {
                context: "karn-presence",
                ..
            })
        ));

        // Different classifier threshold.
        let mut linux = StreamAnalyzer::new(StreamConfig::with_analyzer(AnalyzerConfig {
            dupack_threshold: 2,
        }));
        assert!(matches!(
            linux.restore(&snap),
            Err(SnapError::TagMismatch {
                context: "classifier-dupack-threshold",
                ..
            })
        ));

        // Bit flips and truncations error, never panic.
        let mut flipped = snap.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(StreamAnalyzer::new(StreamConfig::default())
            .restore(&flipped)
            .is_err());
        for cut in (0..snap.len()).step_by(7) {
            assert!(
                StreamAnalyzer::new(StreamConfig::default())
                    .restore(&snap[..cut])
                    .is_err(),
                "prefix {cut}"
            );
        }

        // The pristine snapshot still restores.
        let mut ok = StreamAnalyzer::new(StreamConfig::default());
        ok.restore(&snap).expect("pristine restore");
        assert_eq!(ok.events(), donor.events());
    }
}
