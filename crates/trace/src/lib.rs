//! # tcp-trace
//!
//! Sender-side trace records and the paper's §III analysis programs.
//!
//! The paper gathered measurement data "by running tcpdump at the sender,
//! and analyzing its output with a set of analysis programs developed by
//! us". This crate is those programs:
//!
//! * [`record`] — the trace format (the `tcpdump` stand-in): timestamped
//!   data-segment departures and ACK arrivals, serializable as JSON lines
//!   or a compact binary framing;
//! * [`log`](mod@log) — a columnar (struct-of-arrays) recording buffer for the
//!   simulation hot path, losslessly convertible to [`record`] form;
//! * [`stream`] — incremental (streaming) analysis: the [`TraceSink`] seam
//!   and the [`StreamAnalyzer`] that reduces wire events to the paper's
//!   statistics with O(window) state, bit-identical to the batch path
//!   (every batch function below is a thin fold of its streaming core);
//! * [`analyzer`] — loss-indication extraction and TD-vs-TO classification
//!   (with the Linux dupack-threshold-2 correction of §III), including
//!   timeout-sequence lengths for Table II's T0…T5+ columns;
//! * [`karn`] — RTT estimation under Karn's algorithm and `T0` estimation;
//! * [`intervals`] — the 100-second interval segmentation behind Figs. 7–10;
//! * [`metrics`] — the average-error metric of §III;
//! * [`table`] — Table II row assembly and formatting;
//! * [`summary`] — `tcptrace`-style whole-trace reports;
//! * [`import`] — a plain-text dump format so externally captured traces
//!   (e.g. converted `tcpdump` output) can feed the same pipeline;
//! * [`validate`](mod@validate) — internal-consistency checks that catch the usual
//!   conversion bugs in imported dumps before they skew the statistics.
//!
//! The analyzer deliberately uses only wire-visible information (sequence
//! repetition, duplicate-ACK counts) and is validated against the
//! simulator's ground-truth counters in the workspace integration tests —
//! mirroring how the original programs were "verified by checking them
//! against tcptrace and ns".

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analyzer;
pub mod health;
pub mod import;
pub mod intervals;
pub mod karn;
pub mod log;
pub mod metrics;
pub mod record;
pub mod stream;
pub mod summary;
pub mod table;
pub mod validate;

pub use analyzer::{analyze, Analysis, AnalyzerConfig, Classifier, IndicationKind, LossIndication};
pub use health::{HealthIssue, HealthWarning, TraceHealth};
pub use import::{export_text, import_text, import_text_strict, Import, ImportError};
pub use intervals::{
    split_intervals, split_intervals_bounded, IntervalCategory, IntervalCore, IntervalStats,
};
pub use karn::{
    estimate_t0_classified, estimate_timing, rtt_window_correlation, CorrCore, KarnCore,
    TimingEstimates,
};
pub use log::TraceLog;
pub use metrics::{average_error, Observation};
pub use record::{Trace, TraceEvent, TraceRecord};
pub use stream::{AnalyzerPool, StreamAnalysis, StreamAnalyzer, StreamConfig, TeeSink, TraceSink};
pub use summary::TraceSummary;
pub use table::{format_table, TableRow};
pub use validate::{conservation, validate, Conservation, Finding, Problem, ValidateConfig};
