//! Whole-trace summary statistics — the `tcptrace`-style report the paper's
//! authors used to sanity-check their analysis programs, extended with the
//! quantities this workspace's experiments consume.

use crate::analyzer::{analyze, Analysis, AnalyzerConfig};
use crate::karn::{estimate_timing, rtt_window_correlation};
use crate::record::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// A complete per-trace report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Trace duration (first to last record), seconds.
    pub duration_secs: f64,
    /// Total data transmissions.
    pub packets_sent: u64,
    /// Retransmissions (inferred from sequence repetition).
    pub retransmissions: u64,
    /// Distinct sequence numbers transmitted.
    pub distinct_packets: u64,
    /// ACKs seen at the sender.
    pub acks: u64,
    /// Loss indications (TD + timeout sequences).
    pub loss_indications: u64,
    /// TD indications.
    pub td_events: u64,
    /// Timeout histogram (T0..T5+).
    pub timeout_histogram: [u64; 6],
    /// The paper's `p` estimate.
    pub loss_rate: f64,
    /// Retransmission fraction of all transmissions.
    pub retransmission_rate: f64,
    /// Mean send rate, packets per second.
    pub send_rate_pps: f64,
    /// Karn-mean RTT, seconds (None without samples).
    pub mean_rtt: Option<f64>,
    /// Mean single-timeout duration, seconds.
    pub mean_t0: Option<f64>,
    /// RTT–window correlation (§IV's modem diagnostic).
    pub rtt_window_correlation: Option<f64>,
}

impl TraceSummary {
    /// Builds a summary from a trace with the given analyzer settings.
    pub fn build(trace: &Trace, analyzer: AnalyzerConfig) -> TraceSummary {
        let analysis = analyze(trace, analyzer);
        TraceSummary::from_parts(trace, &analysis)
    }

    /// Builds a summary reusing an existing analysis (avoids re-running the
    /// classifier when the caller already has one).
    pub fn from_parts(trace: &Trace, analysis: &Analysis) -> TraceSummary {
        let timing = estimate_timing(trace);
        let duration = trace.duration_secs();
        let mut distinct = 0u64;
        let mut snd_max = 0u64;
        for rec in trace.records() {
            if let TraceEvent::Send { seq, .. } = rec.event {
                if seq >= snd_max {
                    snd_max = seq + 1;
                    distinct += 1;
                }
            }
        }
        TraceSummary {
            duration_secs: duration,
            packets_sent: analysis.packets_sent,
            retransmissions: analysis.retransmissions,
            distinct_packets: distinct,
            acks: analysis.acks_seen,
            loss_indications: analysis.indications.len() as u64,
            td_events: analysis.td_count(),
            timeout_histogram: analysis.to_histogram(),
            loss_rate: analysis.loss_rate(),
            retransmission_rate: if analysis.packets_sent == 0 {
                0.0
            } else {
                analysis.retransmissions as f64 / analysis.packets_sent as f64
            },
            send_rate_pps: if duration > 0.0 {
                analysis.packets_sent as f64 / duration
            } else {
                0.0
            },
            mean_rtt: timing.mean_rtt,
            mean_t0: timing.mean_t0,
            rtt_window_correlation: rtt_window_correlation(trace),
        }
    }

    /// Renders the summary as an aligned multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "duration          {:>12.1} s\n",
            self.duration_secs
        ));
        out.push_str(&format!("packets sent      {:>12}\n", self.packets_sent));
        out.push_str(&format!(
            "  retransmissions {:>12} ({:.2}%)\n",
            self.retransmissions,
            100.0 * self.retransmission_rate
        ));
        out.push_str(&format!(
            "  distinct        {:>12}\n",
            self.distinct_packets
        ));
        out.push_str(&format!("acks              {:>12}\n", self.acks));
        out.push_str(&format!(
            "loss indications  {:>12} (p = {:.4})\n",
            self.loss_indications, self.loss_rate
        ));
        out.push_str(&format!(
            "  TD / TO         {:>12} / {}\n",
            self.td_events,
            self.timeout_histogram.iter().sum::<u64>()
        ));
        out.push_str(&format!(
            "  TO histogram    {:>12?}\n",
            self.timeout_histogram
        ));
        out.push_str(&format!(
            "send rate         {:>12.2} pkt/s\n",
            self.send_rate_pps
        ));
        if let Some(rtt) = self.mean_rtt {
            out.push_str(&format!("mean RTT          {:>12.4} s\n", rtt));
        }
        if let Some(t0) = self.mean_t0 {
            out.push_str(&format!("mean T0           {:>12.3} s\n", t0));
        }
        if let Some(corr) = self.rtt_window_correlation {
            out.push_str(&format!("RTT-window corr   {:>12.3}\n", corr));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    const S: u64 = 1_000_000_000;
    const MS: u64 = 1_000_000;

    fn build_trace() -> Trace {
        let mut t = Trace::new();
        // Two clean exchanges, one timeout retransmission.
        t.push(TraceRecord {
            time_ns: 0,
            event: TraceEvent::Send {
                seq: 0,
                retx: false,
            },
        });
        t.push(TraceRecord {
            time_ns: 200 * MS,
            event: TraceEvent::AckIn { ack: 1 },
        });
        t.push(TraceRecord {
            time_ns: 200 * MS + 1,
            event: TraceEvent::Send {
                seq: 1,
                retx: false,
            },
        });
        t.push(TraceRecord {
            time_ns: 3 * S,
            event: TraceEvent::Send { seq: 1, retx: true },
        });
        t.push(TraceRecord {
            time_ns: 3 * S + 200 * MS,
            event: TraceEvent::AckIn { ack: 2 },
        });
        t
    }

    #[test]
    fn summary_counts() {
        let trace = build_trace();
        let s = TraceSummary::build(&trace, AnalyzerConfig::default());
        assert_eq!(s.packets_sent, 3);
        assert_eq!(s.retransmissions, 1);
        assert_eq!(s.distinct_packets, 2);
        assert_eq!(s.acks, 2);
        assert_eq!(s.loss_indications, 1);
        assert_eq!(s.td_events, 0);
        assert_eq!(s.timeout_histogram[0], 1);
        assert!((s.loss_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.retransmission_rate - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.duration_secs - 3.2).abs() < 1e-9);
        assert!((s.send_rate_pps - 3.0 / 3.2).abs() < 1e-9);
    }

    #[test]
    fn summary_timing_fields() {
        let trace = build_trace();
        let s = TraceSummary::build(&trace, AnalyzerConfig::default());
        // Only seq 0 yields a Karn-valid RTT sample (seq 1 was retransmitted).
        assert!((s.mean_rtt.unwrap() - 0.2).abs() < 1e-9);
        // T0 measured from the retransmission gap anchored at progress.
        assert!(s.mean_t0.unwrap() > 2.0);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let trace = build_trace();
        let s = TraceSummary::build(&trace, AnalyzerConfig::default());
        let text = s.render();
        assert!(text.contains("packets sent"));
        assert!(text.contains("loss indications"));
        assert!(text.contains("0.2000"), "RTT missing from:\n{text}");
    }

    #[test]
    fn empty_trace_summary() {
        let s = TraceSummary::build(&Trace::new(), AnalyzerConfig::default());
        assert_eq!(s.packets_sent, 0);
        assert_eq!(s.send_rate_pps, 0.0);
        assert!(s.mean_rtt.is_none());
        assert!(s.rtt_window_correlation.is_none());
        // Renders without panicking.
        let _ = s.render();
    }

    #[test]
    fn serde_roundtrip() {
        let s = TraceSummary::build(&build_trace(), AnalyzerConfig::default());
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<TraceSummary>(&json).unwrap(), s);
    }
}
