//! Columnar (struct-of-arrays) trace storage for the simulation hot path.
//!
//! [`TraceLog`] records the same wire events as [`Trace`] but splits them
//! into three parallel columns — timestamp, value (sequence or ACK number),
//! and a one-byte event kind — instead of a `Vec` of tagged
//! [`TraceRecord`] structs. That makes a push three primitive stores into
//! preallocated vectors (no enum layout padding, no branchy tag encoding),
//! which is what the sender-side observer does once per wire event.
//!
//! Capacity is preallocated up front from the simulation horizon and an
//! expected packet rate ([`TraceLog::for_horizon`]), so steady-state
//! recording performs no allocation at all until the estimate is exceeded.
//!
//! The conversion to [`Trace`] ([`TraceLog::to_trace`] /
//! [`TraceLog::into_trace`]) is lossless, so the analyzer, Karn filter,
//! interval segmentation, and the lenient importers are untouched: they
//! keep consuming the row-oriented [`TraceRecord`] API.

use crate::record::{Trace, TraceEvent, TraceRecord};

/// Column value of an event kind (one byte per record).
const KIND_SEND: u8 = 0;
const KIND_SEND_RETX: u8 = 1;
const KIND_ACK_IN: u8 = 2;

/// A columnar sender-side trace; see the module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    time_ns: Vec<u64>,
    value: Vec<u64>,
    kind: Vec<u8>,
}

impl TraceLog {
    /// An empty log with no preallocation.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// An empty log with room for `records` events in every column.
    pub fn with_capacity(records: usize) -> Self {
        TraceLog {
            time_ns: Vec::with_capacity(records),
            value: Vec::with_capacity(records),
            kind: Vec::with_capacity(records),
        }
    }

    /// Preallocates from a simulation horizon and an expected event rate
    /// (wire events per second — sends *plus* ACK arrivals), with a small
    /// headroom factor so a typical run never reallocates.
    pub fn for_horizon(horizon_secs: f64, events_per_sec: f64) -> Self {
        let est = (horizon_secs.max(0.0) * events_per_sec.max(0.0) * 1.25).ceil();
        // A cap keeps a wild rate estimate from attempting an absurd
        // up-front reservation; the log still grows on demand past it.
        const CAP: f64 = 1e8;
        //~ allow(cast): deliberate float truncation after round/floor
        TraceLog::with_capacity(est.min(CAP) as usize)
    }

    /// Records a data-segment departure.
    #[inline]
    pub fn push_send(&mut self, time_ns: u64, seq: u64, retx: bool) {
        debug_assert!(
            self.time_ns.last().is_none_or(|&last| time_ns >= last),
            "trace records must be time-ordered"
        );
        self.time_ns.push(time_ns);
        self.value.push(seq);
        self.kind
            .push(if retx { KIND_SEND_RETX } else { KIND_SEND });
    }

    /// Records an ACK arrival.
    #[inline]
    pub fn push_ack_in(&mut self, time_ns: u64, ack: u64) {
        debug_assert!(
            self.time_ns.last().is_none_or(|&last| time_ns >= last),
            "trace records must be time-ordered"
        );
        self.time_ns.push(time_ns);
        self.value.push(ack);
        self.kind.push(KIND_ACK_IN);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.time_ns.len()
    }

    /// Approximate heap footprint of the retained columns, bytes (17 bytes
    /// per event: u64 time + u64 value + one kind byte).
    pub fn approx_bytes(&self) -> usize {
        self.len() * 17
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.time_ns.is_empty()
    }

    /// The record at `index`, reassembled into the row-oriented form.
    fn record(&self, index: usize) -> TraceRecord {
        //~ allow(hot_panic): callers index 0..len()
        let event = match self.kind[index] {
            KIND_SEND => TraceEvent::Send {
                seq: self.value[index], //~ allow(hot_panic): callers index 0..len()
                retx: false,
            },
            KIND_SEND_RETX => TraceEvent::Send {
                seq: self.value[index], //~ allow(hot_panic): callers index 0..len()
                retx: true,
            },
            _ => TraceEvent::AckIn {
                ack: self.value[index], //~ allow(hot_panic): callers index 0..len()
            },
        };
        TraceRecord {
            time_ns: self.time_ns[index], //~ allow(hot_panic): callers index 0..len()
            event,
        }
    }

    /// Iterates the events as [`TraceRecord`]s, in time order.
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        (0..self.len()).map(|i| self.record(i))
    }

    /// Lossless conversion into the row-oriented [`Trace`] the analysis
    /// programs consume.
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for rec in self.iter() {
            trace.push(rec);
        }
        trace
    }

    /// Consuming variant of [`TraceLog::to_trace`].
    pub fn into_trace(self) -> Trace {
        self.to_trace()
    }
}

impl From<&Trace> for TraceLog {
    fn from(trace: &Trace) -> Self {
        let mut log = TraceLog::with_capacity(trace.len());
        for rec in trace.records() {
            match rec.event {
                TraceEvent::Send { seq, retx } => log.push_send(rec.time_ns, seq, retx),
                TraceEvent::AckIn { ack } => log.push_ack_in(rec.time_ns, ack),
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.push_send(0, 0, false);
        log.push_ack_in(100_000_000, 1);
        log.push_send(100_000_001, 1, false);
        log.push_send(3_100_000_000, 1, true);
        log
    }

    #[test]
    fn push_and_len() {
        let log = sample_log();
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
        assert!(TraceLog::new().is_empty());
    }

    #[test]
    fn to_trace_is_lossless() {
        let log = sample_log();
        let trace = log.to_trace();
        assert_eq!(trace.len(), 4);
        assert_eq!(
            trace.records()[0].event,
            TraceEvent::Send {
                seq: 0,
                retx: false
            }
        );
        assert_eq!(trace.records()[1].event, TraceEvent::AckIn { ack: 1 });
        assert_eq!(
            trace.records()[3].event,
            TraceEvent::Send { seq: 1, retx: true }
        );
        assert_eq!(trace.records()[3].time_ns, 3_100_000_000);
        // Consuming conversion agrees.
        assert_eq!(sample_log().into_trace(), trace);
    }

    #[test]
    fn trace_roundtrip_preserves_everything() {
        let trace = sample_log().into_trace();
        let log = TraceLog::from(&trace);
        assert_eq!(log, sample_log());
        assert_eq!(log.to_trace(), trace);
    }

    #[test]
    fn iter_matches_records() {
        let log = sample_log();
        let trace = log.to_trace();
        let via_iter: Vec<TraceRecord> = log.iter().collect();
        assert_eq!(via_iter.as_slice(), trace.records());
    }

    #[test]
    fn for_horizon_preallocates() {
        let log = TraceLog::for_horizon(60.0, 1000.0);
        assert!(log.time_ns.capacity() >= 60_000);
        assert!(log.is_empty());
        // Degenerate inputs do not panic or reserve absurd amounts.
        let log = TraceLog::for_horizon(-5.0, f64::NAN);
        assert_eq!(log.time_ns.capacity(), 0);
    }

    #[test]
    fn pushes_stay_within_preallocated_capacity() {
        let mut log = TraceLog::with_capacity(100);
        let cap = log.time_ns.capacity();
        for i in 0..100u64 {
            log.push_send(i, i, false);
        }
        assert_eq!(log.time_ns.capacity(), cap, "no reallocation under cap");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_asserts_in_debug() {
        let mut log = TraceLog::new();
        log.push_ack_in(10, 1);
        log.push_ack_in(5, 2);
    }
}
