//! Sender-side trace records — the simulator's stand-in for `tcpdump`
//! output captured at the sending host (§III: "we gathered the measurement
//! data by running tcpdump at the sender").
//!
//! A record is a timestamped wire event visible at the sender: a data
//! segment leaving, or an ACK arriving. Two serializations are provided:
//! JSON lines (human-inspectable, one record per line) and a compact binary
//! framing (17 bytes/record) for large traces.

use crate::health::{HealthIssue, TraceHealth};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// A wire event at the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "ev", rename_all = "snake_case")]
pub enum TraceEvent {
    /// A data segment left the sender. The sequence number is in packets;
    /// whether this was a retransmission is *not* trusted by the analyzer
    /// (it re-infers retransmissions from sequence repetition, as a real
    /// trace analyzer must), but is kept for validation.
    Send {
        /// Segment sequence number (packets).
        seq: u64,
        /// True if the simulator marked this a retransmission (ground truth).
        retx: bool,
    },
    /// A cumulative ACK arrived at the sender.
    AckIn {
        /// Next expected sequence number (acknowledges everything below).
        ack: u64,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Nanoseconds since connection start.
    pub time_ns: u64,
    /// The event.
    #[serde(flatten)]
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Seconds since connection start.
    pub fn time_secs(&self) -> f64 {
        self.time_ns as f64 / 1e9
    }
}

/// An in-memory sender-side trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

/// Binary framing tags.
const TAG_SEND: u8 = 1;
const TAG_SEND_RETX: u8 = 2;
const TAG_ACK: u8 = 3;

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a record. Records must be pushed in nondecreasing time order
    /// (they come from a monotone simulation clock); this is checked.
    pub fn push(&mut self, record: TraceRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.time_ns >= last.time_ns,
                "trace records must be time-ordered: {} after {}",
                record.time_ns,
                last.time_ns
            );
        }
        self.records.push(record);
    }

    /// Fallible append: returns the record back instead of panicking when
    /// it would violate time order. For ingesting untrusted streams where
    /// out-of-order data is an input problem, not a programming bug.
    pub fn try_push(&mut self, record: TraceRecord) -> Result<(), TraceRecord> {
        match self.records.last() {
            Some(last) if record.time_ns < last.time_ns => Err(record),
            _ => {
                self.records.push(record);
                Ok(())
            }
        }
    }

    /// The records, in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate heap footprint of the retained records, bytes — the
    /// "peak retained trace" term of the streaming-vs-batch memory
    /// comparison in `bench_report`.
    pub fn approx_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<TraceRecord>()
    }

    /// Total duration covered (first to last record), seconds.
    pub fn duration_secs(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => (b.time_ns - a.time_ns) as f64 / 1e9,
            _ => 0.0,
        }
    }

    /// Writes the trace as JSON lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        for rec in &self.records {
            serde_json::to_writer(&mut w, rec)?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a JSON-lines trace.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Self> {
        let mut trace = Trace::new();
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: TraceRecord = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            trace.try_push(rec).map_err(|rec| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("out-of-order record at {} ns", rec.time_ns),
                )
            })?;
        }
        Ok(trace)
    }

    /// Encodes the trace into a compact binary buffer
    /// (tag byte + u64 time + u64 seq/ack, little-endian).
    pub fn encode_binary<B: BufMut>(&self, buf: &mut B) {
        for rec in &self.records {
            match rec.event {
                TraceEvent::Send { seq, retx } => {
                    buf.put_u8(if retx { TAG_SEND_RETX } else { TAG_SEND });
                    buf.put_u64_le(rec.time_ns);
                    buf.put_u64_le(seq);
                }
                TraceEvent::AckIn { ack } => {
                    buf.put_u8(TAG_ACK);
                    buf.put_u64_le(rec.time_ns);
                    buf.put_u64_le(ack);
                }
            }
        }
    }

    /// Decodes a binary buffer produced by [`Trace::encode_binary`].
    pub fn decode_binary<B: Buf>(buf: &mut B) -> io::Result<Self> {
        let mut trace = Trace::new();
        while buf.has_remaining() {
            if buf.remaining() < 17 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated trace record",
                ));
            }
            let tag = buf.get_u8();
            let time_ns = buf.get_u64_le();
            let value = buf.get_u64_le();
            let event = match tag {
                TAG_SEND => TraceEvent::Send {
                    seq: value,
                    retx: false,
                },
                TAG_SEND_RETX => TraceEvent::Send {
                    seq: value,
                    retx: true,
                },
                TAG_ACK => TraceEvent::AckIn { ack: value },
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown trace tag {other}"),
                    ))
                }
            };
            trace
                .try_push(TraceRecord { time_ns, event })
                .map_err(|r| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("out-of-order record at {} ns", r.time_ns),
                    )
                })?;
        }
        Ok(trace)
    }

    /// Lenient counterpart of [`Trace::decode_binary`]: salvages every
    /// complete, well-formed record. A truncated final record or an
    /// unknown tag is discarded with a [`TraceHealth`] warning (decoding
    /// resynchronizes on the next 17-byte frame), and out-of-order
    /// timestamps are clamped monotone — matching the salvage policy of
    /// [`crate::import::import_text`].
    pub fn decode_binary_lenient<B: Buf>(buf: &mut B) -> (Self, TraceHealth) {
        let mut trace = Trace::new();
        let mut health = TraceHealth::new();
        let mut index = 0usize;
        let mut last_ns = 0u64;
        while buf.has_remaining() {
            if buf.remaining() < 17 {
                health.discarded += 1;
                health.warn(
                    index,
                    HealthIssue::TruncatedTail {
                        fragment: format!("{} trailing bytes", buf.remaining()),
                    },
                );
                break;
            }
            let tag = buf.get_u8();
            let mut time_ns = buf.get_u64_le();
            let value = buf.get_u64_le();
            let event = match tag {
                TAG_SEND => TraceEvent::Send {
                    seq: value,
                    retx: false,
                },
                TAG_SEND_RETX => TraceEvent::Send {
                    seq: value,
                    retx: true,
                },
                TAG_ACK => TraceEvent::AckIn { ack: value },
                other => {
                    health.discarded += 1;
                    health.warn(
                        index,
                        HealthIssue::Malformed {
                            reason: format!("unknown trace tag {other}"),
                        },
                    );
                    index += 1;
                    continue;
                }
            };
            if time_ns < last_ns {
                health.repaired += 1;
                health.warn(
                    index,
                    HealthIssue::TimestampClamped {
                        original_ns: time_ns,
                        clamped_to_ns: last_ns,
                    },
                );
                time_ns = last_ns;
            }
            last_ns = time_ns;
            health.salvaged += 1;
            trace.push(TraceRecord { time_ns, event });
            index += 1;
        }
        (trace, health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceRecord {
            time_ns: 0,
            event: TraceEvent::Send {
                seq: 0,
                retx: false,
            },
        });
        t.push(TraceRecord {
            time_ns: 100_000_000,
            event: TraceEvent::AckIn { ack: 1 },
        });
        t.push(TraceRecord {
            time_ns: 100_000_001,
            event: TraceEvent::Send {
                seq: 1,
                retx: false,
            },
        });
        t.push(TraceRecord {
            time_ns: 3_100_000_000,
            event: TraceEvent::Send { seq: 1, retx: true },
        });
        t
    }

    #[test]
    fn push_preserves_order_and_len() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert!((t.duration_secs() - 3.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(TraceRecord {
            time_ns: 10,
            event: TraceEvent::AckIn { ack: 1 },
        });
        t.push(TraceRecord {
            time_ns: 5,
            event: TraceEvent::AckIn { ack: 2 },
        });
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"ev\":\"send\""));
        let back = Trace::read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let input = "\n{\"time_ns\":5,\"ev\":\"ack_in\",\"ack\":3}\n\n";
        let t = Trace::read_jsonl(std::io::Cursor::new(input)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].event, TraceEvent::AckIn { ack: 3 });
    }

    #[test]
    fn jsonl_rejects_garbage() {
        let input = "not json\n";
        assert!(Trace::read_jsonl(std::io::Cursor::new(input)).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode_binary(&mut buf);
        assert_eq!(buf.len(), 17 * 4);
        let back = Trace::decode_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_truncation_and_bad_tags() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode_binary(&mut buf);
        buf.truncate(20);
        assert!(Trace::decode_binary(&mut buf.as_slice()).is_err());
        let bad = vec![99u8; 17];
        assert!(Trace::decode_binary(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn try_push_rejects_out_of_order_without_panicking() {
        let mut t = Trace::new();
        assert!(t
            .try_push(TraceRecord {
                time_ns: 10,
                event: TraceEvent::AckIn { ack: 1 },
            })
            .is_ok());
        let rejected = t
            .try_push(TraceRecord {
                time_ns: 5,
                event: TraceEvent::AckIn { ack: 2 },
            })
            .unwrap_err();
        assert_eq!(rejected.time_ns, 5);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn jsonl_rejects_out_of_order_records() {
        let input = "{\"time_ns\":10,\"ev\":\"ack_in\",\"ack\":1}\n\
                     {\"time_ns\":5,\"ev\":\"ack_in\",\"ack\":2}\n";
        let err = Trace::read_jsonl(std::io::Cursor::new(input)).unwrap_err();
        assert!(err.to_string().contains("out-of-order"));
    }

    #[test]
    fn lenient_binary_decode_salvages_truncated_prefix() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.encode_binary(&mut buf);
        buf.truncate(17 * 2 + 9); // two whole records + a partial third
        let (back, health) = Trace::decode_binary_lenient(&mut buf.as_slice());
        assert_eq!(back.len(), 2);
        assert_eq!(back.records(), &t.records()[..2]);
        assert_eq!(health.salvaged, 2);
        assert_eq!(health.discarded, 1);
        assert!(matches!(
            &health.warnings()[0].issue,
            HealthIssue::TruncatedTail { fragment } if fragment == "9 trailing bytes"
        ));
    }

    #[test]
    fn lenient_binary_decode_skips_bad_tags_and_clamps_time() {
        let mut buf = Vec::new();
        // Good record at t=100.
        buf.push(1u8);
        buf.extend_from_slice(&100u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        // Unknown tag.
        buf.push(77u8);
        buf.extend_from_slice(&110u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        // Good record with a *backwards* timestamp (clock step).
        buf.push(3u8);
        buf.extend_from_slice(&40u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        let (back, health) = Trace::decode_binary_lenient(&mut buf.as_slice());
        assert_eq!(back.len(), 2);
        assert_eq!(back.records()[1].time_ns, 100, "clamped monotone");
        assert_eq!(health.salvaged, 2);
        assert_eq!(health.discarded, 1);
        assert_eq!(health.repaired, 1);
    }

    #[test]
    fn time_secs_conversion() {
        let rec = TraceRecord {
            time_ns: 2_500_000_000,
            event: TraceEvent::AckIn { ack: 0 },
        };
        assert!((rec.time_secs() - 2.5).abs() < 1e-12);
    }
}
