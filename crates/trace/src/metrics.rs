//! The paper's model-accuracy metric (§III):
//!
//! ```text
//!                  Σ_observations |N_predicted − N_observed| / N_observed
//! average error = ───────────────────────────────────────────────────────
//!                              number of observations
//! ```
//!
//! where, for each interval, `N_predicted = B(p_observed) · interval` with
//! the trace-wide average RTT and T0 ("we calculate the average value of RTT
//! and time-out for the entire trace").

use crate::intervals::IntervalStats;

/// One `(p_observed, N_observed)` observation, plus the horizon over which
/// `N` was counted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Observed loss-indication rate in the interval.
    pub loss_rate: f64,
    /// Packets sent in the interval.
    pub packets: u64,
    /// Interval length, seconds.
    pub interval_secs: f64,
}

impl Observation {
    /// Builds observations from interval statistics.
    pub fn from_intervals(intervals: &[IntervalStats], interval_secs: f64) -> Vec<Observation> {
        intervals
            .iter()
            .map(|iv| Observation {
                loss_rate: iv.loss_rate,
                packets: iv.packets_sent,
                interval_secs,
            })
            .collect()
    }
}

/// Computes the paper's average error for a model `B(p)` in packets per
/// second.
///
/// Skipped observations, mirroring what the paper's Figs. 7–10 could plot:
///
/// * intervals with `N_observed = 0` (the metric divides by it);
/// * intervals with no loss indication — they have no measured `p` and
///   cannot appear on the figures' logarithmic loss axis. (On heavily
///   backed-off paths such intervals otherwise dominate the metric with
///   meaningless `p → 0` extrapolations: TCP that spent 100 s inside one
///   timeout sequence sent almost nothing, while any model evaluated at a
///   clamped `p ≈ 0` predicts a full window per RTT.)
pub fn average_error<F: Fn(f64) -> f64>(observations: &[Observation], model: F) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for obs in observations {
        if obs.packets == 0 || obs.loss_rate <= 0.0 {
            continue;
        }
        let p = obs.loss_rate.clamp(1e-9, 1.0 - 1e-9);
        let predicted = model(p) * obs.interval_secs;
        sum += (predicted - obs.packets as f64).abs() / obs.packets as f64;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(loss_rate: f64, packets: u64) -> Observation {
        Observation {
            loss_rate,
            packets,
            interval_secs: 100.0,
        }
    }

    #[test]
    fn perfect_model_zero_error() {
        let observations = vec![obs(0.01, 500), obs(0.02, 300)];
        // A "model" that predicts exactly what was observed.
        let err = average_error(&observations, |p| {
            if (p - 0.01).abs() < 1e-6 {
                5.0
            } else {
                3.0
            }
        });
        assert!(err.abs() < 1e-12);
    }

    #[test]
    fn overprediction_by_factor_two_is_error_one() {
        let observations = vec![obs(0.05, 100)];
        let err = average_error(&observations, |_| 2.0); // predicts 200
        assert!((err - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_packet_intervals_skipped() {
        let observations = vec![obs(0.05, 0), obs(0.05, 100)];
        let err = average_error(&observations, |_| 1.0); // predicts 100
        assert!(err.abs() < 1e-12);
    }

    #[test]
    fn lossless_intervals_skipped() {
        // No indications → no measurable p → not a figure point.
        let observations = vec![obs(0.0, 100), obs(0.05, 100)];
        let err = average_error(&observations, |_| 1.0); // predicts 100
        assert!(err.abs() < 1e-12, "only the lossy interval counts");
        // All-lossless input yields zero error (no observations).
        assert_eq!(average_error(&[obs(0.0, 50)], |_| 42.0), 0.0);
    }

    #[test]
    fn empty_observations_zero_error() {
        assert_eq!(average_error(&[], |_| 1.0), 0.0);
    }

    #[test]
    fn from_intervals_copies_fields() {
        use crate::intervals::{IntervalCategory, IntervalStats};
        let iv = vec![IntervalStats {
            index: 0,
            packets_sent: 42,
            loss_indications: 2,
            loss_rate: 2.0 / 42.0,
            category: IntervalCategory::TdOnly,
        }];
        let o = Observation::from_intervals(&iv, 100.0);
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].packets, 42);
        assert!((o[0].loss_rate - 2.0 / 42.0).abs() < 1e-12);
    }
}
