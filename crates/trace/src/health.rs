//! Per-trace ingestion health: what lenient parsing salvaged, what it had
//! to discard or repair, and why.
//!
//! Real measurement campaigns produce damaged captures — a disk fills mid
//! `tcpdump` run and truncates the final record, a flaky pipe duplicates a
//! block, clock adjustments nudge timestamps backwards. The paper's §III
//! analysis programs had to cope with exactly this, so our importers do
//! too: instead of rejecting a 1-hour trace for one bad byte, they salvage
//! everything salvageable and attach a [`TraceHealth`] describing the
//! damage, letting the campaign supervisor decide whether the trace is
//! still usable.

use serde::{Deserialize, Serialize};

/// Cap on retained warnings: damaged input can produce one warning per
/// record; a bounded report stays readable. Overflow is counted in
/// [`TraceHealth::suppressed`].
const MAX_WARNINGS: usize = 100;

/// Why a record (or fragment) needed intervention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthIssue {
    /// The input ended mid-record; the complete prefix was salvaged and the
    /// dangling fragment dropped.
    TruncatedTail {
        /// The unparseable trailing fragment (text formats) or a byte-count
        /// description (binary framing).
        fragment: String,
    },
    /// A mid-stream record could not be parsed and was discarded.
    Malformed {
        /// What was wrong with it.
        reason: String,
    },
    /// An exact consecutive duplicate of the previous record was discarded
    /// (replayed capture blocks, doubled pipe writes).
    DuplicateRecord,
    /// A timestamp went backwards and was clamped up to its predecessor so
    /// the salvaged trace stays monotone.
    TimestampClamped {
        /// The timestamp as found in the input, nanoseconds.
        original_ns: u64,
        /// The monotone value it was repaired to, nanoseconds.
        clamped_to_ns: u64,
    },
}

/// One located intervention.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthWarning {
    /// 1-based line number (text formats) or 0-based record index (binary).
    pub location: usize,
    /// What happened there.
    pub issue: HealthIssue,
}

/// The ingestion health of one trace: how many events survived, how many
/// were discarded or repaired, and a bounded list of located warnings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceHealth {
    /// Events successfully salvaged into the trace.
    pub salvaged: usize,
    /// Events (or fragments) discarded as unusable.
    pub discarded: usize,
    /// Events kept after repair (e.g. timestamp clamping).
    pub repaired: usize,
    warnings: Vec<HealthWarning>,
    suppressed: usize,
}

impl TraceHealth {
    /// A fresh, clean health record.
    pub fn new() -> TraceHealth {
        TraceHealth::default()
    }

    /// True when nothing was discarded or repaired: the input parsed as a
    /// pristine trace.
    pub fn is_clean(&self) -> bool {
        self.discarded == 0 && self.repaired == 0 && self.warnings.is_empty()
    }

    /// The retained warnings (at most an internal cap; see
    /// [`TraceHealth::suppressed`]).
    pub fn warnings(&self) -> &[HealthWarning] {
        &self.warnings
    }

    /// Warnings dropped beyond the retention cap.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Records a warning, respecting the retention cap.
    pub(crate) fn warn(&mut self, location: usize, issue: HealthIssue) {
        if self.warnings.len() < MAX_WARNINGS {
            self.warnings.push(HealthWarning { location, issue });
        } else {
            self.suppressed += 1;
        }
    }
}

impl std::fmt::Display for TraceHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "salvaged {} events, discarded {}, repaired {}",
            self.salvaged, self.discarded, self.repaired
        )?;
        if self.suppressed > 0 {
            write!(f, " ({} warnings suppressed)", self.suppressed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_by_default() {
        let h = TraceHealth::new();
        assert!(h.is_clean());
        assert_eq!(h.to_string(), "salvaged 0 events, discarded 0, repaired 0");
    }

    #[test]
    fn warnings_make_it_unclean_and_are_capped() {
        let mut h = TraceHealth::new();
        for i in 0..(MAX_WARNINGS + 7) {
            h.warn(i, HealthIssue::DuplicateRecord);
        }
        assert!(!h.is_clean());
        assert_eq!(h.warnings().len(), MAX_WARNINGS);
        assert_eq!(h.suppressed(), 7);
        assert!(h.to_string().contains("7 warnings suppressed"));
    }

    #[test]
    fn serializes() {
        let mut h = TraceHealth::new();
        h.discarded = 1;
        h.warn(
            3,
            HealthIssue::Malformed {
                reason: "bad timestamp".into(),
            },
        );
        let json = serde_json::to_string(&h).unwrap();
        let back: TraceHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
