//! Trace validation: internal-consistency checks for traces before they
//! enter the analysis pipeline — mainly useful for imported external dumps
//! ([`crate::import`]), where conversion bugs (byte/packet mix-ups, clock
//! jumps, reversed directions) would otherwise surface as nonsense
//! loss-indication statistics.

use crate::record::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};
//~ allow(unordered-iter): imported for the membership-only duplicate-send set below
use std::collections::HashSet;

/// A single validation finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Index of the offending record.
    pub record_index: usize,
    /// What looks wrong.
    pub problem: Problem,
}

/// The kinds of inconsistency the validator detects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Problem {
    /// An ACK acknowledges data that was never transmitted — usually a
    /// bytes-vs-packets conversion error or a trace captured at the wrong
    /// endpoint.
    AckAboveSndMax {
        /// The ACK value.
        ack: u64,
        /// Highest sequence transmitted before it (+1).
        snd_max: u64,
    },
    /// The cumulative ACK value went backwards (reordering on the reverse
    /// path is possible in reality but breaks the analyzer's assumptions;
    /// sender-side captures see ACKs in arrival order, which is what the
    /// analysis needs).
    AckRegressed {
        /// This ACK's value.
        ack: u64,
        /// The highest ACK seen before it.
        previous: u64,
    },
    /// A new (non-retransmission) sequence skipped ahead, leaving a gap the
    /// sender never filled — senders transmit sequentially.
    SequenceGap {
        /// The transmitted sequence.
        seq: u64,
        /// The expected next new sequence.
        expected: u64,
    },
    /// The gap between consecutive events exceeds the plausibility bound
    /// (default: 1 hour) — usually a units error in timestamps.
    ClockJump {
        /// Gap length, seconds.
        gap_secs: f64,
    },
}

/// Validator settings.
#[derive(Debug, Clone, Copy)]
pub struct ValidateConfig {
    /// Largest believable silence between consecutive records, seconds.
    pub max_gap_secs: f64,
    /// Stop after this many findings (imported garbage can produce one per
    /// record; a bounded report stays readable).
    pub max_findings: usize,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        ValidateConfig {
            max_gap_secs: 3600.0,
            max_findings: 100,
        }
    }
}

/// Checks the trace and returns the findings (empty = consistent).
pub fn validate(trace: &Trace, config: ValidateConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut snd_max: u64 = 0;
    let mut highest_ack: u64 = 0;
    let mut last_time: Option<u64> = None;
    for (i, rec) in trace.records().iter().enumerate() {
        if findings.len() >= config.max_findings {
            break;
        }
        if let Some(prev) = last_time {
            let gap = (rec.time_ns - prev) as f64 / 1e9;
            if gap > config.max_gap_secs {
                findings.push(Finding {
                    record_index: i,
                    problem: Problem::ClockJump { gap_secs: gap },
                });
            }
        }
        last_time = Some(rec.time_ns);
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                if seq > snd_max {
                    findings.push(Finding {
                        record_index: i,
                        problem: Problem::SequenceGap {
                            seq,
                            expected: snd_max,
                        },
                    });
                    snd_max = seq + 1;
                } else if seq == snd_max {
                    snd_max += 1;
                }
                // seq < snd_max is a retransmission: fine.
            }
            TraceEvent::AckIn { ack } => {
                if ack > snd_max {
                    findings.push(Finding {
                        record_index: i,
                        problem: Problem::AckAboveSndMax { ack, snd_max },
                    });
                }
                if ack < highest_ack {
                    findings.push(Finding {
                        record_index: i,
                        problem: Problem::AckRegressed {
                            ack,
                            previous: highest_ack,
                        },
                    });
                }
                highest_ack = highest_ack.max(ack);
            }
        }
    }
    findings
}

/// Packet-conservation summary of a trace: every distinct sequence number
/// ever sent must be accounted for — either cumulatively acknowledged by
/// the end of the trace, or still unacknowledged at the tail (lost in
/// flight or cut off by trace truncation). Nothing may vanish and nothing
/// may be acknowledged that was never sent; together with timestamp
/// monotonicity these are the invariants the chaos soak asserts on every
/// salvaged trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conservation {
    /// Distinct sequence numbers observed leaving the sender.
    pub distinct_sends: u64,
    /// Of those, sequences below the final highest cumulative ACK
    /// (delivered — possibly via retransmission).
    pub acked: u64,
    /// Of those, sequences at or above the final highest cumulative ACK
    /// (unaccounted tail: dropped, in flight, or truncated with the trace).
    pub tail_unacked: u64,
    /// Send events beyond the first per sequence number.
    pub retransmissions: u64,
    /// True when record timestamps are non-decreasing.
    pub monotone: bool,
    /// True when no ACK ever acknowledged a sequence that had not been
    /// sent (`highest_ack <= snd_max` throughout).
    pub acks_covered: bool,
}

impl Conservation {
    /// True when the conservation invariants hold: timestamps monotone,
    /// ACKs never ahead of the data, and every distinct send accounted for
    /// as acked or tail-unacked.
    pub fn holds(&self) -> bool {
        self.monotone && self.acks_covered && self.acked + self.tail_unacked == self.distinct_sends
    }
}

/// Computes the [`Conservation`] summary of a trace.
pub fn conservation(trace: &Trace) -> Conservation {
    //~ allow(unordered-iter): membership-only set (insert + contains); never iterated, so no order leaks
    let mut seen: HashSet<u64> = HashSet::new();
    let mut retransmissions = 0u64;
    let mut highest_ack = 0u64;
    let mut snd_max = 0u64;
    let mut monotone = true;
    let mut acks_covered = true;
    let mut last_ns = 0u64;
    for rec in trace.records() {
        if rec.time_ns < last_ns {
            monotone = false;
        }
        last_ns = rec.time_ns;
        match rec.event {
            TraceEvent::Send { seq, .. } => {
                if !seen.insert(seq) {
                    retransmissions += 1;
                }
                snd_max = snd_max.max(seq + 1);
            }
            TraceEvent::AckIn { ack } => {
                if ack > snd_max {
                    acks_covered = false;
                }
                highest_ack = highest_ack.max(ack);
            }
        }
    }
    let acked = seen.iter().filter(|&&s| s < highest_ack).count() as u64;
    let distinct_sends = seen.len() as u64;
    Conservation {
        distinct_sends,
        acked,
        tail_unacked: distinct_sends - acked,
        retransmissions,
        monotone,
        acks_covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn rec(time_ns: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { time_ns, event }
    }

    fn send(seq: u64) -> TraceEvent {
        TraceEvent::Send { seq, retx: false }
    }

    fn ack(a: u64) -> TraceEvent {
        TraceEvent::AckIn { ack: a }
    }

    #[test]
    fn clean_trace_has_no_findings() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(1, send(1)));
        t.push(rec(100_000_000, ack(2)));
        t.push(rec(100_000_001, send(2)));
        t.push(rec(3_000_000_000, send(2))); // retransmission: fine
        assert!(validate(&t, ValidateConfig::default()).is_empty());
    }

    #[test]
    fn detects_ack_above_snd_max() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(1, ack(500))); // bytes mistaken for packets, say
        let f = validate(&t, ValidateConfig::default());
        assert_eq!(f.len(), 1);
        assert!(matches!(
            f[0].problem,
            Problem::AckAboveSndMax {
                ack: 500,
                snd_max: 1
            }
        ));
        assert_eq!(f[0].record_index, 1);
    }

    #[test]
    fn detects_ack_regression() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(1, send(1)));
        t.push(rec(2, ack(2)));
        t.push(rec(3, ack(1)));
        let f = validate(&t, ValidateConfig::default());
        assert!(f.iter().any(|x| matches!(
            x.problem,
            Problem::AckRegressed {
                ack: 1,
                previous: 2
            }
        )));
    }

    #[test]
    fn detects_sequence_gap() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(1, send(7))); // skipped 1..=6
        let f = validate(&t, ValidateConfig::default());
        assert_eq!(f.len(), 1);
        assert!(matches!(
            f[0].problem,
            Problem::SequenceGap {
                seq: 7,
                expected: 1
            }
        ));
        // After the gap, continuing from 8 is consistent.
        let mut t2 = Trace::new();
        t2.push(rec(0, send(0)));
        t2.push(rec(1, send(7)));
        t2.push(rec(2, send(8)));
        assert_eq!(validate(&t2, ValidateConfig::default()).len(), 1);
    }

    #[test]
    fn detects_clock_jump() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(7_200_000_000_000, send(1))); // 2 hours later
        let f = validate(&t, ValidateConfig::default());
        assert!(matches!(f[0].problem, Problem::ClockJump { gap_secs } if gap_secs > 7000.0));
    }

    #[test]
    fn conservation_on_clean_trace() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(1, send(1)));
        t.push(rec(2, send(2)));
        t.push(rec(100, ack(2)));
        t.push(rec(200, send(1))); // retransmission
        t.push(rec(300, ack(2)));
        let c = conservation(&t);
        assert!(c.holds(), "{c:?}");
        assert_eq!(c.distinct_sends, 3);
        assert_eq!(c.acked, 2); // seqs 0, 1 < final highest ack 2
        assert_eq!(c.tail_unacked, 1); // seq 2 never acked: lost or truncated
        assert_eq!(c.retransmissions, 1);
        assert!(c.monotone);
        assert!(c.acks_covered);
    }

    #[test]
    fn conservation_flags_phantom_acks() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        t.push(rec(1, ack(9))); // acknowledges data never sent
        let c = conservation(&t);
        assert!(!c.acks_covered);
        assert!(!c.holds());
    }

    #[test]
    fn conservation_flags_non_monotone_times() {
        // A non-monotone trace can only enter via deserialization.
        let json = "{\"records\":[\
            {\"time_ns\":10,\"ev\":\"send\",\"seq\":0,\"retx\":false},\
            {\"time_ns\":5,\"ev\":\"send\",\"seq\":1,\"retx\":false}]}";
        let t: Trace = serde_json::from_str(json).unwrap();
        let c = conservation(&t);
        assert!(!c.monotone);
        assert!(!c.holds());
    }

    #[test]
    fn conservation_of_empty_trace_holds() {
        let c = conservation(&Trace::new());
        assert!(c.holds());
        assert_eq!(c.distinct_sends, 0);
    }

    #[test]
    fn findings_are_bounded() {
        let mut t = Trace::new();
        t.push(rec(0, send(0)));
        for i in 0..500u64 {
            t.push(rec(i + 1, ack(1_000 + i))); // every ack invalid
        }
        let f = validate(
            &t,
            ValidateConfig {
                max_findings: 10,
                ..Default::default()
            },
        );
        assert_eq!(f.len(), 10);
    }
}
