//! Property-based tests of the trace format and analyzer.

use proptest::prelude::*;
use tcp_trace::analyzer::{analyze, AnalyzerConfig};
use tcp_trace::import::{export_text, import_text};
use tcp_trace::record::{Trace, TraceEvent, TraceRecord};

/// True when the trace's timestamps are non-decreasing.
fn is_monotone(trace: &Trace) -> bool {
    trace
        .records()
        .windows(2)
        .all(|w| w[0].time_ns <= w[1].time_ns)
}

/// Strategy: a random but *time-ordered* plausible sender trace. Generates
/// interleavings of new sends, retransmissions of the current head, and
/// forward/duplicate ACKs.
fn trace_strategy() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u8..4, 1u64..50), 1..400).prop_map(|ops| {
        let mut t = Trace::new();
        let mut now = 0u64;
        let mut snd_max = 0u64;
        let mut last_ack = 0u64;
        for (op, dt) in ops {
            now += dt * 1_000_000;
            match op {
                // New data segment.
                0 | 1 => {
                    t.push(TraceRecord {
                        time_ns: now,
                        event: TraceEvent::Send {
                            seq: snd_max,
                            retx: false,
                        },
                    });
                    snd_max += 1;
                }
                // Retransmission of the head (only if something is out).
                2 if last_ack < snd_max => {
                    t.push(TraceRecord {
                        time_ns: now,
                        event: TraceEvent::Send {
                            seq: last_ack,
                            retx: true,
                        },
                    });
                }
                // An ACK: duplicate or forward.
                _ if snd_max > 0 => {
                    let ack = if last_ack < snd_max && (now / 1_000_000).is_multiple_of(3) {
                        last_ack + 1 + (now / 7_000_000) % (snd_max - last_ack)
                    } else {
                        last_ack
                    };
                    last_ack = last_ack.max(ack);
                    t.push(TraceRecord {
                        time_ns: now,
                        event: TraceEvent::AckIn { ack },
                    });
                }
                _ => {}
            }
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jsonl_roundtrip_any_trace(trace in trace_strategy()) {
        let mut buf = Vec::new();
        trace.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn binary_roundtrip_any_trace(trace in trace_strategy()) {
        let mut buf = Vec::new();
        trace.encode_binary(&mut buf);
        prop_assert_eq!(buf.len(), trace.len() * 17);
        let back = Trace::decode_binary(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn analyzer_never_panics_and_counts_consistently(trace in trace_strategy()) {
        let a = analyze(&trace, AnalyzerConfig::default());
        // Sends in the trace equal packets counted.
        let sends = trace
            .records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::Send { .. }))
            .count() as u64;
        prop_assert_eq!(a.packets_sent, sends);
        prop_assert!(a.retransmissions <= a.packets_sent);
        // Every indication is anchored at a retransmission, so there can be
        // no more indications than retransmissions.
        prop_assert!(a.indications.len() as u64 <= a.retransmissions);
        // Histogram total equals TO count.
        prop_assert_eq!(a.to_histogram().iter().sum::<u64>(), a.to_count());
        // Loss rate is a proper fraction.
        prop_assert!((0.0..=1.0).contains(&a.loss_rate()));
        // Indications are time-ordered.
        prop_assert!(a.indications.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
    }

    #[test]
    //= pftk#linux-dupthresh type=test
    //= pftk#td-to-classify type=test
    fn stricter_threshold_never_increases_td_count(trace in trace_strategy()) {
        // Raising the dupack threshold can only turn TDs into TOs.
        let td2 = analyze(&trace, AnalyzerConfig { dupack_threshold: 2 }).td_count();
        let td3 = analyze(&trace, AnalyzerConfig { dupack_threshold: 3 }).td_count();
        let td4 = analyze(&trace, AnalyzerConfig { dupack_threshold: 4 }).td_count();
        prop_assert!(td3 <= td2);
        prop_assert!(td4 <= td3);
    }

    // --- lenient-import robustness under seeded input mutation ---------
    // The three classic capture corruptions: bytes vanishing (truncation,
    // bit rot), whole lines duplicated (replayed pipe blocks), and
    // neighbouring lines swapped (reordered writes). The lenient importer
    // must never panic or hard-error, and whatever it salvages must be
    // monotone and analyzable.

    #[test]
    fn lenient_import_survives_byte_deletion(
        trace in trace_strategy(),
        deletions in prop::collection::vec(0usize..1_000_000, 1..10),
    ) {
        let mut buf = Vec::new();
        export_text(&trace, &mut buf).unwrap();
        for idx in deletions {
            if !buf.is_empty() {
                buf.remove(idx % buf.len());
            }
        }
        let imported = import_text(std::io::Cursor::new(buf)).unwrap();
        prop_assert!(is_monotone(&imported.trace));
        // Whatever survived must be analyzable without panicking.
        let _ = analyze(&imported.trace, AnalyzerConfig::default());
    }

    #[test]
    fn lenient_import_survives_line_duplication(
        trace in trace_strategy(),
        dups in prop::collection::vec(0usize..1_000_000, 1..6),
    ) {
        let mut buf = Vec::new();
        export_text(&trace, &mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        for idx in dups {
            if !lines.is_empty() {
                let i = idx % lines.len();
                lines.insert(i, lines[i].clone());
            }
        }
        let mutated = lines.join("\n");
        let imported = import_text(std::io::Cursor::new(mutated)).unwrap();
        prop_assert!(is_monotone(&imported.trace));
        // Exact consecutive duplicates are discarded, never added: the
        // salvaged trace is no longer than the original.
        prop_assert!(imported.trace.len() <= trace.len());
        let _ = analyze(&imported.trace, AnalyzerConfig::default());
    }

    #[test]
    fn lenient_import_survives_timestamp_swaps(
        trace in trace_strategy(),
        swaps in prop::collection::vec(0usize..1_000_000, 1..6),
    ) {
        let mut buf = Vec::new();
        export_text(&trace, &mut buf).unwrap();
        let mut lines: Vec<String> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect();
        for idx in swaps {
            if lines.len() >= 2 {
                let i = idx % (lines.len() - 1);
                lines.swap(i, i + 1);
            }
        }
        let mutated = lines.join("\n");
        let imported = import_text(std::io::Cursor::new(mutated)).unwrap();
        // Swapped neighbours arrive out of order; clamping must restore
        // monotonicity without losing events.
        prop_assert!(is_monotone(&imported.trace));
        prop_assert_eq!(
            imported.health.salvaged + imported.health.discarded,
            trace.len()
        );
        let _ = analyze(&imported.trace, AnalyzerConfig::default());
    }
}
