//! `pftk-audit` — paper-conformance auditor and lint gate for the PFTK
//! workspace.
//!
//! The auditor makes the link between the reproduced paper (Padhye,
//! Firoiu, Towsley, Kurose, SIGCOMM 1998) and the code checkable by
//! machine. Every `.rs` file in the workspace is lexed **once** into a
//! [`lexer::SourceModel`] (a hand-rolled Rust token stream that knows
//! about strings, raw strings, nested block comments, and `#[cfg(test)]`
//! regions), and four passes share that model:
//!
//! 1. **Conformance** ([`conformance`]): parses the claim registry at
//!    `specs/pftk-spec.toml` (see [`spec`]) and collects `//= pftk#<id>`
//!    citation comments (see [`scanner`]). Every `MUST`-level claim needs
//!    at least one implementation citation and one `type=test` citation;
//!    citations of unknown or retired claims — or impl citations inside
//!    test code — are errors.
//! 2. **Lint** ([`lint`]): flags `unwrap()` / `expect(` / `panic!` in
//!    non-test library code, lossy `as` numeric casts in the `pftk-model`
//!    and `tcp-sim` hot paths, and NaN-hazard `==` / `!=` comparisons on
//!    floats.
//! 3. **Nondeterminism** ([`nondet`]): wall-clock reads, unordered
//!    `HashMap`/`HashSet` containers in result paths, and raw RNG
//!    construction outside `sim::rng`'s seeded-stream API.
//! 4. **Atomics** ([`atomics`]): classifies every atomic access and
//!    flags `Ordering::Relaxed` on synchronization-bearing operations.
//! 5. **Hot paths** ([`hotpath`]): an interprocedural capability
//!    analysis over a [`parser`]-recovered item model and a conservative
//!    [`callgraph`], proving the `[[hotpath]]` roots in the spec free of
//!    reachable allocation (`hot_alloc`), panics (`hot_panic`), and
//!    blocking operations (`hot_block`) — with full call-chain evidence.
//! 6. **Unit escapes** ([`unitlint`]): arithmetic mixing two different
//!    `#[must_use]` unit newtypes, or stripping one via `.0`, inside
//!    `crates/model` / `crates/sim`.
//! 7. **Numeric domains** ([`numlint`]): an interprocedural abstract
//!    interpreter over the [`domain`] interval lattice, seeded from
//!    `[[domain]]` declarations in the spec, proving the model kernels
//!    total (no zero denominators, NaN sources, or silent non-finite
//!    returns) over their declared input domains — with call-chain
//!    evidence (`div_domain`, `nan_source`, `inf_escape`,
//!    `cancel_risk`, `stale_domain`).
//!
//! Deliberate sites are whitelisted with a justified `//~ allow(<rule>)`
//! comment; whole subtrees with a `[[policy]]` entry in the spec. The
//! dynamic complement of the static passes is the replay-equivalence
//! gate (`tests/replay_equivalence.rs`), which re-runs a pinned-seed
//! campaign across worker counts and asserts bit-identical output.
//!
//! The binary prints a human summary and writes `results/conformance.json`
//! ([`report`]); the library API ([`run_audit`]) backs the tier-1 gate
//! test `tests/conformance_gate.rs`, so a regression fails plain
//! `cargo test`.

#![deny(missing_docs)]

pub mod atomics;
pub mod callgraph;
pub mod conformance;
pub mod domain;
pub mod hotpath;
pub mod lexer;
pub mod lint;
pub mod nondet;
pub mod numlint;
pub mod parser;
pub mod report;
pub mod scanner;
pub mod spec;
pub mod unitlint;

use std::collections::BTreeMap;

use std::path::{Path, PathBuf};

/// Everything the audit produced, ready for reporting or gating.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Coverage and citation-validity results from the conformance pass.
    pub conformance: conformance::ConformanceReport,
    /// Violations from every lint family — classic, nondeterminism, and
    /// atomics — with whitelisted sites excluded.
    pub lint: Vec<lint::LintViolation>,
    /// Every classified atomic access in the workspace, violations or not.
    pub atomics: Vec<atomics::AtomicSite>,
    /// The `[[policy]]` exemptions that were in force, echoed for the
    /// report so exemption scope is reviewable alongside findings.
    pub policies: Vec<spec::LintPolicy>,
    /// Per-root reachability summaries from the hot-path analysis, in
    /// registry order.
    pub hotpaths: Vec<hotpath::RootSummary>,
    /// Per-root propagation summaries from the numeric-domain analysis,
    /// in registry order.
    pub domains: Vec<numlint::DomainSummary>,
    /// Wall-clock milliseconds per pass group, plus `"total"`. Keys:
    /// `scanner` (walk + lex + conformance scan), `detlint` (intra-file
    /// lints: classic, nondet, atomics), `hotlint` (call graph +
    /// hot-path + unit escapes), `numlint` (domain propagation).
    pub timings_ms: BTreeMap<&'static str, u64>,
}

impl AuditOutcome {
    /// Whether the audit gate passes: no uncovered MUST claim, no
    /// unknown / stale / duplicate / impl-in-test citation, no lint
    /// violation in any family, and every `[[hotpath]]` / `[[domain]]`
    /// root resolving to at least one function (a stale root would
    /// silently un-guard its subtree).
    pub fn is_clean(&self) -> bool {
        self.conformance.is_clean()
            && self.lint.is_empty()
            && self.hotpaths.iter().all(|r| r.resolved > 0)
            && self.domains.iter().all(|r| r.resolved > 0)
    }

    /// Violation counts per rule, including zero entries for every known
    /// rule so the per-rule breakdown is stable across runs.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for rule in lint::RULES {
            counts.insert(rule, 0);
        }
        counts.insert("unjustified-allow", 0);
        for v in &self.lint {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        counts
    }
}

/// Walks `root` for workspace `.rs` sources and returns them sorted.
///
/// Scans `crates/*/src`, `crates/*/tests`, the root `src/` and `tests/`
/// directories, and `examples/`. The vendored dependency stand-ins under
/// `vendor/`, build output under `target/`, and golden-fixture corpora
/// under any `fixtures/` directory (deliberately seeded bugs for the
/// audit's own self-tests) are never audited.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src"), root.join("tests"), root.join("examples")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                roots.push(dir.join("src"));
                roots.push(dir.join("tests"));
                roots.push(dir.join("benches"));
                roots.push(dir.join("examples"));
            }
        }
    }
    for sub in roots {
        collect_rs(&sub, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs both audit passes over the workspace rooted at `root`.
///
/// `root` must contain `specs/pftk-spec.toml`. Errors are I/O or spec
/// parse failures; audit *findings* are data in the returned outcome,
/// not errors.
pub fn run_audit(root: &Path) -> Result<AuditOutcome, String> {
    let t_start = std::time::Instant::now();
    let mut timings_ms: BTreeMap<&'static str, u64> = BTreeMap::new();
    let spec_path = root.join("specs/pftk-spec.toml");
    let spec_text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let registry =
        spec::parse_spec(&spec_text).map_err(|e| format!("{}: {e}", spec_path.display()))?;

    let files = workspace_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    let mut citations = Vec::new();
    let mut lint_violations = Vec::new();
    let mut atomic_sites = Vec::new();
    // Inputs for the interprocedural passes, collected during the same
    // walk: parsed items for library files, allows + text for all.
    let mut parsed_lib: Vec<(PathBuf, parser::ParsedFile)> = Vec::new();
    let mut file_texts: BTreeMap<PathBuf, (String, lint::Allows)> = BTreeMap::new();
    let mut scanner_t = std::time::Duration::ZERO;
    let mut detlint_t = std::time::Duration::ZERO;
    for path in &files {
        let t0 = std::time::Instant::now();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        // One lex per file; every pass reads the same token stream.
        let model = lexer::SourceModel::parse(&text);
        citations.extend(scanner::scan_citations(&rel, &model));
        scanner_t += t0.elapsed();
        let t1 = std::time::Instant::now();
        lint_violations.extend(lint::lint_file(&rel, &text, &model, &registry.policies));
        lint_violations.extend(nondet::lint_nondet(&rel, &text, &model, &registry.policies));
        let (sites, violations) = atomics::audit_atomics(&rel, &text, &model, &registry.policies);
        atomic_sites.extend(sites);
        lint_violations.extend(violations);
        detlint_t += t1.elapsed();
        // The auditor itself stays out of the call graph: no hot root
        // lives here, and its lexer/parser share method names with the
        // sim (`peek`, `key`, …) that union resolution would otherwise
        // pull into hot chains as pure noise.
        if lint::is_library_code(&rel) && !rel.starts_with("crates/audit") {
            parsed_lib.push((rel.clone(), parser::parse_file(&model)));
            file_texts.insert(rel, (text, lint::Allows::from_model(&model)));
        }
    }

    timings_ms.insert("scanner", scanner_t.as_millis() as u64);
    timings_ms.insert("detlint", detlint_t.as_millis() as u64);

    // Interprocedural passes: hot-path capabilities and unit escapes
    // over the parsed item model.
    let t_hot = std::time::Instant::now();
    let graph = callgraph::CallGraph::build(&parsed_lib);
    let file_ctxs: BTreeMap<PathBuf, hotpath::FileCtx<'_>> = file_texts
        .iter()
        .map(|(p, (text, allows))| (p.clone(), hotpath::FileCtx { text, allows }))
        .collect();
    let analysis = hotpath::analyze(&graph, &registry.hotpaths, &registry.policies, &file_ctxs);
    lint_violations.extend(analysis.findings);
    let units = unitlint::unit_names(&parsed_lib);
    for (rel, parsed) in &parsed_lib {
        let (text, allows) = &file_texts[rel];
        lint_violations.extend(unitlint::lint_units(
            rel,
            text,
            parsed,
            &units,
            allows,
            &registry.policies,
        ));
    }
    timings_ms.insert("hotlint", t_hot.elapsed().as_millis() as u64);

    // Numeric-domain propagation over the same parsed item model.
    let t_num = std::time::Instant::now();
    let domains = numlint::analyze(
        &parsed_lib,
        &registry.domains,
        &registry.policies,
        &file_ctxs,
    );
    lint_violations.extend(domains.findings);
    timings_ms.insert("numlint", t_num.elapsed().as_millis() as u64);

    // Deterministic finding order: conformance.json must be byte-stable
    // across platforms and directory-walk orders.
    lint_violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule)
            .cmp(&(&b.file, b.line, b.rule))
            .then_with(|| a.chain.cmp(&b.chain))
    });
    atomic_sites.sort_by(|a, b| (&a.file, a.line, &a.method).cmp(&(&b.file, b.line, &b.method)));

    let conformance = conformance::check(&registry, &citations);
    timings_ms.insert("total", t_start.elapsed().as_millis() as u64);
    Ok(AuditOutcome {
        conformance,
        lint: lint_violations,
        atomics: atomic_sites,
        policies: registry.policies.clone(),
        hotpaths: analysis.roots,
        domains: domains.roots,
        timings_ms,
    })
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing `specs/pftk-spec.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("specs/pftk-spec.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
