//! `pftk-audit` — paper-conformance auditor and lint gate for the PFTK
//! workspace.
//!
//! The auditor makes the link between the reproduced paper (Padhye,
//! Firoiu, Towsley, Kurose, SIGCOMM 1998) and the code checkable by
//! machine. It runs two passes over every `.rs` file in the workspace:
//!
//! 1. **Conformance** ([`conformance`]): parses the claim registry at
//!    `specs/pftk-spec.toml` (see [`spec`]) and collects `//= pftk#<id>`
//!    citation comments (see [`scanner`]). Every `MUST`-level claim needs
//!    at least one implementation citation and one `type=test` citation;
//!    citations of unknown or retired claims are errors.
//! 2. **Lint** ([`lint`]): flags `unwrap()` / `expect(` / `panic!` in
//!    non-test library code, lossy `as` numeric casts in the `pftk-model`
//!    and `tcp-sim` hot paths, and NaN-hazard `==` / `!=` comparisons on
//!    floats. Deliberate sites are whitelisted with `//~ allow(<rule>)`.
//!
//! The binary prints a human summary and writes `results/conformance.json`
//! ([`report`]); the library API ([`run_audit`]) backs the tier-1 gate
//! test `tests/conformance_gate.rs`, so a regression fails plain
//! `cargo test`.

#![deny(missing_docs)]

pub mod conformance;
pub mod lint;
pub mod report;
pub mod scanner;
pub mod spec;

use std::path::{Path, PathBuf};

/// Everything the audit produced, ready for reporting or gating.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Coverage and citation-validity results from the conformance pass.
    pub conformance: conformance::ConformanceReport,
    /// Violations from the lint pass (whitelisted sites excluded).
    pub lint: Vec<lint::LintViolation>,
}

impl AuditOutcome {
    /// Whether the audit gate passes: no uncovered MUST claim, no
    /// unknown / stale / duplicate citation, no lint violation.
    pub fn is_clean(&self) -> bool {
        self.conformance.is_clean() && self.lint.is_empty()
    }
}

/// Walks `root` for workspace `.rs` sources and returns them sorted.
///
/// Scans `crates/*/src`, `crates/*/tests`, the root `src/` and `tests/`
/// directories, and `examples/`. The vendored dependency stand-ins under
/// `vendor/` and build output under `target/` are never audited.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src"), root.join("tests"), root.join("examples")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                roots.push(dir.join("src"));
                roots.push(dir.join("tests"));
                roots.push(dir.join("benches"));
                roots.push(dir.join("examples"));
            }
        }
    }
    for sub in roots {
        collect_rs(&sub, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs both audit passes over the workspace rooted at `root`.
///
/// `root` must contain `specs/pftk-spec.toml`. Errors are I/O or spec
/// parse failures; audit *findings* are data in the returned outcome,
/// not errors.
pub fn run_audit(root: &Path) -> Result<AuditOutcome, String> {
    let spec_path = root.join("specs/pftk-spec.toml");
    let spec_text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let registry =
        spec::parse_spec(&spec_text).map_err(|e| format!("{}: {e}", spec_path.display()))?;

    let files = workspace_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    let mut citations = Vec::new();
    let mut lint_violations = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        citations.extend(scanner::scan_citations(&rel, &text));
        lint_violations.extend(lint::lint_file(&rel, &text));
    }

    let conformance = conformance::check(&registry, &citations);
    Ok(AuditOutcome {
        conformance,
        lint: lint_violations,
    })
}

/// Locates the workspace root by walking up from `start` until a
/// directory containing `specs/pftk-spec.toml` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("specs/pftk-spec.toml").is_file() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}
