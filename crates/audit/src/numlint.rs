//! Numeric-domain analysis: interprocedural value-range propagation
//! proving the model kernels total over their spec-declared domains.
//!
//! The PFTK closed forms divide by `p`, `1 − p`, `1 − (1−p)^w` and
//! friends; whether those denominators can reach zero (or a `sqrt` can
//! go negative, or a quotient can overflow to `inf`) depends entirely
//! on the *input domain* — which the paper states in prose (§II: `p ∈
//! (0, 1]`, RTT and `T0` positive, `b ≥ 1`, `W_m ≥ 1`) and the code
//! encodes only partially in newtype validators. This pass closes that
//! gap: `[[domain]]` entries in `specs/pftk-spec.toml` declare input
//! intervals per kernel root, and an abstract interpreter over the
//! [`crate::domain`] lattice pushes those intervals through the
//! [`crate::parser`] item model, function call by function call,
//! reporting every arithmetic site whose abstract result admits a
//! hazard. Rules:
//!
//! * `div_domain` — a denominator's interval contains an attainable 0;
//! * `nan_source` — an operation can produce NaN from non-NaN inputs
//!   (`sqrt`/`ln` out of domain, `0 ÷ 0`, `∞ − ∞`, `0 × ∞`, `∞ ÷ ∞`);
//! * `inf_escape` — a *root* function may return a non-finite value yet
//!   does not return `Result` (no typed error path). Reported only when
//!   no other hazard already explains the non-finiteness — it is the
//!   "silent overflow" rule, not an echo of a `div_domain` upstream;
//! * `cancel_risk` — a division whose denominator is a subtraction of
//!   same-signed overlapping quantities (catastrophic cancellation:
//!   the floating-point difference passes arbitrarily close to zero
//!   even when its real-valued infimum does not);
//! * `stale_domain` — a `[[domain]]` root that resolves to no function,
//!   or a declared parameter key that binds neither a parameter nor a
//!   field of a parameter's struct type (registry drift).
//!
//! The analysis is an evidence-based *under*-approximating bug finder:
//! [`crate::domain::Val::Unknown`] is assumed safe, so every finding is
//! grounded in a declared interval, with the root-to-site call chain as
//! evidence (same shape as [`crate::hotpath`]). Soundness limits — no
//! directed rounding for interior values, branch guards not refined,
//! loops walked once, `self.method()` calls opaque — are documented in
//! `DESIGN.md` §15; the dynamic `domain_sweep` test is the cross-check.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

use crate::domain::{Range, Val};
use crate::hotpath::FileCtx;
use crate::lexer::{Token, TokenKind};
use crate::lint::{policy_exempts, rule_in_scope, snippet_at, LintViolation};
use crate::parser::{FnItem, ParsedFile};
use crate::spec::{DomainSpec, LintPolicy};

/// Per-root summary for the report, mirroring
/// [`crate::hotpath::RootSummary`].
#[derive(Debug, Clone)]
pub struct DomainSummary {
    /// The registry key (`Type::method` or plain `fn` name).
    pub root: String,
    /// Why this domain holds (from the registry).
    pub reason: String,
    /// How many functions the key resolved to (0 = stale entry).
    pub resolved: usize,
    /// How many functions the interval propagation reached (inclusive).
    pub reached: usize,
}

/// Result of the numeric-domain analysis.
#[derive(Debug)]
pub struct NumlintAnalysis {
    /// One summary per `[[domain]]` entry, in registry order.
    pub roots: Vec<DomainSummary>,
    /// Unjustified findings (allow/policy-filtered like every family).
    pub findings: Vec<LintViolation>,
}

/// `(file index, fn index)` into the parsed workspace.
type FnId = (usize, usize);

/// Abstract environment: named values plus the set of names whose value
/// derives from a near-cancelling subtraction (`cancel_risk` taint).
#[derive(Debug, Clone, Default)]
struct Env {
    vals: BTreeMap<String, Val>,
    cancel: BTreeSet<String>,
}

impl Env {
    fn get(&self, name: &str) -> Val {
        self.vals.get(name).copied().unwrap_or(Val::Unknown)
    }

    /// Hulls a conditionally-executed branch environment back into this
    /// one: every binding this env already holds widens to cover the
    /// branch's view of it (a branch that never ran leaves it alone, so
    /// the join over {skip, run-once} is exactly the hull), and
    /// cancellation taint the branch put on those names sticks.
    fn merge_from(&mut self, branch: &Env) {
        for (name, v) in &mut self.vals {
            let bv = branch.vals.get(name).copied().unwrap_or(Val::Unknown);
            *v = join(&[*v, bv]);
        }
        for name in &branch.cancel {
            if self.vals.contains_key(name) {
                self.cancel.insert(name.clone());
            }
        }
    }
}

/// Indexed view of the parsed library files.
struct Ws<'a> {
    files: &'a [(PathBuf, ParsedFile)],
    /// `FnItem::key()` → every defining location (bodyless and test fns
    /// excluded — there is nothing to interpret in either).
    by_key: BTreeMap<String, Vec<FnId>>,
    /// Struct name → field names, for domain-key binding and for
    /// passing a struct argument's bound fields into a callee.
    struct_fields: BTreeMap<String, Vec<String>>,
}

impl<'a> Ws<'a> {
    fn build(files: &'a [(PathBuf, ParsedFile)]) -> Ws<'a> {
        let mut by_key: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut struct_fields: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (fi, (_, parsed)) in files.iter().enumerate() {
            for (ni, f) in parsed.fns.iter().enumerate() {
                if f.in_test || f.body.is_none() {
                    continue;
                }
                by_key.entry(f.key()).or_default().push((fi, ni));
            }
            for s in &parsed.structs {
                struct_fields
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.fields.iter().map(|fld| fld.name.clone()));
            }
        }
        Ws {
            files,
            by_key,
            struct_fields,
        }
    }

    fn fn_item(&self, id: FnId) -> &'a FnItem {
        &self.files[id.0].1.fns[id.1]
    }
}

/// One raw finding, before chain assembly and suppression filtering.
struct Raw {
    rule: &'static str,
    /// File index, or [`usize::MAX`] for spec-anchored (`stale_domain`).
    file: usize,
    line: usize,
    what: String,
}

/// Recursion budget for pure callee-return evaluation.
const MAX_DEPTH: usize = 12;

/// Token-slice cursor for the expression evaluator.
struct Cur<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Cur<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.i)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.i + off)
    }

    fn bump(&mut self) {
        self.i += 1;
    }
}

fn is_punct(t: &Token, p: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == p
}

fn is_ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

/// Index just past the group opened at `toks[open]` (any bracket kind).
fn group_end(toks: &[Token], open: usize) -> usize {
    let mut nest = 0i64;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => {
                    nest -= 1;
                    if nest == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Splits `toks` (a group *interior*) at top-level commas.
fn split_commas(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut pieces = Vec::new();
    let mut nest = 0i64;
    let mut start = 0usize;
    for (j, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => nest -= 1,
                "," if nest == 0 => {
                    if j > start {
                        pieces.push((start, j));
                    }
                    start = j + 1;
                }
                _ => {}
            }
        }
    }
    if toks.len() > start {
        pieces.push((start, toks.len()));
    }
    pieces
}

/// Parses a numeric literal's text (`3.0`, `1e-12`, `10_000u64`) as
/// f64. Radix-prefixed literals are out of scope (never domain math).
fn parse_literal(text: &str) -> Option<f64> {
    let mut t: String = text.chars().filter(|&c| c != '_').collect();
    if t.starts_with("0x") || t.starts_with("0o") || t.starts_with("0b") {
        return None;
    }
    for suf in [
        "f64", "f32", "u128", "u64", "u32", "u16", "u8", "usize", "i128", "i64", "i32", "i16",
        "i8", "isize",
    ] {
        if t.len() > suf.len() && t.ends_with(suf) {
            t.truncate(t.len() - suf.len());
            break;
        }
    }
    t.parse::<f64>().ok()
}

/// A literal `powi` exponent: `3` or `- 3` as a token slice.
fn literal_i32(toks: &[Token]) -> Option<i32> {
    match toks {
        [t] if t.kind == TokenKind::Int => parse_literal(&t.text).map(|x| x as i32),
        [m, t] if is_punct(m, "-") && t.kind == TokenKind::Int => {
            parse_literal(&t.text).map(|x| -(x as i32))
        }
        _ => None,
    }
}

/// Binds a `let`/arm pattern: a simple identifier (optionally `mut` /
/// `ref`, optionally `: Ty`-annotated) or a single `Ok(x)` / `Some(x)`
/// wrapper binds `v` (consistent with the constructor-unwrap evaluation
/// rule); tuple and struct patterns bind nothing.
fn bind_pattern(toks: &[Token], v: Val, cancel: bool, env: &mut Env) {
    let mut t = toks;
    while t
        .first()
        .is_some_and(|x| is_ident(x, "mut") || is_ident(x, "ref"))
    {
        t = &t[1..];
    }
    if let Some(colon) = t.iter().position(|x| is_punct(x, ":")) {
        t = &t[..colon];
    }
    if t.len() >= 3
        && t[0].kind == TokenKind::Ident
        && matches!(t[0].text.as_str(), "Ok" | "Some")
        && is_punct(&t[1], "(")
    {
        bind_pattern(&t[2..t.len() - 1], v, cancel, env);
        return;
    }
    if let Some(name) = single_ident(t) {
        if name == "_" {
            return;
        }
        env.vals.insert(name.to_string(), v);
        if cancel {
            env.cancel.insert(name.to_string());
        } else {
            env.cancel.remove(name);
        }
    }
}

/// Joins block/return values: all-known → hull, anything unknown →
/// unknown (assumed safe).
fn join(vals: &[Val]) -> Val {
    let mut acc: Option<Range> = None;
    for v in vals {
        match v.known() {
            Some(r) => {
                acc = Some(match acc {
                    Some(a) => a.hull(&r),
                    None => r,
                });
            }
            None => return Val::Unknown,
        }
    }
    acc.map_or(Val::Unknown, Val::Known)
}

/// Index of the `;` ending the statement starting at `i` (depth-0 over
/// all bracket kinds), or `toks.len()`.
fn stmt_end(toks: &[Token], i: usize) -> usize {
    let mut nest = 0i64;
    let mut j = i;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => nest -= 1,
                ";" if nest == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Index of the top-level assignment operator in `toks` (`=`, `+=`,
/// `-=`, `*=`, `/=`). Comparison operators are distinct multi-char
/// tokens, so a bare `=` is unambiguous.
fn find_assign_eq(toks: &[Token]) -> Option<usize> {
    let mut nest = 0i64;
    for (j, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => nest -= 1,
                "=" | "+=" | "-=" | "*=" | "/=" if nest == 0 => return Some(j),
                _ => {}
            }
        }
    }
    None
}

/// A branch body that opens with `return` never falls through, so the
/// code after the `if` is reachable only under the negated guard.
fn block_diverges(toks: &[Token]) -> bool {
    toks.first().is_some_and(|t| is_ident(t, "return"))
}

/// Splits `base` (the known range of a variable `x`) by the comparison
/// `x OP r`, returning the refined ranges for the true and the false
/// branch. Pure interval reasoning: `x < r` caps `x` at `r`'s upper
/// bound; its negation floors `x` at `r`'s lower bound. A comparison
/// that held also proves `x` is not NaN, while the false branch keeps
/// the NaN flag (comparisons against NaN are always false). A
/// refinement that would empty the range — a statically dead branch —
/// falls back to `base` so dead code stays conservatively analyzed.
fn refine_cmp(base: Range, op: &str, r: Range) -> (Range, Range) {
    let mut t = base;
    t.nan = false;
    let mut f = base;
    let (strict, lower_bounds_true) = match op {
        "<" => (true, false),
        "<=" => (false, false),
        ">" => (true, true),
        ">=" => (false, true),
        _ => return (t, f),
    };
    // (refined-side range, bound, open) for each branch: the true branch
    // of `x < r` tightens the hi end, its false branch (`x >= r`) the lo
    // end; `>`/`>=` mirror that.
    if lower_bounds_true {
        let t_open = strict || r.lo_open;
        if r.lo > t.lo || (r.lo == t.lo && t_open && !t.lo_open) {
            t.lo = r.lo;
            t.lo_open = t_open;
        }
        let f_open = !strict || r.hi_open;
        if r.hi < f.hi || (r.hi == f.hi && f_open && !f.hi_open) {
            f.hi = r.hi;
            f.hi_open = f_open;
        }
    } else {
        let t_open = strict || r.hi_open;
        if r.hi < t.hi || (r.hi == t.hi && t_open && !t.hi_open) {
            t.hi = r.hi;
            t.hi_open = t_open;
        }
        let f_open = !strict || r.lo_open;
        if r.lo > f.lo || (r.lo == f.lo && f_open && !f.lo_open) {
            f.lo = r.lo;
            f.lo_open = f_open;
        }
    }
    let empty = |x: &Range| x.lo > x.hi || (x.lo == x.hi && (x.lo_open || x.hi_open));
    if empty(&t) {
        t = base;
        t.nan = false;
    }
    if empty(&f) {
        f = base;
    }
    (t, f)
}

/// First `{` at paren/bracket depth 0 at or after `from` — the block
/// opener of an `if`/`match`/`while`/`for` header.
fn find_block_open(toks: &[Token], from: usize) -> usize {
    let mut nest = 0i64;
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => nest += 1,
                ")" | "]" => nest -= 1,
                "{" if nest == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Index just past a balanced `<…>` group starting at `open`.
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut angle = 0i64;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                "<<" => angle += 2,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                ";" => return j,
                _ => {}
            }
        }
        j += 1;
        if angle <= 0 {
            return j;
        }
    }
    j
}

/// Strips balanced outer paren layers.
fn strip_parens(mut toks: &[Token]) -> &[Token] {
    while toks.len() >= 2 && is_punct(&toks[0], "(") && group_end(toks, 0) == toks.len() {
        toks = &toks[1..toks.len() - 1];
    }
    toks
}

/// Strips leading `&` / `&mut` from an argument slice.
fn strip_ref(mut toks: &[Token]) -> &[Token] {
    while toks
        .first()
        .is_some_and(|t| is_punct(t, "&") || is_punct(t, "&&"))
    {
        toks = &toks[1..];
    }
    while toks.first().is_some_and(|t| is_ident(t, "mut")) {
        toks = &toks[1..];
    }
    toks
}

/// `Some(name)` when `toks` is exactly one identifier.
fn single_ident(toks: &[Token]) -> Option<&str> {
    match toks {
        [t] if t.kind == TokenKind::Ident => Some(&t.text),
        _ => None,
    }
}

/// The position of the *last* depth-0 binary `-` in `toks` (last gives
/// the outermost split under left associativity), or `None`.
fn top_level_binary_minus(toks: &[Token]) -> Option<usize> {
    let mut nest = 0i64;
    let mut found = None;
    for (j, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => nest += 1,
                ")" | "]" | "}" => nest -= 1,
                "-" if nest == 0 && j > 0 => {
                    // Binary iff the previous token can end an operand.
                    let prev = &toks[j - 1];
                    let binary = matches!(
                        prev.kind,
                        TokenKind::Ident | TokenKind::Int | TokenKind::Float
                    ) || is_punct(prev, ")")
                        || is_punct(prev, "]")
                        || is_punct(prev, "?");
                    if binary {
                        found = Some(j);
                    }
                }
                _ => {}
            }
        }
    }
    found
}

/// The interprocedural evaluator: walks function bodies under an
/// abstract [`Env`], emitting hazards (when `emit`) and recording
/// callee visits for the BFS driver.
struct Eval<'a> {
    ws: &'a Ws<'a>,
    /// File index of the function currently being *visited* (findings
    /// anchor here).
    file: usize,
    /// Current function's `param name → type head`, for struct-argument
    /// field pass-through.
    params: BTreeMap<String, String>,
    /// Whether hazards are reported. False during pure callee-return
    /// evaluation, so every finding anchors in a BFS-visited function.
    emit: bool,
    depth: usize,
    /// Keys of functions currently being return-evaluated (cycle guard).
    stack: Vec<String>,
    /// `return` expression values of the function being walked.
    rets: Vec<Val>,
    out: Vec<Raw>,
    calls: Vec<(FnId, Env)>,
}

impl<'a> Eval<'a> {
    fn new(ws: &'a Ws<'a>) -> Eval<'a> {
        Eval {
            ws,
            file: 0,
            params: BTreeMap::new(),
            emit: false,
            depth: MAX_DEPTH,
            stack: Vec::new(),
            rets: Vec::new(),
            out: Vec::new(),
            calls: Vec::new(),
        }
    }

    fn report(&mut self, rule: &'static str, line: usize, what: String) {
        if self.emit {
            self.out.push(Raw {
                rule,
                file: self.file,
                line,
                what,
            });
        }
    }

    /// Walks `id`'s body under `env`; returns the joined return value
    /// (trailing expression hulled with every `return`).
    fn eval_fn_body(&mut self, id: FnId, env: &mut Env) -> Val {
        let f = self.ws.fn_item(id);
        let Some((s, e)) = f.body else {
            return Val::Unknown;
        };
        let saved_file = std::mem::replace(&mut self.file, id.0);
        let saved_params = std::mem::replace(&mut self.params, f.params.iter().cloned().collect());
        let saved_rets = std::mem::take(&mut self.rets);
        let toks: &'a [Token] = &self.ws.files[id.0].1.toks[s..e];
        let last = self.walk_block(toks, env);
        let mut rets = std::mem::replace(&mut self.rets, saved_rets);
        self.params = saved_params;
        self.file = saved_file;
        rets.push(last);
        join(&rets)
    }

    /// Walks a statement sequence; returns the trailing expression's
    /// value (the block's value).
    fn walk_block(&mut self, toks: &'a [Token], env: &mut Env) -> Val {
        let mut i = 0usize;
        let mut last = Val::Unknown;
        while i < toks.len() {
            let t = &toks[i];
            if is_punct(t, ";") {
                last = Val::Unknown;
                i += 1;
                continue;
            }
            if is_punct(t, "{") {
                let end = group_end(toks, i);
                let mut inner = env.clone();
                last = self.walk_block(&toks[i + 1..end - 1], &mut inner);
                i = end;
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "let" => {
                        i = self.walk_let(toks, i, env);
                        last = Val::Unknown;
                        continue;
                    }
                    "if" => {
                        let (v, ni) = self.eval_if(toks, i, env);
                        last = v;
                        i = ni;
                        continue;
                    }
                    "match" => {
                        let (v, ni) = self.eval_match(toks, i, env);
                        last = v;
                        i = ni;
                        continue;
                    }
                    "while" | "for" | "loop" => {
                        i = self.walk_loop(toks, i, env);
                        last = Val::Unknown;
                        continue;
                    }
                    "return" => {
                        let end = stmt_end(toks, i);
                        let v = if end > i + 1 {
                            self.eval_expr(&toks[i + 1..end], env)
                        } else {
                            Val::Unknown
                        };
                        self.rets.push(v);
                        i = end + 1;
                        last = Val::Unknown;
                        continue;
                    }
                    _ => {}
                }
            }
            // Expression or assignment statement.
            let end = stmt_end(toks, i);
            last = self.walk_expr_stmt(&toks[i..end], env);
            if end < toks.len() {
                last = Val::Unknown; // `;`-terminated — not the block value
            }
            i = end + 1;
        }
        last
    }

    /// `let [mut] pat [: Ty] = expr ;` — binds simple patterns, always
    /// evaluates the initializer for hazards.
    fn walk_let(&mut self, toks: &'a [Token], i: usize, env: &mut Env) -> usize {
        let end = stmt_end(toks, i);
        let Some(eq) = find_assign_eq(&toks[i..end]).map(|k| i + k) else {
            return end + 1; // no initializer
        };
        let rhs = &toks[eq + 1..end];
        let v = self.eval_expr(rhs, env);
        let cancel = self.cancel_expr(rhs, env).is_some();
        bind_pattern(&toks[i + 1..eq], v, cancel, env);
        end + 1
    }

    /// An expression statement, handling top-level (re)assignment so
    /// `x = …;` and `x /= …;` update (and hazard-check) correctly.
    fn walk_expr_stmt(&mut self, toks: &'a [Token], env: &mut Env) -> Val {
        if let Some(eq) = find_assign_eq(toks) {
            let op = toks[eq].text.clone();
            let line = toks[eq].line;
            let rhs = &toks[eq + 1..];
            let rv = self.eval_expr(rhs, env);
            let lhs = &toks[..eq];
            let target = single_ident(lhs).map(str::to_string);
            let nv = if op == "=" {
                rv
            } else {
                // `x op= e` — run the hazard-checked binary transfer.
                let cur = match &target {
                    Some(name) => env.get(name),
                    None => self.eval_expr(lhs, env),
                };
                self.binop(&op[..1], cur, rv, rhs, env, line)
            };
            if let Some(name) = target {
                let cancel = op == "=" && self.cancel_expr(rhs, env).is_some();
                if cancel {
                    env.cancel.insert(name.clone());
                } else {
                    env.cancel.remove(&name);
                }
                env.vals.insert(name, nv);
            }
            return Val::Unknown;
        }
        self.eval_expr(toks, env)
    }

    /// Recognizes a `name OP expr` comparison guard (`OP` one of `<`,
    /// `<=`, `>`, `>=`) where `name` is bound to a known range and the
    /// right-hand side evaluates to one: returns the variable name plus
    /// its refined true-branch / false-branch ranges.
    fn cmp_guard(&mut self, toks: &'a [Token], env: &Env) -> Option<(String, Range, Range)> {
        if toks.len() < 3 || toks[0].kind != TokenKind::Ident || toks[1].kind != TokenKind::Punct {
            return None;
        }
        let op = toks[1].text.as_str();
        if !matches!(op, "<" | "<=" | ">" | ">=") {
            return None;
        }
        let base = env.get(&toks[0].text).known()?;
        let r = self.eval_expr(&toks[2..], env).known()?;
        let (t, f) = refine_cmp(base, op, r);
        Some((toks[0].text.clone(), t, f))
    }

    /// `if [let pat =] cond { … } [else if …] [else { … }]` — branches
    /// walk cloned environments, then hull back into the caller's; a
    /// recognized comparison guard refines the guarded variable in each
    /// branch (exactly, for the continuation, when the then branch
    /// diverges with `return` — the `if w <= 3.0 { return 1.0; }`
    /// idiom); the value is the hull of the branch values.
    fn eval_if(&mut self, toks: &'a [Token], i: usize, env: &mut Env) -> (Val, usize) {
        let mut j = i + 1;
        let mut pat: Option<(usize, usize)> = None;
        if toks.get(j).is_some_and(|t| is_ident(t, "let")) {
            let Some(eq) = find_assign_eq(&toks[j..]).map(|k| j + k) else {
                return (Val::Unknown, toks.len());
            };
            pat = Some((j + 1, eq));
            j = eq + 1;
        }
        let brace = find_block_open(toks, j);
        if brace >= toks.len() {
            return (Val::Unknown, toks.len());
        }
        let guard = if pat.is_none() {
            self.cmp_guard(&toks[j..brace], env)
        } else {
            None
        };
        let cond_val = self.eval_expr(&toks[j..brace], env);
        let end = group_end(toks, brace);
        let body = &toks[brace + 1..end - 1];
        let mut branch_env = env.clone();
        if let Some((name, t, _)) = &guard {
            branch_env.vals.insert(name.clone(), Val::Known(*t));
        }
        if let Some((ps, pe)) = pat {
            bind_pattern(&toks[ps..pe], cond_val, false, &mut branch_env);
        }
        let then_diverges = block_diverges(body);
        let mut vals = vec![self.walk_block(body, &mut branch_env)];
        // The continuation starts from the negated guard; when the then
        // branch falls through, merging it back below re-widens whatever
        // the hull over both paths actually covers.
        if let Some((name, _, f)) = &guard {
            env.vals.insert(name.clone(), Val::Known(*f));
        }
        let mut k = end;
        let mut has_else = false;
        if toks.get(k).is_some_and(|t| is_ident(t, "else")) {
            has_else = true;
            if toks.get(k + 1).is_some_and(|t| is_ident(t, "if")) {
                let (v, nk) = self.eval_if(toks, k + 1, env);
                vals.push(v);
                k = nk;
            } else if toks.get(k + 1).is_some_and(|t| is_punct(t, "{")) {
                let eend = group_end(toks, k + 1);
                let mut else_env = env.clone();
                let els = &toks[k + 2..eend - 1];
                vals.push(self.walk_block(els, &mut else_env));
                if !block_diverges(els) {
                    env.merge_from(&else_env);
                }
                k = eend;
            } else {
                k += 1;
            }
        }
        if !then_diverges {
            env.merge_from(&branch_env);
        }
        if !has_else {
            vals.push(Val::Unknown);
        }
        (join(&vals), k)
    }

    /// `match scrutinee { pat => body, … }` — arms walk cloned
    /// environments; `Some(x)` / `Ok(x)` patterns bind the scrutinee
    /// value (consistent with the constructor-unwrap evaluation rule).
    fn eval_match(&mut self, toks: &'a [Token], i: usize, env: &mut Env) -> (Val, usize) {
        let brace = find_block_open(toks, i + 1);
        if brace >= toks.len() {
            return (Val::Unknown, toks.len());
        }
        let scrut = self.eval_expr(&toks[i + 1..brace], env);
        let end = group_end(toks, brace);
        let body = &toks[brace + 1..end - 1];
        let mut vals = Vec::new();
        let mut nest = 0i64;
        let mut arm_start = 0usize;
        let mut j = 0usize;
        while j < body.len() {
            let t = &body[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => nest += 1,
                    ")" | "]" | "}" => nest -= 1,
                    "=>" if nest == 0 => {
                        let mut arm_env = env.clone();
                        bind_pattern(&body[arm_start..j], scrut, false, &mut arm_env);
                        // Arm body: a block, or an expression up to the
                        // arm-separating `,` at nest 0.
                        if body.get(j + 1).is_some_and(|t| is_punct(t, "{")) {
                            let bend = group_end(body, j + 1);
                            vals.push(self.walk_block(&body[j + 2..bend - 1], &mut arm_env));
                            j = bend;
                        } else {
                            let mut k = j + 1;
                            let mut n2 = 0i64;
                            while k < body.len() {
                                let u = &body[k];
                                if u.kind == TokenKind::Punct {
                                    match u.text.as_str() {
                                        "(" | "[" | "{" => n2 += 1,
                                        ")" | "]" | "}" => n2 -= 1,
                                        "," if n2 == 0 => break,
                                        _ => {}
                                    }
                                }
                                k += 1;
                            }
                            vals.push(self.eval_expr(&body[j + 1..k], &arm_env));
                            j = k;
                        }
                        arm_start = j + 1;
                        continue;
                    }
                    "," if nest == 0 => arm_start = j + 1,
                    _ => {}
                }
            }
            j += 1;
        }
        if vals.is_empty() {
            vals.push(Val::Unknown);
        }
        (join(&vals), end)
    }

    /// `while` / `for` / `loop` — the body is walked **once** over a
    /// cloned environment (no fixpoint; DESIGN.md §15).
    fn walk_loop(&mut self, toks: &'a [Token], i: usize, env: &mut Env) -> usize {
        let kw = toks[i].text.as_str();
        let mut j = i + 1;
        let mut loop_env = env.clone();
        if kw == "for" {
            // `for pat in expr { … }`
            let mut k = j;
            while k < toks.len() && !is_ident(&toks[k], "in") {
                k += 1;
            }
            if k >= toks.len() {
                return toks.len();
            }
            let brace = find_block_open(toks, k + 1);
            if brace >= toks.len() {
                return toks.len();
            }
            self.eval_expr(&toks[k + 1..brace], env);
            bind_pattern(&toks[j..k], Val::Unknown, false, &mut loop_env);
            j = brace;
        } else if kw == "while" {
            let brace = find_block_open(toks, j);
            if brace >= toks.len() {
                return toks.len();
            }
            if toks.get(j).is_some_and(|t| is_ident(t, "let")) {
                if let Some(eq) = find_assign_eq(&toks[j..brace]).map(|k| j + k) {
                    let v = self.eval_expr(&toks[eq + 1..brace], env);
                    bind_pattern(&toks[j + 1..eq], v, false, &mut loop_env);
                }
            } else {
                self.eval_expr(&toks[j..brace], env);
            }
            j = brace;
        } else {
            j = find_block_open(toks, j);
        }
        if !toks.get(j).is_some_and(|t| is_punct(t, "{")) {
            return toks.len();
        }
        let end = group_end(toks, j);
        self.walk_block(&toks[j + 1..end - 1], &mut loop_env);
        // Single-unroll widening: a binding mutated by the (possibly
        // skipped, possibly repeated) body hulls to cover both the
        // zero-iteration and the after-one-iteration view — `x += dt`
        // accumulators correctly lose their initializer's point range.
        env.merge_from(&loop_env);
        end
    }

    /// Evaluates one expression token slice.
    fn eval_expr(&mut self, toks: &'a [Token], env: &Env) -> Val {
        if toks.is_empty() {
            return Val::Unknown;
        }
        let mut c = Cur { toks, i: 0 };
        self.expr_bp(&mut c, env, 0)
    }

    fn expr_bp(&mut self, c: &mut Cur<'a>, env: &Env, min_bp: u8) -> Val {
        let mut lhs = self.unary(c, env);
        while let Some(t) = c.peek() {
            if t.kind == TokenKind::Ident && t.text == "as" {
                // Casts bind tightest: value-preserving to f64, opaque
                // otherwise (integer truncation is the cast lint's job).
                c.bump();
                let mut to_f64 = false;
                while let Some(u) = c.peek() {
                    if u.kind == TokenKind::Ident {
                        to_f64 = u.text == "f64";
                        c.bump();
                    } else if is_punct(u, "::") {
                        c.bump();
                    } else {
                        break;
                    }
                }
                if !to_f64 {
                    lhs = Val::Unknown;
                }
                continue;
            }
            if t.kind != TokenKind::Punct {
                break;
            }
            let (op, bp): (&str, u8) = match t.text.as_str() {
                "||" | "&&" => ("bool", 1),
                "==" | "!=" | "<" | ">" | "<=" | ">=" => ("cmp", 2),
                ".." | "..=" => ("range", 2),
                "+" => ("+", 3),
                "-" => ("-", 3),
                "*" => ("*", 4),
                "/" => ("/", 4),
                "%" => ("%", 4),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            let line = t.line;
            c.bump();
            let rstart = c.i;
            let rhs = self.expr_bp(c, env, bp + 1);
            let rtoks = &c.toks[rstart..c.i];
            lhs = self.binop(op, lhs, rhs, rtoks, env, line);
        }
        lhs
    }

    /// Binary transfer with hazard emission. `rtoks` is the right
    /// operand's token slice (for the `cancel_risk` syntactic check).
    /// Rule precedence at `/`: `cancel_risk` > `nan_source` (0 ÷ 0) >
    /// `div_domain` > `nan_source` (∞ ÷ ∞).
    fn binop(
        &mut self,
        op: &str,
        l: Val,
        r: Val,
        rtoks: &'a [Token],
        env: &Env,
        line: usize,
    ) -> Val {
        match op {
            "/" => {
                if let Some(msg) = self.cancel_expr(rtoks, env) {
                    self.report("cancel_risk", line, msg);
                } else if let Some(rr) = r.known() {
                    if rr.contains_zero() {
                        if l.known().is_some_and(|lr| lr.contains_zero()) {
                            self.report(
                                "nan_source",
                                line,
                                format!("0 / 0 possible: denominator {rr}"),
                            );
                        } else {
                            self.report(
                                "div_domain",
                                line,
                                format!("denominator may be zero: {rr}"),
                            );
                        }
                    }
                }
                let (Some(lr), Some(rr)) = (l.known(), r.known()) else {
                    return Val::Unknown;
                };
                let res = lr.div(&rr);
                if res.nan && !lr.nan && !rr.nan && !rr.contains_zero() {
                    self.report(
                        "nan_source",
                        line,
                        format!("inf / inf possible: {lr} / {rr}"),
                    );
                }
                Val::Known(res)
            }
            "+" | "-" | "*" => {
                let (Some(lr), Some(rr)) = (l.known(), r.known()) else {
                    return Val::Unknown;
                };
                let res = match op {
                    "+" => lr.add(&rr),
                    "-" => lr.sub(&rr),
                    _ => lr.mul(&rr),
                };
                if res.nan && !lr.nan && !rr.nan {
                    let form = if op == "*" { "0 * inf" } else { "inf - inf" };
                    self.report(
                        "nan_source",
                        line,
                        format!("{form} possible: {lr} {op} {rr}"),
                    );
                }
                Val::Known(res)
            }
            _ => Val::Unknown,
        }
    }

    /// Whether `toks` is a near-cancelling subtraction: `a − b` with
    /// both sides in a known interval, same sign, and overlapping — so
    /// the floating-point difference passes near zero. Also true for a
    /// lone identifier carrying the taint from its initializer. Returns
    /// the evidence message.
    fn cancel_expr(&mut self, toks: &'a [Token], env: &Env) -> Option<String> {
        let toks = strip_parens(toks);
        if let Some(name) = single_ident(toks) {
            if env.cancel.contains(name) {
                return Some(format!(
                    "`{name}` derives from a near-cancelling subtraction"
                ));
            }
            return None;
        }
        let minus = top_level_binary_minus(toks)?;
        let saved = std::mem::replace(&mut self.emit, false);
        let a = self.eval_expr(&toks[..minus], env);
        let b = self.eval_expr(&toks[minus + 1..], env);
        self.emit = saved;
        let (ar, br) = (a.known()?, b.known()?);
        let same_sign = (ar.lo >= 0.0 && br.lo >= 0.0) || (ar.hi <= 0.0 && br.hi <= 0.0);
        if same_sign && ar.overlaps(&br) {
            return Some(format!(
                "denominator is a near-cancelling subtraction: {ar} - {br}"
            ));
        }
        None
    }

    fn unary(&mut self, c: &mut Cur<'a>, env: &Env) -> Val {
        let Some(t) = c.peek() else {
            return Val::Unknown;
        };
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "-" => {
                    c.bump();
                    let v = self.unary(c, env);
                    return match v.known() {
                        Some(r) => Val::Known(r.neg()),
                        None => Val::Unknown,
                    };
                }
                "!" => {
                    c.bump();
                    self.unary(c, env);
                    return Val::Unknown;
                }
                "&" | "&&" | "*" => {
                    // References and derefs are value-transparent here.
                    c.bump();
                    return self.unary(c, env);
                }
                _ => {}
            }
        }
        self.postfix(c, env)
    }

    fn postfix(&mut self, c: &mut Cur<'a>, env: &Env) -> Val {
        let mut v = self.atom(c, env);
        while let Some(t) = c.peek() {
            if is_punct(t, "?") {
                c.bump(); // error propagation is value-transparent
                continue;
            }
            if is_punct(t, "[") {
                let end = group_end(c.toks, c.i);
                self.eval_expr(&c.toks[c.i + 1..end - 1], env);
                c.i = end;
                v = Val::Unknown;
                continue;
            }
            if is_punct(t, ".") {
                let Some(n) = c.peek_at(1) else { break };
                if n.kind == TokenKind::Int {
                    c.bump();
                    c.bump();
                    v = Val::Unknown; // tuple index
                    continue;
                }
                if n.kind != TokenKind::Ident {
                    break;
                }
                let name = n.text.clone();
                let line = n.line;
                if c.peek_at(2).is_some_and(|u| is_punct(u, "(")) {
                    c.bump();
                    c.bump();
                    let (args, arg_toks) = self.call_args(c, env);
                    v = self.method(v, &name, &args, &arg_toks, line);
                } else {
                    // Field access: the field *name* resolves through
                    // the domain bindings (`params.rtt`, `self.wmax`);
                    // unbound names are opaque.
                    c.bump();
                    c.bump();
                    v = env.get(&name);
                }
                continue;
            }
            break;
        }
        v
    }

    /// Parses a call's `( … )` argument group (cursor on the `(`);
    /// returns each argument's value and token slice.
    #[allow(clippy::type_complexity)]
    fn call_args(&mut self, c: &mut Cur<'a>, env: &Env) -> (Vec<Val>, Vec<&'a [Token]>) {
        let end = group_end(c.toks, c.i);
        let inner = &c.toks[c.i + 1..end - 1];
        let mut vals = Vec::new();
        let mut slices = Vec::new();
        for (s, e) in split_commas(inner) {
            vals.push(self.eval_expr(&inner[s..e], env));
            slices.push(&inner[s..e]);
        }
        c.i = end;
        (vals, slices)
    }

    /// Method-call transfer over the f64/unit-newtype vocabulary the
    /// kernels use. Unmatched methods are opaque.
    fn method(
        &mut self,
        recv: Val,
        name: &str,
        args: &[Val],
        arg_toks: &[&'a [Token]],
        line: usize,
    ) -> Val {
        let r = recv.known();
        match name {
            "get" => recv,
            "survival" => match r {
                Some(r) => Val::Known(Range::point(1.0).sub(&r)),
                None => Val::Unknown,
            },
            "sqrt" | "ln" | "ln_1p" => {
                let Some(r) = r else { return Val::Unknown };
                let res = match name {
                    "sqrt" => r.sqrt(),
                    "ln" => r.ln(),
                    _ => r.ln_1p(),
                };
                if res.nan && !r.nan {
                    self.report(
                        "nan_source",
                        line,
                        format!("{name} outside its domain: {name}({r})"),
                    );
                }
                Val::Known(res)
            }
            "exp" => r.map_or(Val::Unknown, |r| Val::Known(r.exp())),
            // cbrt is total over ℝ (CUBIC's recovery-origin root): never a
            // NaN source, the image is the monotone endpoint image.
            "cbrt" => r.map_or(Val::Unknown, |r| Val::Known(r.cbrt())),
            "exp_m1" => r.map_or(Val::Unknown, |r| Val::Known(r.exp_m1())),
            "abs" => r.map_or(Val::Unknown, |r| Val::Known(r.abs())),
            "min" | "max" => match (r, args.first().and_then(|a| a.known())) {
                (Some(a), Some(b)) => Val::Known(if name == "min" { a.min(&b) } else { a.max(&b) }),
                _ => Val::Unknown,
            },
            "powi" => {
                // Only a literal exponent is transferable.
                let Some(r) = r else { return Val::Unknown };
                match arg_toks.first().and_then(|s| literal_i32(s)) {
                    Some(k) => Val::Known(r.powi(k)),
                    None => Val::Unknown,
                }
            }
            "powf" => {
                let (Some(r), Some(e)) = (r, args.first().and_then(|a| a.known())) else {
                    return Val::Unknown;
                };
                let res = r.powf(&e);
                if res.nan && !r.nan && !e.nan {
                    self.report(
                        "nan_source",
                        line,
                        format!("powf with possibly-negative base: {r}"),
                    );
                }
                Val::Known(res)
            }
            "recip" => {
                let Some(r) = r else { return Val::Unknown };
                if r.contains_zero() {
                    self.report("div_domain", line, format!("recip of possible zero: {r}"));
                }
                Val::Known(Range::point(1.0).div(&r))
            }
            "clamp" => match (r, args) {
                (Some(r), [a, b]) => match (a.known(), b.known()) {
                    (Some(a), Some(b)) => Val::Known(r.max(&a).min(&b)),
                    _ => Val::Unknown,
                },
                _ => Val::Unknown,
            },
            "floor" | "ceil" | "round" | "trunc" => r.map_or(Val::Unknown, |r| {
                // Widen to the enclosing integer-bounded interval.
                Val::Known(Range {
                    lo: r.lo.floor(),
                    hi: r.hi.ceil(),
                    lo_open: false,
                    hi_open: false,
                    nan: r.nan,
                })
            }),
            _ => Val::Unknown,
        }
    }

    fn atom(&mut self, c: &mut Cur<'a>, env: &Env) -> Val {
        let Some(t) = c.peek() else {
            return Val::Unknown;
        };
        match t.kind {
            TokenKind::Int | TokenKind::Float => {
                let v = parse_literal(&t.text);
                c.bump();
                v.map_or(Val::Unknown, |x| Val::Known(Range::point(x)))
            }
            TokenKind::Ident => self.ident_path(c, env),
            TokenKind::Punct => match t.text.as_str() {
                "(" => {
                    let end = group_end(c.toks, c.i);
                    let inner = &c.toks[c.i + 1..end - 1];
                    let pieces = split_commas(inner);
                    let v = if pieces.len() == 1 {
                        self.eval_expr(inner, env)
                    } else {
                        for (s, e) in pieces {
                            self.eval_expr(&inner[s..e], env);
                        }
                        Val::Unknown // tuple
                    };
                    c.i = end;
                    v
                }
                "[" => {
                    let end = group_end(c.toks, c.i);
                    let inner = &c.toks[c.i + 1..end - 1];
                    for (s, e) in split_commas(inner) {
                        self.eval_expr(&inner[s..e], env);
                    }
                    c.i = end;
                    Val::Unknown
                }
                "{" => {
                    let end = group_end(c.toks, c.i);
                    let mut inner = env.clone();
                    let v = self.walk_block(&c.toks[c.i + 1..end - 1], &mut inner);
                    c.i = end;
                    v
                }
                "|" | "||" => {
                    // Closure: opaque; consume the rest of this slice.
                    c.i = c.toks.len();
                    Val::Unknown
                }
                _ => {
                    c.bump();
                    Val::Unknown
                }
            },
            _ => {
                c.bump();
                Val::Unknown
            }
        }
    }

    /// Identifier-led atoms: paths, calls, macros, struct literals,
    /// `if`/`match` expressions, env lookups.
    fn ident_path(&mut self, c: &mut Cur<'a>, env: &Env) -> Val {
        let Some(first) = c.peek().map(|t| t.text.clone()) else {
            return Val::Unknown;
        };
        match first.as_str() {
            "if" => {
                let mut e = env.clone();
                let (v, ni) = self.eval_if(c.toks, c.i, &mut e);
                c.i = ni;
                return v;
            }
            "match" => {
                let mut e = env.clone();
                let (v, ni) = self.eval_match(c.toks, c.i, &mut e);
                c.i = ni;
                return v;
            }
            _ => {}
        }
        // Macro invocation: opaque, arguments are not domain math.
        if c.peek_at(1).is_some_and(|t| is_punct(t, "!")) {
            c.bump();
            c.bump();
            if c.peek()
                .is_some_and(|t| is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{"))
            {
                c.i = group_end(c.toks, c.i);
            }
            return Val::Unknown;
        }
        // Collect the `a::b::c` path.
        let mut segs = vec![first];
        c.bump();
        while c.peek().is_some_and(|t| is_punct(t, "::")) {
            if let Some(n) = c.peek_at(1) {
                if n.kind == TokenKind::Ident {
                    segs.push(n.text.clone());
                    c.bump();
                    c.bump();
                    continue;
                }
                if is_punct(n, "<") {
                    // Turbofish: skip the generic group.
                    c.bump();
                    c.i = skip_angles(c.toks, c.i);
                    continue;
                }
            }
            break;
        }
        let name = segs.last().cloned().unwrap_or_default();
        if c.peek().is_some_and(|t| is_punct(t, "(")) {
            let (args, arg_toks) = self.call_args(c, env);
            return self.call(&segs, &args, &arg_toks, env);
        }
        if c.peek().is_some_and(|t| is_punct(t, "{"))
            && segs.len() == 1
            && name.chars().next().is_some_and(char::is_uppercase)
        {
            // Struct literal: evaluate field initializers for hazards.
            let end = group_end(c.toks, c.i);
            let inner = &c.toks[c.i + 1..end - 1];
            for (s, e) in split_commas(inner) {
                let piece = &inner[s..e];
                let expr = match piece.iter().position(|t| is_punct(t, ":")) {
                    Some(colon) => &piece[colon + 1..],
                    None => piece, // shorthand or `..base`
                };
                let expr = if expr.first().is_some_and(|t| is_punct(t, "..")) {
                    &expr[1..]
                } else {
                    expr
                };
                self.eval_expr(expr, env);
            }
            c.i = end;
            return Val::Unknown;
        }
        // Plain value path.
        if segs.len() == 1 {
            return env.get(&name);
        }
        if segs.len() == 2 && segs[0] == "f64" {
            return match name.as_str() {
                "INFINITY" => Val::Known(Range::point(f64::INFINITY)),
                "NEG_INFINITY" => Val::Known(Range::point(f64::NEG_INFINITY)),
                "NAN" => Val::Known(crate::domain::TOP),
                "MAX" => Val::Known(Range::point(f64::MAX)),
                "MIN" => Val::Known(Range::point(f64::MIN)),
                "MIN_POSITIVE" => Val::Known(Range::point(f64::MIN_POSITIVE)),
                "EPSILON" => Val::Known(Range::point(f64::EPSILON)),
                _ => Val::Unknown,
            };
        }
        Val::Unknown
    }

    /// Dispatches a path call: `Ok`/`Some` unwrap, `f64::from`
    /// identity, workspace functions, everything else opaque.
    fn call(&mut self, segs: &[String], args: &[Val], arg_toks: &[&'a [Token]], env: &Env) -> Val {
        let name = segs.last().map(String::as_str).unwrap_or_default();
        if segs.len() == 1 && matches!(name, "Ok" | "Some") {
            return args.first().copied().unwrap_or(Val::Unknown);
        }
        if segs.len() == 1 && matches!(name, "Err" | "None") {
            return Val::Unknown;
        }
        if name == "from" && segs.len() >= 2 && segs[segs.len() - 2] == "f64" {
            return args.first().copied().unwrap_or(Val::Unknown);
        }
        let key = if segs.len() >= 2 {
            format!("{}::{name}", segs[segs.len() - 2])
        } else {
            name.to_string()
        };
        let Some(targets) = self.ws.by_key.get(&key) else {
            return Val::Unknown;
        };
        let targets = targets.clone();
        // Bind arguments into a callee environment (first target's
        // signature; overloads share parameter shape in this workspace).
        let callee_env = self.bind_args(targets[0], args, arg_toks, env);
        if self.emit {
            for &t in &targets {
                self.calls.push((t, callee_env.clone()));
            }
        }
        // Pure bounded return evaluation for the value.
        if self.depth == 0 || self.stack.contains(&key) {
            return Val::Unknown;
        }
        self.stack.push(key);
        self.depth -= 1;
        let saved_emit = std::mem::replace(&mut self.emit, false);
        let v = self.eval_fn_body(targets[0], &mut callee_env.clone());
        self.emit = saved_emit;
        self.depth += 1;
        self.stack.pop();
        v
    }

    /// Builds a callee environment: positional parameter binding, cancel
    /// taint propagation, and struct-argument field pass-through (a
    /// `params: &ModelParams` argument carries the caller's bound
    /// `rtt`/`t0`/… fields into the callee, mirroring how [`seed_env`]
    /// binds domain keys through struct-typed parameters).
    fn bind_args(&self, target: FnId, args: &[Val], arg_toks: &[&'a [Token]], env: &Env) -> Env {
        let f = self.ws.fn_item(target);
        let mut out = Env::default();
        for (idx, (binding, _ty)) in f.params.iter().enumerate() {
            let v = args.get(idx).copied().unwrap_or(Val::Unknown);
            out.vals.insert(binding.clone(), v);
        }
        for (idx, slice) in arg_toks.iter().enumerate() {
            let Some(ident) = single_ident(strip_ref(slice)) else {
                continue;
            };
            if let Some((binding, _)) = f.params.get(idx) {
                if env.cancel.contains(ident) {
                    out.cancel.insert(binding.clone());
                }
            }
            if let Some(ty) = self.params.get(ident) {
                if let Some(fields) = self.ws.struct_fields.get(ty) {
                    for fld in fields {
                        if let Some(v) = env.vals.get(fld) {
                            out.vals.entry(fld.clone()).or_insert(*v);
                        }
                    }
                }
            }
        }
        // An associated call's self-struct fields flow implicitly: the
        // visited env holds them by name, so pass every bound field of
        // the callee's self type through.
        if let Some(st) = &f.self_type {
            if let Some(fields) = self.ws.struct_fields.get(st) {
                for fld in fields {
                    if let Some(v) = env.vals.get(fld) {
                        out.vals.entry(fld.clone()).or_insert(*v);
                    }
                }
            }
        }
        out
    }
}

/// Seed-environment construction + binding validation for one root.
/// Returns `(env, unbound keys)`.
fn seed_env(ws: &Ws<'_>, id: FnId, spec: &DomainSpec) -> (Env, Vec<String>) {
    let f = ws.fn_item(id);
    let mut env = Env::default();
    let mut unbound = Vec::new();
    for (key, range) in &spec.params {
        let direct = f.params.iter().any(|(n, _)| n == key);
        let via_param_struct = f.params.iter().any(|(_, ty)| {
            ws.struct_fields
                .get(ty)
                .is_some_and(|fields| fields.iter().any(|fld| fld == key))
        });
        let via_self = f.self_type.as_ref().is_some_and(|st| {
            ws.struct_fields
                .get(st)
                .is_some_and(|fields| fields.iter().any(|fld| fld == key))
        });
        if direct || via_param_struct || via_self {
            env.vals.insert(key.clone(), Val::Known(*range));
        } else {
            unbound.push(key.clone());
        }
    }
    (env, unbound)
}

/// Runs the analysis: per-root interval propagation over the call graph
/// implied by the parsed files, with parent-pointer evidence chains,
/// global dedup, and allow/policy filtering.
pub(crate) fn analyze(
    files: &[(PathBuf, ParsedFile)],
    domains: &[DomainSpec],
    policies: &[LintPolicy],
    ctxs: &BTreeMap<PathBuf, FileCtx<'_>>,
) -> NumlintAnalysis {
    let ws = Ws::build(files);
    let spec_file = PathBuf::from("specs/pftk-spec.toml");
    let mut summaries = Vec::new();
    // Raw findings with their evidence chains, in discovery order.
    let mut raws: Vec<(Raw, Vec<String>)> = Vec::new();

    for spec in domains {
        let seeds: Vec<FnId> = ws.by_key.get(&spec.root).cloned().unwrap_or_default();
        if seeds.is_empty() {
            raws.push((
                Raw {
                    rule: "stale_domain",
                    file: usize::MAX,
                    line: spec.line,
                    what: format!("root `{}` resolves to no function", spec.root),
                },
                vec![spec.root.clone()],
            ));
            summaries.push(DomainSummary {
                root: spec.root.clone(),
                reason: spec.reason.clone(),
                resolved: 0,
                reached: 0,
            });
            continue;
        }
        // A key is stale only if *no* seed can bind it.
        let mut unbound_everywhere: Option<BTreeSet<String>> = None;
        let mut queue: VecDeque<(FnId, Env)> = VecDeque::new();
        let mut visited: BTreeSet<FnId> = BTreeSet::new();
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        for &seed in &seeds {
            let (env, unbound) = seed_env(&ws, seed, spec);
            let set: BTreeSet<String> = unbound.into_iter().collect();
            unbound_everywhere = Some(match unbound_everywhere {
                Some(prev) => prev.intersection(&set).cloned().collect(),
                None => set,
            });
            if visited.insert(seed) {
                queue.push_back((seed, env));
            }
        }
        for key in unbound_everywhere.unwrap_or_default() {
            raws.push((
                Raw {
                    rule: "stale_domain",
                    file: usize::MAX,
                    line: spec.line,
                    what: format!("key `{key}` binds no parameter or field of `{}`", spec.root),
                },
                vec![spec.root.clone()],
            ));
        }

        let mut reached = 0usize;
        let mut hazard_count = 0usize;
        let mut escapes: Vec<(Raw, Vec<String>)> = Vec::new();
        while let Some((id, mut env)) = queue.pop_front() {
            reached += 1;
            let mut ev = Eval::new(&ws);
            ev.emit = true;
            let ret = ev.eval_fn_body(id, &mut env);
            // Chain prefix: root seed → … → this function.
            let mut prefix = Vec::new();
            let mut cur = Some(id);
            while let Some(n) = cur {
                prefix.push(ws.fn_item(n).key());
                cur = parent.get(&n).copied();
            }
            prefix.reverse();
            for raw in ev.out {
                hazard_count += 1;
                let mut chain = prefix.clone();
                chain.push(raw.what.clone());
                raws.push((raw, chain));
            }
            // inf_escape candidates: only roots make totality promises
            // to callers. Held back until the propagation finishes —
            // they fire only when no operation-level hazard already
            // explains the non-finiteness (silent overflow).
            if seeds.contains(&id) {
                if let Some(r) = ret.known() {
                    let f = ws.fn_item(id);
                    if r.may_non_finite() && f.ret.as_deref() != Some("Result") {
                        let what = format!("may return non-finite value: {r}");
                        escapes.push((
                            Raw {
                                rule: "inf_escape",
                                file: id.0,
                                line: f.line,
                                what: what.clone(),
                            },
                            vec![f.key(), what],
                        ));
                    }
                }
            }
            for (callee, cenv) in ev.calls {
                if visited.insert(callee) {
                    parent.insert(callee, id);
                    queue.push_back((callee, cenv));
                }
            }
        }
        if hazard_count == 0 {
            raws.append(&mut escapes);
        }
        summaries.push(DomainSummary {
            root: spec.root.clone(),
            reason: spec.reason.clone(),
            resolved: seeds.len(),
            reached,
        });
    }

    // Filter: global (rule, file, line) dedup, scope, policy, allows.
    let mut findings = Vec::new();
    let mut seen = BTreeSet::new();
    for (raw, chain) in raws {
        let (file, snippet) = if raw.file == usize::MAX {
            (
                spec_file.clone(),
                format!("[[domain]] root = \"{}\"", chain[0]),
            )
        } else {
            let path = files[raw.file].0.clone();
            let snippet = ctxs
                .get(&path)
                .map(|c| snippet_at(c.text, raw.line))
                .unwrap_or_default();
            (path, snippet)
        };
        if !seen.insert((raw.rule, file.clone(), raw.line)) {
            continue;
        }
        // The spec file is not library code; `stale_domain` anchors
        // there by design, so the library-scope check does not apply.
        if raw.rule != "stale_domain" && !rule_in_scope(raw.rule, &file) {
            continue;
        }
        if policy_exempts(policies, raw.rule, &file) {
            continue;
        }
        if let Some(ctx) = ctxs.get(&file) {
            if ctx.allows.allowed(raw.line, raw.rule) {
                continue;
            }
        }
        findings.push(LintViolation {
            rule: raw.rule,
            file,
            line: raw.line,
            snippet,
            chain,
        });
    }

    NumlintAnalysis {
        roots: summaries,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceModel;
    use crate::lint::Allows;

    /// Runs the analysis over a single-file mini-workspace at
    /// `crates/model/src/x.rs` with the given `[[domain]]` entries
    /// (root, params as `(key, interval)` pairs).
    fn run(src: &str, domains: &[(&str, &[(&str, &str)])]) -> NumlintAnalysis {
        let model = SourceModel::parse(src);
        let parsed = crate::parser::parse_file(&model);
        let files = vec![(PathBuf::from("crates/model/src/x.rs"), parsed)];
        let specs: Vec<DomainSpec> = domains
            .iter()
            .enumerate()
            .map(|(i, (root, params))| DomainSpec {
                root: root.to_string(),
                reason: "test".to_string(),
                line: i + 1,
                params: params
                    .iter()
                    .map(|(k, s)| {
                        (
                            k.to_string(),
                            crate::domain::parse_interval(s).expect("test interval"),
                        )
                    })
                    .collect(),
            })
            .collect();
        let allows = Allows::from_model(&model);
        let mut ctxs = BTreeMap::new();
        ctxs.insert(
            PathBuf::from("crates/model/src/x.rs"),
            FileCtx {
                text: src,
                allows: &allows,
            },
        );
        analyze(&files, &specs, &[], &ctxs)
    }

    fn rules(a: &NumlintAnalysis) -> Vec<&'static str> {
        a.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn div_by_interval_containing_zero_fires() {
        let a = run(
            "pub fn f(x: f64) -> f64 { 1.0 / x }\n",
            &[("f", &[("x", "[0, 1]")])],
        );
        assert_eq!(rules(&a), ["div_domain"]);
    }

    #[test]
    fn open_zero_endpoint_is_safe() {
        let a = run(
            "pub fn f(x: f64) -> f64 { 2.0 / x }\n",
            &[("f", &[("x", "(0, 1]")])],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn unknown_denominator_is_assumed_safe() {
        let a = run(
            "pub fn f(x: f64, y: f64) -> f64 { x / y }\n",
            &[("f", &[("x", "[1, 2]")])],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn hazard_propagates_through_calls_with_chain() {
        let src = "pub fn inner(v: f64) -> f64 { 1.0 / v }\n\
                   pub fn outer(x: f64) -> f64 { inner(x - 1.0) }\n";
        let a = run(src, &[("outer", &[("x", "[0, 2]")])]);
        assert_eq!(rules(&a), ["div_domain"]);
        assert_eq!(
            a.findings[0].chain,
            ["outer", "inner", "denominator may be zero: [-1e0, 1e0]"]
        );
    }

    #[test]
    fn sqrt_of_possibly_negative_is_nan_source() {
        let a = run(
            "pub fn f(x: f64) -> f64 { x.sqrt() }\n",
            &[("f", &[("x", "[-1, 1]")])],
        );
        assert_eq!(rules(&a), ["nan_source"]);
    }

    #[test]
    fn cbrt_of_negative_is_clean() {
        // CUBIC's recovery origin takes cbrt of a possibly-negative
        // offset; cbrt is total over ℝ so that must not be a nan_source.
        let a = run(
            "pub fn f(x: f64) -> f64 { (x * 2.5).cbrt() }\n",
            &[("f", &[("x", "[-65535, 65535]")])],
        );
        assert_eq!(rules(&a), Vec::<&str>::new());
    }

    #[test]
    fn zero_over_zero_is_nan_source_not_div_domain() {
        let a = run(
            "pub fn f(x: f64) -> f64 { x / x }\n",
            &[("f", &[("x", "[0, 1]")])],
        );
        assert_eq!(rules(&a), ["nan_source"]);
    }

    #[test]
    fn closed_infinite_endpoint_is_inf_escape() {
        let a = run(
            "pub fn g(x: f64) -> f64 { 1.0 + x }\n",
            &[("g", &[("x", "[0, inf]")])],
        );
        assert_eq!(rules(&a), ["inf_escape"]);
    }

    #[test]
    fn open_infinite_endpoint_is_not_inf_escape() {
        // 1/x on (0,1] is [1, +inf) with the inf endpoint *open*
        // (unbounded but never attained), so no escape.
        let a = run(
            "pub fn f(x: f64) -> f64 { 1.0 / x }\n",
            &[("f", &[("x", "(0, 1]")])],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn result_return_suppresses_inf_escape() {
        let a = run(
            "pub fn g(x: f64) -> Result<f64, ()> { Ok(1.0 + x) }\n",
            &[("g", &[("x", "[0, inf]")])],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn cancelling_subtraction_denominator_is_cancel_risk() {
        let a = run(
            "pub fn f(a: f64, b: f64) -> f64 { 1.0 / (a - b) }\n",
            &[("f", &[("a", "[1, 2]"), ("b", "[1, 2]")])],
        );
        assert_eq!(rules(&a), ["cancel_risk"]);
    }

    #[test]
    fn cancel_taint_flows_through_let_binding() {
        let src = "pub fn f(a: f64, b: f64) -> f64 {\n\
                   \x20   let d = a - b;\n\
                   \x20   1.0 / d\n\
                   }\n";
        let a = run(src, &[("f", &[("a", "[1, 2]"), ("b", "[1, 2]")])]);
        assert_eq!(rules(&a), ["cancel_risk"]);
    }

    #[test]
    fn disjoint_subtraction_is_not_cancel_risk() {
        let a = run(
            "pub fn f(a: f64, b: f64) -> f64 { 1.0 / (a - b) }\n",
            &[("f", &[("a", "[10, 20]"), ("b", "[1, 2]")])],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn unresolved_root_is_stale_domain() {
        let a = run(
            "pub fn f(x: f64) -> f64 { x }\n",
            &[("no_such_fn", &[("x", "[0, 1]")])],
        );
        assert_eq!(rules(&a), ["stale_domain"]);
        assert_eq!(a.findings[0].file, PathBuf::from("specs/pftk-spec.toml"));
        assert_eq!(a.roots[0].resolved, 0);
    }

    #[test]
    fn unbindable_key_is_stale_domain() {
        let a = run(
            "pub fn f(x: f64) -> f64 { x }\n",
            &[("f", &[("y", "[0, 1]")])],
        );
        assert_eq!(rules(&a), ["stale_domain"]);
        assert!(a.findings[0].chain.iter().any(|c| c == "f"));
    }

    #[test]
    fn struct_field_domains_bind_through_params() {
        let src = "pub struct P {\n    pub rtt: f64,\n}\n\
                   pub fn f(p: f64, params: &P) -> f64 { p / params.rtt }\n";
        let a = run(src, &[("f", &[("p", "(0, 1)"), ("rtt", "[0, 10]")])]);
        assert_eq!(rules(&a), ["div_domain"]);
    }

    #[test]
    fn struct_fields_pass_through_to_callees() {
        let src = "pub struct P {\n    pub rtt: f64,\n}\n\
                   pub fn inner(q: f64, params: &P) -> f64 { q / params.rtt }\n\
                   pub fn outer(p: f64, params: &P) -> f64 { inner(p, params) }\n";
        let a = run(src, &[("outer", &[("p", "(0, 1)"), ("rtt", "[0, 10]")])]);
        assert_eq!(rules(&a), ["div_domain"]);
        assert_eq!(a.findings[0].line, 4);
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "pub fn f(x: f64) -> f64 {\n\
                   \x20   //~ allow(div_domain): boundary behavior is tested\n\
                   \x20   1.0 / x\n\
                   }\n";
        let a = run(src, &[("f", &[("x", "[0, 1]")])]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn branch_values_hull() {
        // Both arms contribute to the hull: the else arm's 0.0 keeps
        // zero in y's range even though the then arm is positive.
        let src = "pub fn f(x: f64) -> f64 {\n\
                   \x20   let y = if x > 0.5 { x } else { 0.0 };\n\
                   \x20   1.0 / y\n\
                   }\n";
        let a = run(src, &[("f", &[("x", "[0, 1]")])]);
        assert_eq!(rules(&a), ["div_domain"]);
    }

    #[test]
    fn guard_refinement_narrows_branch_ranges() {
        // x > 0.5 in the then arm and the else arm's 1.0 both exclude
        // zero, so the guard proves the division total.
        let src = "pub fn f(x: f64) -> f64 {\n\
                   \x20   let y = if x > 0.5 { x } else { 1.0 };\n\
                   \x20   1.0 / y\n\
                   }\n";
        let a = run(src, &[("f", &[("x", "[0, 1]")])]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn divergent_then_branch_refines_continuation() {
        // The `if w <= 0.0 { return … }` idiom: past the early return
        // the analyzer knows w > 0, so the division is total.
        let src = "pub fn f(w: f64) -> f64 {\n\
                   \x20   if w <= 0.0 {\n\
                   \x20       return 1.0;\n\
                   \x20   }\n\
                   \x20   1.0 / w\n\
                   }\n";
        let a = run(src, &[("f", &[("w", "[-1, 1]")])]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        // Without the guard the same division must keep the finding.
        let src2 = "pub fn f(w: f64) -> f64 { 1.0 / w }\n";
        let a2 = run(src2, &[("f", &[("w", "[-1, 1]")])]);
        assert_eq!(rules(&a2), ["div_domain"]);
    }

    #[test]
    fn loop_accumulator_widens_out_of_point_range() {
        // `den` starts at the point 0.0 but the loop body adds an
        // unknown amount: the single-unroll merge must widen it to
        // Unknown instead of reporting a certain division by zero.
        let src = "pub fn f(x: f64, xs: &[f64]) -> f64 {\n\
                   \x20   let mut den = 0.0;\n\
                   \x20   for v in xs {\n\
                   \x20       den += v * x;\n\
                   \x20   }\n\
                   \x20   1.0 / den\n\
                   }\n";
        let a = run(src, &[("f", &[("x", "[0, 1]")])]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn branch_assignment_merges_into_continuation() {
        // A then-branch assignment must widen the caller's view of the
        // variable: y is 0.0 only when x ≥ 0.5, but the hull over both
        // paths still contains zero.
        let src = "pub fn f(x: f64) -> f64 {\n\
                   \x20   let mut y = 1.0;\n\
                   \x20   if x >= 0.5 {\n\
                   \x20       y = 0.0;\n\
                   \x20   }\n\
                   \x20   1.0 / y\n\
                   }\n";
        let a = run(src, &[("f", &[("x", "[0, 1]")])]);
        assert_eq!(rules(&a), ["div_domain"]);
    }

    #[test]
    fn min_max_and_literal_arithmetic_transfer() {
        // (x.max(0.5) + 1.0) is within [1.5, 2.0]: no hazard dividing.
        let src = "pub fn f(x: f64) -> f64 { 1.0 / (x.max(0.5) + 1.0) }\n";
        let a = run(src, &[("f", &[("x", "[0, 1]")])]);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn reached_counts_propagated_functions() {
        let src = "pub fn inner(v: f64) -> f64 { v + 1.0 }\n\
                   pub fn outer(x: f64) -> f64 { inner(x) }\n";
        let a = run(src, &[("outer", &[("x", "[0, 1]")])]);
        assert_eq!(a.roots[0].resolved, 1);
        assert_eq!(a.roots[0].reached, 2);
    }
}
