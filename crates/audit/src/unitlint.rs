//! `unit_escape`: unit-newtype hygiene for the PFTK formulas.
//!
//! The model keeps physical quantities in `#[must_use]` tuple-struct
//! newtypes (`Seconds`, `LossProb`, `PacketsPerSec`) precisely because
//! the paper's expressions mix packets, rounds, seconds and
//! probabilities — the class of bug a reproduction can least afford.
//! Two escape hatches defeat that protection, and this pass flags both
//! inside `crates/model` and `crates/sim`:
//!
//! * **mixing**: a binary arithmetic expression (`+ - * /`) whose two
//!   operands are locals/params of *different* unit newtypes —
//!   `rtt * rate` is dimensionally meaningful only through an explicit
//!   conversion, never through raw arithmetic on the wrappers;
//! * **stripping**: reading a unit's raw field via `.0` outside the
//!   unit's own `impl` block, which silently discards the dimension —
//!   the accessor methods exist so call sites say what they mean.
//!
//! Deliberate sites carry `//~ allow(unit_escape): reason`, audited like
//! every other rule (bare allows are red). The operand-type resolution
//! reuses the parser's parameter tables and is intentionally shallow:
//! only bindings whose declared type *is* a unit participate, so the
//! pass has no false positives from unknown types.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{Token, TokenKind};
use crate::lint::{policy_exempts, rule_in_scope, snippet_at, Allows, LintViolation};
use crate::parser::ParsedFile;
use crate::spec::LintPolicy;

const ARITH: [&str; 4] = ["+", "-", "*", "/"];

fn is_punct(t: &Token, p: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == p
}

/// Unit-newtype names across the workspace: every `#[must_use]`
/// single-field tuple struct in library code.
pub(crate) fn unit_names(files: &[(std::path::PathBuf, ParsedFile)]) -> BTreeSet<String> {
    files
        .iter()
        .flat_map(|(_, p)| &p.structs)
        .filter(|s| s.is_unit_newtype())
        .map(|s| s.name.clone())
        .collect()
}

/// Runs the `unit_escape` pass over one parsed file.
pub(crate) fn lint_units(
    file: &Path,
    text: &str,
    parsed: &ParsedFile,
    units: &BTreeSet<String>,
    allows: &Allows,
    policies: &[LintPolicy],
) -> Vec<LintViolation> {
    let rule = "unit_escape";
    if !rule_in_scope(rule, file) || policy_exempts(policies, rule, file) || units.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    for f in &parsed.fns {
        if f.in_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let body = &parsed.toks[start..end];
        // Bindings whose declared type is a unit newtype.
        let env: BTreeMap<&str, &str> = f
            .params
            .iter()
            .filter(|(_, ty)| units.contains(ty))
            .map(|(n, ty)| (n.as_str(), ty.as_str()))
            .collect();
        // Inside a unit's own impl the raw field is the implementation.
        let in_own_impl = f.self_type.as_deref().is_some_and(|t| units.contains(t));
        let unit_of = |tok: &Token| -> Option<&str> {
            if tok.kind != TokenKind::Ident {
                return None;
            }
            env.get(tok.text.as_str()).copied()
        };
        for k in 0..body.len() {
            let t = &body[k];
            // `v.0` stripping: Ident `.` Int(0).
            if !in_own_impl
                && is_punct(t, ".")
                && k > 0
                && unit_of(&body[k - 1]).is_some()
                && body
                    .get(k + 1)
                    .is_some_and(|n| n.kind == TokenKind::Int && n.text == "0")
            {
                push(&mut out, &mut seen, file, text, allows, t.line, {
                    let u = unit_of(&body[k - 1]).unwrap_or_default();
                    vec![f.key(), format!("strips {u} via .0")]
                });
                continue;
            }
            // `a <op> b` mixing two different units.
            if t.kind == TokenKind::Punct && ARITH.contains(&t.text.as_str()) && k > 0 {
                let (Some(lu), Some(ru)) =
                    (unit_of(&body[k - 1]), body.get(k + 1).and_then(&unit_of))
                else {
                    continue;
                };
                if lu != ru {
                    push(
                        &mut out,
                        &mut seen,
                        file,
                        text,
                        allows,
                        t.line,
                        vec![f.key(), format!("{lu} {} {ru}", t.text)],
                    );
                }
            }
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn push(
    out: &mut Vec<LintViolation>,
    seen: &mut BTreeSet<usize>,
    file: &Path,
    text: &str,
    allows: &Allows,
    line: usize,
    chain: Vec<String>,
) {
    if allows.allowed(line, "unit_escape") || !seen.insert(line) {
        return;
    }
    out.push(LintViolation {
        rule: "unit_escape",
        file: file.to_path_buf(),
        line,
        snippet: snippet_at(text, line),
        chain,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceModel;
    use crate::parser::parse_file;
    use std::path::PathBuf;

    const UNITS_SRC: &str = "#[must_use]\npub struct Seconds(f64);\n\
                             #[must_use]\npub struct PacketsPerSec(f64);\n";

    fn check(body_src: &str) -> Vec<LintViolation> {
        let full = format!("{UNITS_SRC}{body_src}");
        let model = SourceModel::parse(&full);
        let parsed = parse_file(&model);
        let units = unit_names(&[(PathBuf::from("crates/model/src/units.rs"), {
            let m = SourceModel::parse(UNITS_SRC);
            parse_file(&m)
        })]);
        let allows = Allows::from_model(&model);
        lint_units(
            Path::new("crates/model/src/f.rs"),
            &full,
            &parsed,
            &units,
            &allows,
            &[],
        )
    }

    #[test]
    fn mixing_two_units_fires() {
        let v = check("fn f(rtt: Seconds, rate: PacketsPerSec) -> f64 { rtt * rate }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unit_escape");
        assert_eq!(v[0].chain[1], "Seconds * PacketsPerSec");
    }

    #[test]
    fn same_unit_arithmetic_is_fine() {
        assert!(check("fn f(a: Seconds, b: Seconds) -> Seconds { a + b }\n").is_empty());
    }

    #[test]
    fn stripping_via_dot_zero_fires_outside_own_impl() {
        let v = check("fn f(rtt: Seconds) -> f64 { rtt.0 }\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].chain[1].contains("strips Seconds"), "{v:?}");
    }

    #[test]
    fn own_impl_may_touch_its_field() {
        let src = "impl Seconds {\n  pub fn get(self) -> f64 { self.0 }\n  pub fn double(s: Seconds) -> f64 { s.0 * 2.0 }\n}\n";
        assert!(check(src).is_empty(), "{:?}", check(src));
    }

    #[test]
    fn justified_allow_suppresses() {
        let ok = "fn f(rtt: Seconds) -> f64 { rtt.0 } //~ allow(unit_escape): FFI boundary\n";
        assert!(check(ok).is_empty());
    }

    #[test]
    fn out_of_scope_paths_are_ignored() {
        let src = "fn f(rtt: Seconds) -> f64 { rtt.0 }\n";
        let full = format!("{UNITS_SRC}{src}");
        let model = SourceModel::parse(&full);
        let parsed = parse_file(&model);
        let units = unit_names(&[(PathBuf::from("u.rs"), parse_file(&model))]);
        let allows = Allows::from_model(&model);
        let v = lint_units(
            Path::new("crates/trace/src/f.rs"),
            &full,
            &parsed,
            &units,
            &allows,
            &[],
        );
        assert!(v.is_empty());
    }
}
