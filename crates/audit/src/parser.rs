//! Item-level parser over the [`crate::lexer`] token stream.
//!
//! The hot-path capability analysis ([`crate::hotpath`]) needs more
//! structure than a flat token stream: which function a token belongs
//! to, what an `impl` block's self type is, and what the declared types
//! of parameters and struct fields are. This module recovers exactly
//! that — items (`fn`, `impl`, `trait`, `struct`), signatures, and body
//! token ranges — and nothing more. It is a *recognizer with recovery*,
//! not a Rust parser: token runs it cannot classify are skipped, nested
//! structure is tracked by brace depth, and malformed input degrades to
//! fewer recovered items rather than an error. Conservatism lives in the
//! consumer: a call the graph cannot attribute to a known function is
//! resolved pessimistically (see [`crate::callgraph`]), so parser
//! under-recovery can only ever *widen* the analysis, never silently
//! narrow it.
//!
//! What is recovered per file:
//!
//! * every `fn` with its name, enclosing `impl`/`trait` self type, trait
//!   name (for `impl Trait for Type`), `#[cfg(test)]`-ness, parameter
//!   `(binding, type-head)` pairs, and the token index range of its body;
//! * every `struct` with its fields' `(name, outer-type, inner-type)`
//!   triples (`inner` is the first generic argument, so `Option<KarnCore>`
//!   resolves through `if let Some(k) = &mut self.karn`), plus whether it
//!   is a `#[must_use]` tuple struct — the unit-newtype marker the
//!   `unit_escape` lint keys on.
//!
//! "Type head" means the last identifier at angle-depth 0 of a type
//! expression: `&'a mut KarnCore` → `KarnCore`, `std::vec::Vec<u8>` →
//! `Vec`. That is the granularity the receiver-type heuristics need.

use crate::lexer::{SourceModel, Token, TokenKind};

/// One recovered function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type when declared inside an `impl` or `trait` block.
    pub self_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// `(binding, type-head)` for each simple typed parameter; `self`
    /// receivers and non-trivial patterns are omitted.
    pub params: Vec<(String, String)>,
    /// Return-type head (`-> Result<f64, ModelError>` → `Result`), or
    /// `None` for `()`-returning functions.
    pub ret: Option<String>,
    /// Token index range `[start, end)` of the body *interior* (between
    /// the braces), or `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// Graph key: `Type::name` for methods, bare `name` for free fns.
    pub fn key(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One recovered struct field (named or tuple-positional).
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name (`"0"`, `"1"`, … for tuple structs).
    pub name: String,
    /// Outer type head (`Option<KarnCore>` → `Option`).
    pub outer: String,
    /// First generic argument's head (`Option<KarnCore>` → `KarnCore`).
    pub inner: Option<String>,
}

/// One recovered struct item.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Whether a `#[must_use]` attribute precedes it.
    pub must_use: bool,
    /// Whether it is a tuple struct (`struct Seconds(f64);`).
    pub tuple: bool,
    /// 1-based line of the `struct` keyword.
    pub line: usize,
    /// Fields in declaration order.
    pub fields: Vec<FieldItem>,
}

impl StructItem {
    /// Whether this struct is a unit newtype in the workspace's idiom:
    /// a `#[must_use]` single-field tuple struct.
    pub fn is_unit_newtype(&self) -> bool {
        self.must_use && self.tuple && self.fields.len() == 1
    }
}

/// The parsed form of one file: recovered items over an owned code-token
/// stream (comments stripped, source order preserved).
#[derive(Debug)]
pub struct ParsedFile {
    /// Code tokens in source order; item ranges index into this.
    pub toks: Vec<Token>,
    /// Recovered functions.
    pub fns: Vec<FnItem>,
    /// Recovered structs.
    pub structs: Vec<StructItem>,
}

/// Type-position keywords skipped when extracting a type head.
const TYPE_NOISE: [&str; 6] = ["mut", "dyn", "impl", "ref", "const", "pub"];

fn is_punct(t: &Token, p: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == p
}

fn is_ident(t: &Token, name: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == name
}

/// Last identifier at angle-depth 0 in `toks`, skipping type noise —
/// the "type head" used for receiver resolution.
pub(crate) fn type_head(toks: &[Token]) -> Option<String> {
    let mut angle = 0i64;
    let mut head = None;
    for t in toks {
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            },
            TokenKind::Ident if angle == 0 && !TYPE_NOISE.contains(&t.text.as_str()) => {
                head = Some(t.text.clone());
            }
            _ => {}
        }
    }
    head
}

/// First identifier at angle-depth ≥ 1 — the head of the first generic
/// argument (`Option<KarnCore>` → `KarnCore`).
fn inner_head(toks: &[Token]) -> Option<String> {
    let mut angle = 0i64;
    for t in toks {
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                _ => {}
            },
            TokenKind::Ident if angle >= 1 && !TYPE_NOISE.contains(&t.text.as_str()) => {
                return Some(t.text.clone());
            }
            _ => {}
        }
    }
    None
}

/// Parses the code-token stream of `model` into items.
pub fn parse_file(model: &SourceModel) -> ParsedFile {
    let toks: Vec<Token> = model.code_tokens().cloned().collect();
    Parser::new(&toks).run()
}

/// An `impl`/`trait` context open at some brace depth.
struct ImplCtx {
    open_depth: i64,
    self_type: Option<String>,
    trait_name: Option<String>,
}

struct Parser<'a> {
    toks: &'a [Token],
    fns: Vec<FnItem>,
    structs: Vec<StructItem>,
    impls: Vec<ImplCtx>,
    /// Identifiers seen inside the most recent run of `#[…]` attributes,
    /// cleared at the next non-attribute statement boundary.
    pending_attrs: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [Token]) -> Self {
        Parser {
            toks,
            fns: Vec::new(),
            structs: Vec::new(),
            impls: Vec::new(),
            pending_attrs: Vec::new(),
        }
    }

    fn run(mut self) -> ParsedFile {
        let mut depth = 0i64;
        let mut i = 0usize;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if is_punct(t, "#")
                && self
                    .toks
                    .get(i + 1)
                    .is_some_and(|n| is_punct(n, "[") || is_punct(n, "!"))
            {
                i = self.consume_attr(i);
                continue;
            }
            if is_punct(t, "{") {
                depth += 1;
                self.pending_attrs.clear();
                i += 1;
                continue;
            }
            if is_punct(t, "}") {
                depth -= 1;
                while self.impls.last().is_some_and(|ctx| ctx.open_depth >= depth) {
                    self.impls.pop();
                }
                self.pending_attrs.clear();
                i += 1;
                continue;
            }
            if is_punct(t, ";") {
                self.pending_attrs.clear();
                i += 1;
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "impl" if self.item_position(i) => {
                        i = self.parse_impl(i, &mut depth);
                        continue;
                    }
                    "trait" if self.item_position(i) => {
                        i = self.parse_trait(i, &mut depth);
                        continue;
                    }
                    "struct" => {
                        i = self.parse_struct(i);
                        continue;
                    }
                    "fn" if self
                        .toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokenKind::Ident) =>
                    {
                        i = self.parse_fn(i);
                        continue;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        ParsedFile {
            toks: self.toks.to_vec(),
            fns: self.fns,
            structs: self.structs,
        }
    }

    /// Skips a `#[…]`/`#![…]` attribute group, recording its identifiers.
    fn consume_attr(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| is_punct(t, "!")) {
            j += 1;
        }
        if !self.toks.get(j).is_some_and(|t| is_punct(t, "[")) {
            return i + 1;
        }
        let mut bracket = 1i64;
        j += 1;
        while j < self.toks.len() && bracket > 0 {
            let t = &self.toks[j];
            if is_punct(t, "[") {
                bracket += 1;
            } else if is_punct(t, "]") {
                bracket -= 1;
            } else if t.kind == TokenKind::Ident {
                self.pending_attrs.push(t.text.clone());
            }
            j += 1;
        }
        j
    }

    /// Whether the keyword at `i` opens an item (vs. `-> impl Trait`,
    /// `x: impl Fn()`, `&impl T`, generic bounds, …).
    fn item_position(&self, i: usize) -> bool {
        match i.checked_sub(1).and_then(|p| self.toks.get(p)) {
            None => true,
            Some(prev) => match prev.kind {
                TokenKind::Punct => matches!(prev.text.as_str(), ";" | "{" | "}" | "]"),
                TokenKind::Ident => prev.text == "unsafe",
                _ => false,
            },
        }
    }

    /// Index just past a balanced `<…>` group starting at `open` (which
    /// must be `<`), tolerating `<<`/`>>` and brace groups in const
    /// arguments. Bails at `;`/EOF for recovery.
    fn skip_angles(&self, open: usize) -> usize {
        let mut angle = 0i64;
        let mut brace = 0i64;
        let mut j = open;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    "<" if brace == 0 => angle += 1,
                    "<<" if brace == 0 => angle += 2,
                    ">" if brace == 0 => angle -= 1,
                    ">>" if brace == 0 => angle -= 2,
                    ";" => return j, // malformed; recover
                    _ => {}
                }
            }
            j += 1;
            if angle <= 0 {
                return j;
            }
        }
        j
    }

    /// Parses a type path (`a::b::C<D>`), returning its head and the
    /// index after it. Stops at `for`, `where`, `{`, `(`, `;`.
    fn parse_type_path(&self, mut j: usize) -> (Option<String>, usize) {
        let start = j;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.kind == TokenKind::Ident {
                if matches!(t.text.as_str(), "for" | "where") {
                    break;
                }
                j += 1;
            } else if is_punct(t, "::") || is_punct(t, "&") || t.kind == TokenKind::Lifetime {
                j += 1;
            } else if is_punct(t, "<") {
                j = self.skip_angles(j);
            } else {
                break;
            }
        }
        (type_head(&self.toks[start..j]), j)
    }

    fn parse_impl(&mut self, i: usize, depth: &mut i64) -> usize {
        self.pending_attrs.clear();
        let mut j = i + 1;
        if self.toks.get(j).is_some_and(|t| is_punct(t, "<")) {
            j = self.skip_angles(j);
        }
        let (first, after_first) = self.parse_type_path(j);
        j = after_first;
        let (self_type, trait_name) = if self.toks.get(j).is_some_and(|t| is_ident(t, "for")) {
            let (second, after_second) = self.parse_type_path(j + 1);
            j = after_second;
            (second, first)
        } else {
            (first, None)
        };
        // Skip a where clause: advance to the body brace.
        while j < self.toks.len() && !is_punct(&self.toks[j], "{") {
            if is_punct(&self.toks[j], ";") {
                return j + 1; // `impl Trait for Type;` — nothing to do
            }
            j += 1;
        }
        if j < self.toks.len() {
            self.impls.push(ImplCtx {
                open_depth: *depth,
                self_type,
                trait_name,
            });
            *depth += 1;
            j += 1;
        }
        j
    }

    fn parse_trait(&mut self, i: usize, depth: &mut i64) -> usize {
        self.pending_attrs.clear();
        let name = match self.toks.get(i + 1) {
            Some(t) if t.kind == TokenKind::Ident => t.text.clone(),
            _ => return i + 1,
        };
        let mut j = i + 2;
        while j < self.toks.len() && !is_punct(&self.toks[j], "{") {
            if is_punct(&self.toks[j], ";") {
                return j + 1; // trait alias
            }
            j += 1;
        }
        if j < self.toks.len() {
            // Default trait methods resolve by the trait's own name; the
            // call graph unions them with every implementor anyway.
            self.impls.push(ImplCtx {
                open_depth: *depth,
                self_type: Some(name),
                trait_name: None,
            });
            *depth += 1;
            j += 1;
        }
        j
    }

    fn parse_struct(&mut self, i: usize) -> usize {
        let must_use = self.pending_attrs.iter().any(|a| a == "must_use");
        self.pending_attrs.clear();
        let (name, line) = match self.toks.get(i + 1) {
            Some(t) if t.kind == TokenKind::Ident => (t.text.clone(), self.toks[i].line),
            _ => return i + 1,
        };
        let mut j = i + 2;
        if self.toks.get(j).is_some_and(|t| is_punct(t, "<")) {
            j = self.skip_angles(j);
        }
        // where clause before the body is possible for both forms.
        while j < self.toks.len() {
            let t = &self.toks[j];
            if is_punct(t, "(") {
                let (fields, end) = self.parse_tuple_fields(j);
                self.structs.push(StructItem {
                    name,
                    must_use,
                    tuple: true,
                    line,
                    fields,
                });
                return end;
            }
            if is_punct(t, "{") {
                let (fields, end) = self.parse_named_fields(j);
                self.structs.push(StructItem {
                    name,
                    must_use,
                    tuple: false,
                    line,
                    fields,
                });
                return end;
            }
            if is_punct(t, ";") {
                self.structs.push(StructItem {
                    name,
                    must_use,
                    tuple: false,
                    line,
                    fields: Vec::new(),
                });
                return j + 1;
            }
            j += 1;
        }
        j
    }

    /// Parses `(T, U, …)` tuple fields starting at the `(`.
    fn parse_tuple_fields(&self, open: usize) -> (Vec<FieldItem>, usize) {
        let (pieces, end) = self.split_group(open, "(", ")");
        let fields = pieces
            .into_iter()
            .enumerate()
            .map(|(idx, range)| FieldItem {
                name: idx.to_string(),
                outer: type_head(&self.toks[range.0..range.1]).unwrap_or_default(),
                inner: inner_head(&self.toks[range.0..range.1]),
            })
            .collect();
        (fields, end)
    }

    /// Parses `{ name: Type, … }` named fields starting at the `{`.
    fn parse_named_fields(&self, open: usize) -> (Vec<FieldItem>, usize) {
        let (pieces, end) = self.split_group(open, "{", "}");
        let mut fields = Vec::new();
        for (start, stop) in pieces {
            // `pub name : Type` — find the `:` at the piece's top level.
            let Some(colon) = (start..stop).find(|&k| is_punct(&self.toks[k], ":")) else {
                continue;
            };
            let Some(name_tok) = colon.checked_sub(1).and_then(|k| self.toks.get(k)) else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            fields.push(FieldItem {
                name: name_tok.text.clone(),
                outer: type_head(&self.toks[colon + 1..stop]).unwrap_or_default(),
                inner: inner_head(&self.toks[colon + 1..stop]),
            });
        }
        (fields, end)
    }

    /// Splits a delimited group into top-level comma-separated token
    /// ranges; returns them plus the index past the closing delimiter.
    fn split_group(&self, open: usize, od: &str, cd: &str) -> (Vec<(usize, usize)>, usize) {
        let mut pieces = Vec::new();
        let mut nest = 1i64;
        let mut angle = 0i64;
        let mut piece_start = open + 1;
        let mut j = open + 1;
        while j < self.toks.len() && nest > 0 {
            let t = &self.toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    s if s == od => nest += 1,
                    s if s == cd => nest -= 1,
                    "(" | "[" | "{" => nest += 1,
                    ")" | "]" | "}" => nest -= 1,
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "," if nest == 1 && angle == 0 => {
                        if j > piece_start {
                            pieces.push((piece_start, j));
                        }
                        piece_start = j + 1;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        let close = j.saturating_sub(1);
        if close > piece_start {
            pieces.push((piece_start, close));
        }
        (pieces, j)
    }

    fn parse_fn(&mut self, i: usize) -> usize {
        self.pending_attrs.clear();
        let name_tok = &self.toks[i + 1];
        let name = name_tok.text.clone();
        let line = self.toks[i].line;
        let in_test = self.toks[i].in_test;
        let mut j = i + 2;
        if self.toks.get(j).is_some_and(|t| is_punct(t, "<")) {
            j = self.skip_angles(j);
        }
        if !self.toks.get(j).is_some_and(|t| is_punct(t, "(")) {
            return i + 1; // malformed; recover at the keyword
        }
        let (param_pieces, after_params) = self.split_group(j, "(", ")");
        let params = self.parse_params(&param_pieces);
        // Signature tail: find the body `{` or a terminating `;` at
        // bracket/paren depth 0 (angles tracked for `-> Vec<Foo<'a>>`).
        // Tokens between `->` and a `where` clause or the body are the
        // return type; its head feeds the `inf_escape` Result check.
        let mut k = after_params;
        let mut nest = 0i64;
        let mut body = None;
        let mut arrow: Option<usize> = None;
        let mut ret_stop: Option<usize> = None;
        while k < self.toks.len() {
            let t = &self.toks[k];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => nest += 1,
                    ")" | "]" => nest -= 1,
                    "->" if nest == 0 && arrow.is_none() => arrow = Some(k + 1),
                    ";" if nest == 0 => {
                        ret_stop.get_or_insert(k);
                        k += 1;
                        break;
                    }
                    "{" if nest == 0 => {
                        ret_stop.get_or_insert(k);
                        let close = self.matching_brace(k);
                        body = Some((k + 1, close));
                        break;
                    }
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident && t.text == "where" && nest == 0 {
                // A where clause ends the return type but not the tail:
                // keep scanning for the body brace.
                ret_stop.get_or_insert(k);
            }
            k += 1;
        }
        let ret = arrow.and_then(|a| {
            let stop = ret_stop
                .unwrap_or(self.toks.len())
                .clamp(a, self.toks.len());
            type_head(&self.toks[a..stop])
        });
        let (self_type, trait_name) = match self.impls.last() {
            Some(ctx) => (ctx.self_type.clone(), ctx.trait_name.clone()),
            None => (None, None),
        };
        self.fns.push(FnItem {
            name,
            self_type,
            trait_name,
            line,
            in_test,
            params,
            ret,
            body,
        });
        // Resume *at* the body brace so depth tracking and nested items
        // inside the body are handled by the main loop.
        match body {
            Some(_) => k,
            None => k.max(i + 2),
        }
    }

    /// Index of the `}` matching the `{` at `open` (or EOF).
    fn matching_brace(&self, open: usize) -> usize {
        let mut nest = 0i64;
        let mut j = open;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if is_punct(t, "{") {
                nest += 1;
            } else if is_punct(t, "}") {
                nest -= 1;
                if nest == 0 {
                    return j;
                }
            }
            j += 1;
        }
        j
    }

    fn parse_params(&self, pieces: &[(usize, usize)]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for &(start, stop) in pieces {
            let slice = &self.toks[start..stop];
            // Receiver params (`&mut self`, `self: Pin<…>`) are handled
            // by the caller via the impl context; skip them here.
            if slice.iter().any(|t| is_ident(t, "self")) {
                continue;
            }
            let Some(colon) = (0..slice.len()).find(|&k| is_punct(&slice[k], ":")) else {
                continue;
            };
            // Simple binding: `[mut] name : Type`. Anything else
            // (tuple/struct patterns) contributes no typed binding.
            let before: Vec<&Token> = slice[..colon]
                .iter()
                .filter(|t| !(t.kind == TokenKind::Ident && t.text == "mut"))
                .collect();
            let [name_tok] = before.as_slice() else {
                continue;
            };
            if name_tok.kind != TokenKind::Ident {
                continue;
            }
            if let Some(head) = type_head(&slice[colon + 1..]) {
                out.push((name_tok.text.clone(), head));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&SourceModel::parse(src))
    }

    #[test]
    fn recovers_free_and_method_fns() {
        let src = "fn free(a: u64, b: &str) -> u64 { a }\n\
                   impl Engine {\n  fn step(&mut self, ev: Event) {}\n}\n\
                   impl Scheduler for Engine {\n  fn pop(&mut self) -> Option<Event> { None }\n}\n";
        let p = parse(src);
        let keys: Vec<String> = p.fns.iter().map(|f| f.key()).collect();
        assert_eq!(keys, ["free", "Engine::step", "Engine::pop"]);
        assert_eq!(
            p.fns[0].params,
            [("a".into(), "u64".into()), ("b".into(), "str".into())]
        );
        assert_eq!(p.fns[1].params, [("ev".into(), "Event".into())]);
        assert_eq!(p.fns[2].trait_name.as_deref(), Some("Scheduler"));
        assert!(p.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn impl_blocks_close_and_generics_skip() {
        let src = "impl<'a, T: Clone> Holder<'a, T> {\n  fn get(&self) -> &T { &self.0 }\n}\n\
                   fn after() {}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].key(), "Holder::get");
        assert_eq!(
            p.fns[1].key(),
            "after",
            "impl context must close at its brace"
        );
    }

    #[test]
    fn body_ranges_cover_exactly_the_braces() {
        let src = "fn f(x: u64) -> u64 { let y = g(x); y }\nfn g(x: u64) -> u64 { x }\n";
        let p = parse(src);
        let (s, e) = p.fns[0].body.unwrap();
        let texts: Vec<&str> = p.toks[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"g"), "{texts:?}");
        assert!(!texts.contains(&"fn"), "{texts:?}");
    }

    #[test]
    fn structs_with_fields_and_must_use() {
        let src = "#[must_use]\npub struct Seconds(f64);\n\
                   pub struct Analyzer {\n  karn: Option<KarnCore>,\n  pub depth: usize,\n}\n\
                   struct Marker;\n";
        let p = parse(src);
        assert_eq!(p.structs.len(), 3);
        let sec = &p.structs[0];
        assert!(sec.is_unit_newtype());
        assert_eq!(sec.fields[0].outer, "f64");
        let an = &p.structs[1];
        assert!(!an.must_use);
        assert_eq!(an.fields[0].name, "karn");
        assert_eq!(an.fields[0].outer, "Option");
        assert_eq!(an.fields[0].inner.as_deref(), Some("KarnCore"));
        assert_eq!(an.fields[1].outer, "usize");
    }

    #[test]
    fn must_use_does_not_leak_across_items() {
        let src = "#[must_use]\npub struct A(f64);\npub struct B(f64);\n";
        let p = parse(src);
        assert!(p.structs[0].must_use);
        assert!(!p.structs[1].must_use);
    }

    #[test]
    fn impl_trait_in_signature_is_not_an_item() {
        let src = "fn make() -> impl Iterator<Item = u64> { std::iter::empty() }\nfn after() {}\n";
        let p = parse(src);
        let keys: Vec<String> = p.fns.iter().map(|f| f.key()).collect();
        assert_eq!(keys, ["make", "after"]);
    }

    #[test]
    fn bodyless_and_test_fns() {
        let src = "trait T {\n  fn decl(&self);\n  fn dflt(&self) { self.decl() }\n}\n\
                   #[cfg(test)]\nmod tests {\n  fn t() {}\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].key(), "T::decl");
        assert!(p.fns[0].body.is_none());
        assert_eq!(p.fns[1].key(), "T::dflt");
        assert!(p.fns[1].body.is_some());
        assert!(p.fns[2].in_test);
    }

    #[test]
    fn recovery_survives_macros_and_weird_tokens() {
        let src = "macro_rules! m { ($x:expr) => { $x + 1 } }\n\
                   fn ok(q: &mut VecDeque<Ev>) { m!(q.len()); }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params, [("q".into(), "VecDeque".into())]);
    }

    #[test]
    fn where_clauses_and_nested_generics() {
        let src = "impl<O> Conn<O>\nwhere\n    O: Observer,\n{\n  fn run(&mut self, budget: Budget) -> Vec<Sample<'static>> { Vec::new() }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].key(), "Conn::run");
        assert_eq!(p.fns[0].params, [("budget".into(), "Budget".into())]);
        assert_eq!(p.fns[0].ret.as_deref(), Some("Vec"));
    }

    #[test]
    fn return_type_heads() {
        let src = "fn a() -> f64 { 0.0 }\n\
                   fn b(p: f64) -> Result<f64, ModelError> { Ok(p) }\n\
                   fn c() {}\n\
                   fn d() -> (f64, f64) { (0.0, 0.0) }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].ret.as_deref(), Some("f64"));
        assert_eq!(p.fns[1].ret.as_deref(), Some("Result"));
        assert_eq!(p.fns[2].ret, None);
        // Tuple return: no ident at angle-depth 0 outside the parens —
        // the head degrades to the last component, which is acceptable
        // for the Result-or-not distinction the consumer makes.
        assert!(p.fns[3].body.is_some());
    }

    #[test]
    fn const_fn_and_qualifier_stacks() {
        let src = "pub const fn floor() -> f64 { 1e-12 }\n\
                   pub(crate) async unsafe fn go(x: u64) -> u64 { x }\n\
                   extern \"C\" fn cb(v: f64) -> f64 { v }\n";
        let p = parse(src);
        let keys: Vec<String> = p.fns.iter().map(|f| f.key()).collect();
        assert_eq!(keys, ["floor", "go", "cb"]);
        assert_eq!(p.fns[0].ret.as_deref(), Some("f64"));
        assert_eq!(p.fns[1].params, [("x".into(), "u64".into())]);
    }

    #[test]
    fn fn_level_where_clause_does_not_pollute_return_type() {
        let src = "fn fold<T, F>(init: T, f: F) -> T\nwhere\n    F: Fn(T) -> T,\n    T: Clone,\n{ init }\n\
                   fn after() -> usize { 0 }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].key(), "fold");
        assert_eq!(
            p.fns[0].ret.as_deref(),
            Some("T"),
            "where-clause predicates must not replace the return head"
        );
        assert!(p.fns[0].body.is_some());
        assert_eq!(p.fns[1].key(), "after");
        assert_eq!(p.fns[1].ret.as_deref(), Some("usize"));
    }

    #[test]
    fn lifetime_heavy_signatures() {
        let src = "fn pick<'a, 'b: 'a>(xs: &'a [Sample<'b>], k: usize) -> &'a Sample<'b> { &xs[k] }\n\
                   impl<'w> Wheel<'w> {\n  fn slot(&'w self, at: Tick) -> Option<&'w Slot> { None }\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].key(), "pick");
        assert_eq!(
            p.fns[0].params,
            [("xs".into(), "Sample".into()), ("k".into(), "usize".into())]
        );
        assert_eq!(p.fns[0].ret.as_deref(), Some("Sample"));
        assert_eq!(p.fns[1].key(), "Wheel::slot");
        assert_eq!(p.fns[1].ret.as_deref(), Some("Option"));
    }

    #[test]
    fn nested_generic_params_and_const_generics() {
        let src = "fn merge<const N: usize>(lanes: [Ev; 4], map: BTreeMap<String, Vec<(u64, f64)>>) -> usize { N }\n\
                   fn after() {}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2, "{:?}", p.fns);
        assert_eq!(
            p.fns[0].params,
            [
                ("lanes".into(), "Ev".into()),
                ("map".into(), "BTreeMap".into())
            ]
        );
        assert_eq!(p.fns[0].ret.as_deref(), Some("usize"));
    }

    #[test]
    fn impl_trait_return_and_dyn_boxes() {
        let src = "fn stream() -> impl Iterator<Item = f64> { std::iter::empty() }\n\
                   fn boxed() -> Box<dyn Fn(f64) -> f64> { Box::new(|x| x) }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].ret.as_deref(), Some("Iterator"));
        assert_eq!(p.fns[1].ret.as_deref(), Some("Box"));
    }
}
