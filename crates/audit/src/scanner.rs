//! Citation scanner: collects `//= pftk#<id>` annotations from source.
//!
//! Annotation grammar (one per line, duvet-style):
//!
//! ```text
//! //= pftk#eq-32              implementation citation
//! //= pftk#eq-32 type=test    test citation
//! ```
//!
//! A citation line may be preceded by any indentation. Consecutive
//! citation lines form one *block*; repeating the same claim id within a
//! block is reported as a duplicate (it is always an editing mistake —
//! the coverage count would silently double otherwise).

use std::path::{Path, PathBuf};

/// What kind of coverage a citation contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CitationKind {
    /// Cites the claim from implementation code.
    Impl,
    /// Cites the claim from a test (`type=test`).
    Test,
}

/// One parsed citation.
#[derive(Debug, Clone)]
pub struct Citation {
    /// Claim id cited, e.g. `eq-32`.
    pub claim: String,
    /// Implementation or test coverage.
    pub kind: CitationKind,
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line number of the annotation.
    pub line: usize,
    /// True when the annotation repeats an id within its citation block.
    pub duplicate: bool,
    /// True when the annotation was recognized as a citation but its
    /// arguments did not parse (e.g. `type=bench`). Malformed citations
    /// are reported as unknown-citation errors so typos cannot silently
    /// drop coverage.
    pub malformed: bool,
}

/// Scans one file's text for citations. `file` should be workspace-relative.
pub fn scan_citations(file: &Path, text: &str) -> Vec<Citation> {
    let mut out = Vec::new();
    // Ids seen in the current contiguous block of `//=` lines.
    let mut block: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_start();
        let Some(body) = line.strip_prefix("//=") else {
            block.clear();
            continue;
        };
        let body = body.trim();
        let Some(rest) = body.strip_prefix("pftk#") else {
            // A `//=` line that is not a pftk citation (e.g. another spec
            // namespace) is left alone but still separates blocks.
            block.clear();
            continue;
        };
        let mut parts = rest.split_whitespace();
        let claim = parts.next().unwrap_or("").to_string();
        let mut kind = CitationKind::Impl;
        let mut malformed = claim.is_empty()
            || !claim
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        for arg in parts {
            match arg {
                "type=test" => kind = CitationKind::Test,
                "type=implementation" | "type=impl" => kind = CitationKind::Impl,
                _ => malformed = true,
            }
        }
        let duplicate = block.contains(&claim);
        block.push(claim.clone());
        out.push(Citation {
            claim,
            kind,
            file: file.to_path_buf(),
            line: idx + 1,
            duplicate,
            malformed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<Citation> {
        scan_citations(Path::new("x.rs"), text)
    }

    #[test]
    fn parses_impl_and_test_citations() {
        let cites = scan("    //= pftk#eq-20\n//= pftk#eq-28 type=test\nfn f() {}\n");
        assert_eq!(cites.len(), 2);
        assert_eq!(cites[0].claim, "eq-20");
        assert_eq!(cites[0].kind, CitationKind::Impl);
        assert_eq!(cites[0].line, 1);
        assert_eq!(cites[1].kind, CitationKind::Test);
        assert!(!cites[0].duplicate && !cites[0].malformed);
    }

    #[test]
    fn flags_duplicates_within_a_block_only() {
        let cites = scan("//= pftk#eq-5\n//= pftk#eq-5\nfn a() {}\n//= pftk#eq-5\n");
        assert_eq!(cites.len(), 3);
        assert!(!cites[0].duplicate);
        assert!(cites[1].duplicate, "same id twice in one block");
        assert!(!cites[2].duplicate, "code line resets the block");
    }

    #[test]
    fn flags_malformed_arguments() {
        let cites = scan("//= pftk#eq-5 type=bench\n//= pftk#\n//= pftk#bad id\n");
        assert!(cites.iter().all(|c| c.malformed));
    }

    #[test]
    fn ignores_non_pftk_spec_lines_and_plain_comments() {
        let cites = scan("//= rfc9000#frame\n// pftk#eq-5 not a citation\n//== pftk#x\n");
        assert!(cites.is_empty());
    }
}
