//! Citation scanner: collects `//= pftk#<id>` annotations from source.
//!
//! Annotation grammar (one per line, duvet-style):
//!
//! ```text
//! //= pftk#eq-32              implementation citation
//! //= pftk#eq-32 type=test    test citation
//! ```
//!
//! A citation must be a *standalone* comment line (any indentation, no
//! code on the line). Consecutive citation lines form one *block*;
//! repeating the same claim id within a block is reported as a duplicate
//! (it is always an editing mistake — the coverage count would silently
//! double otherwise).
//!
//! The scanner reads comment tokens from the shared [`crate::lexer`]
//! model, so citation-looking text inside string literals, raw strings,
//! or block comments never parses as a citation. Citations inside
//! `#[cfg(test)]` regions are marked [`Citation::in_test`]: a `type=test`
//! citation there is the normal way to cite from a unit test, but an
//! *implementation* citation inside test code would fake impl coverage
//! and is reported as an error by the conformance pass.

use std::path::{Path, PathBuf};

use crate::lexer::{SourceModel, TokenKind};

/// What kind of coverage a citation contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CitationKind {
    /// Cites the claim from implementation code.
    Impl,
    /// Cites the claim from a test (`type=test`).
    Test,
}

/// One parsed citation.
#[derive(Debug, Clone)]
pub struct Citation {
    /// Claim id cited, e.g. `eq-32`.
    pub claim: String,
    /// Implementation or test coverage.
    pub kind: CitationKind,
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line number of the annotation.
    pub line: usize,
    /// True when the annotation repeats an id within its citation block.
    pub duplicate: bool,
    /// True when the annotation was recognized as a citation but its
    /// arguments did not parse (e.g. `type=bench`). Malformed citations
    /// are reported as unknown-citation errors so typos cannot silently
    /// drop coverage.
    pub malformed: bool,
    /// True when the citation sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// Scans a lexed file for citations. `file` should be workspace-relative.
pub fn scan_citations(file: &Path, model: &SourceModel) -> Vec<Citation> {
    let mut out: Vec<Citation> = Vec::new();
    // Ids seen in the current contiguous block of citation lines, with the
    // line the block currently ends on.
    let mut block: Vec<String> = Vec::new();
    let mut block_end: usize = 0;
    for tok in model.comments() {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let Some(body) = tok.text.strip_prefix("//=") else {
            continue;
        };
        // Trailing citations (code before the comment on the same line)
        // are not part of the grammar.
        if model.line_has_code(tok.line) {
            continue;
        }
        let body = body.trim();
        let Some(rest) = body.strip_prefix("pftk#") else {
            // A `//=` line from another spec namespace is left alone; it
            // still separates blocks (the consecutive-line rule below
            // breaks anyway unless it is immediately adjacent, in which
            // case treating it as a separator matches the old scanner).
            block.clear();
            continue;
        };
        let mut parts = rest.split_whitespace();
        let claim = parts.next().unwrap_or("").to_string();
        let mut kind = CitationKind::Impl;
        let mut malformed = claim.is_empty()
            || !claim
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        for arg in parts {
            match arg {
                "type=test" => kind = CitationKind::Test,
                "type=implementation" | "type=impl" => kind = CitationKind::Impl,
                _ => malformed = true,
            }
        }
        // A gap (any non-citation line) resets the duplicate-detection
        // block: blocks are maximal runs of citations on consecutive lines.
        if tok.line != block_end + 1 {
            block.clear();
        }
        block_end = tok.line;
        let duplicate = block.contains(&claim);
        block.push(claim.clone());
        out.push(Citation {
            claim,
            kind,
            file: file.to_path_buf(),
            line: tok.line,
            duplicate,
            malformed,
            in_test: tok.in_test,
        });
    }
    out
}

/// Convenience wrapper: lexes `text` and scans it. Test helper and
/// single-file entry point.
pub fn scan_text(file: &Path, text: &str) -> Vec<Citation> {
    scan_citations(file, &SourceModel::parse(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Vec<Citation> {
        scan_text(Path::new("x.rs"), text)
    }

    #[test]
    fn parses_impl_and_test_citations() {
        let cites = scan("    //= pftk#eq-20\n//= pftk#eq-28 type=test\nfn f() {}\n");
        assert_eq!(cites.len(), 2);
        assert_eq!(cites[0].claim, "eq-20");
        assert_eq!(cites[0].kind, CitationKind::Impl);
        assert_eq!(cites[0].line, 1);
        assert_eq!(cites[1].kind, CitationKind::Test);
        assert!(!cites[0].duplicate && !cites[0].malformed);
        assert!(!cites[0].in_test);
    }

    #[test]
    fn flags_duplicates_within_a_block_only() {
        let cites = scan("//= pftk#eq-5\n//= pftk#eq-5\nfn a() {}\n//= pftk#eq-5\n");
        assert_eq!(cites.len(), 3);
        assert!(!cites[0].duplicate);
        assert!(cites[1].duplicate, "same id twice in one block");
        assert!(!cites[2].duplicate, "code line resets the block");
        let gap = scan("//= pftk#eq-5\n\n//= pftk#eq-5\n");
        assert!(!gap[1].duplicate, "blank line resets the block");
    }

    #[test]
    fn flags_malformed_arguments() {
        let cites = scan("//= pftk#eq-5 type=bench\n//= pftk#\n//= pftk#bad id\n");
        assert!(cites.iter().all(|c| c.malformed));
    }

    #[test]
    fn ignores_non_pftk_spec_lines_and_plain_comments() {
        let cites = scan("//= rfc9000#frame\n// pftk#eq-5 not a citation\n//== pftk#x\n");
        assert!(cites.is_empty());
    }

    #[test]
    fn citations_inside_strings_and_block_comments_do_not_count() {
        let text = "let s = \"//= pftk#eq-1\";\nlet r = r#\"\n//= pftk#eq-2\n\"#;\n/*\n//= pftk#eq-3\n*/\nfn f() {}\n";
        assert!(scan(text).is_empty(), "{:?}", scan(text));
    }

    #[test]
    fn trailing_citation_after_code_does_not_count() {
        let cites = scan("fn f() {} //= pftk#eq-1\n");
        assert!(cites.is_empty());
    }

    #[test]
    fn citations_inside_cfg_test_are_marked() {
        let text = "//= pftk#eq-1\nfn f() {}\n#[cfg(test)]\nmod tests {\n    //= pftk#eq-1 type=test\n    fn t() {}\n}\n";
        let cites = scan(text);
        assert_eq!(cites.len(), 2);
        assert!(!cites[0].in_test);
        assert!(cites[1].in_test);
        assert_eq!(cites[1].kind, CitationKind::Test);
    }
}
