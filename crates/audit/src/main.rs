//! `pftk-audit` CLI: run the conformance + lint audit and gate on it.
//!
//! ```text
//! pftk-audit [--root <dir>] [--json <path>] [--quiet]
//! ```
//!
//! With no arguments the workspace root is located by walking up from the
//! current directory to the first directory containing
//! `specs/pftk-spec.toml`; the JSON report is written to
//! `results/conformance.json` under that root. Exits 0 when the audit is
//! clean, 1 on findings, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => match argv.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root requires a directory argument"),
            },
            "--json" => match argv.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json requires a file argument"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: pftk-audit [--root <dir>] [--json <path>] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("pftk-audit: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match pftk_audit::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "pftk-audit: no specs/pftk-spec.toml found above {} (use --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let outcome = match pftk_audit::run_audit(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("pftk-audit: {e}");
            return ExitCode::from(2);
        }
    };

    let json_path = json_path.unwrap_or_else(|| root.join("results/conformance.json"));
    let report = pftk_audit::report::to_json(&outcome);
    let rendered = match serde_json::to_string_pretty(&report) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pftk-audit: serializing report: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(parent) = json_path.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("pftk-audit: creating {}: {e}", parent.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&json_path, rendered + "\n") {
        eprintln!("pftk-audit: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    if !quiet {
        print!("{}", pftk_audit::report::render_summary(&outcome));
        println!("report: {}", json_path.display());
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pftk-audit: {msg}");
    eprintln!("usage: pftk-audit [--root <dir>] [--json <path>] [--quiet]");
    ExitCode::from(2)
}
