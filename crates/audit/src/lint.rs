//! Lint pass: panic-prone calls, lossy casts, NaN-hazard comparisons —
//! plus the shared whitelist/scope infrastructure used by the newer
//! determinism ([`crate::nondet`]) and concurrency ([`crate::atomics`])
//! families.
//!
//! Rules and scopes:
//!
//! | rule             | flags                                     | scope                          |
//! |------------------|-------------------------------------------|--------------------------------|
//! | `unwrap`         | `.unwrap()`                               | library code (`*/src`)         |
//! | `expect`         | `.expect(`                                | library code (`*/src`)         |
//! | `panic`          | `panic!`                                  | library code (`*/src`)         |
//! | `cast`           | `as <numeric type>`                       | `crates/model`, `crates/sim`   |
//! | `float-eq`       | `==` / `!=` against a float literal       | model, sim, trace              |
//! | `wall-clock`     | `Instant::now` / `SystemTime` reads       | library code (see policies)    |
//! | `unordered-iter` | `HashMap` / `HashSet` in result paths     | model, sim, trace, testbed     |
//! | `rng-stream`     | RNG construction outside `sim::rng`       | library code (see policies)    |
//! | `relaxed_atomic` | `Ordering::Relaxed` atomic accesses       | library code                   |
//! | `hot_alloc`      | allocation reachable from a hot root      | call graph (see [`crate::hotpath`]) |
//! | `hot_panic`      | panic source reachable from a hot root    | call graph (see [`crate::hotpath`]) |
//! | `hot_block`      | blocking call reachable from a hot root   | call graph (see [`crate::hotpath`]) |
//! | `unit_escape`    | unit-newtype mixing / `.0` stripping      | `crates/model`, `crates/sim`   |
//! | `div_domain`     | denominator interval may contain 0        | value ranges (see [`crate::numlint`]) |
//! | `nan_source`     | `sqrt(<0)` / `0÷0` / `inf−inf` reachable  | value ranges (see [`crate::numlint`]) |
//! | `inf_escape`     | root may return non-finite, not `Result`  | value ranges (see [`crate::numlint`]) |
//! | `cancel_risk`    | near-equal subtraction feeding a division | value ranges (see [`crate::numlint`]) |
//! | `stale_domain`   | `[[domain]]` root/param out of sync       | value ranges (see [`crate::numlint`]) |
//!
//! `#[cfg(test)]` regions are skipped (token-tracked by the
//! [`crate::lexer`]), as are `tests/`, `benches/` and `examples/`
//! directories (path-scoped). Whole crates or files can be exempted from
//! a rule by a `[[policy]]` entry in `specs/pftk-spec.toml` (e.g.
//! `crates/bench` measures wall time for a living, so `wall-clock` does
//! not apply there) — policy beats per-site whitelist sprawl when the
//! exemption is structural.
//!
//! Deliberate single sites are whitelisted with a `//~ allow(<rule>)`
//! comment, either trailing the offending line or alone on the line(s)
//! above it, and **must** carry a justification after the closing paren:
//!
//! ```text
//! let ns = (secs * 1e9).round() as u64; //~ allow(cast): saturating by construction
//! //~ allow(expect): arithmetic overflow here is a simulation bug
//! let t = base.checked_add(d).expect("simulation clock overflow");
//! ```
//!
//! A directive without a `: reason` suppresses its target rule but is
//! itself reported as an `unjustified-allow` violation, so the whitelist
//! can never silently grow bare entries.
//!
//! Detection runs over the lexer's token stream, so occurrences inside
//! string literals, raw strings, char literals, or comments never count.
//! `float-eq` fires only when one operand token is a float literal
//! (contains a `.`), which catches the NaN-hazard pattern `x == 0.0`
//! without false-firing on integer comparisons.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::lexer::{SourceModel, Token, TokenKind};
use crate::spec::LintPolicy;

/// Lint rule identifiers, as used in `//~ allow(<rule>)` and `[[policy]]`
/// entries.
pub const RULES: [&str; 18] = [
    "unwrap",
    "expect",
    "panic",
    "cast",
    "float-eq",
    "wall-clock",
    "unordered-iter",
    "rng-stream",
    "relaxed_atomic",
    "hot_alloc",
    "hot_panic",
    "hot_block",
    "unit_escape",
    "div_domain",
    "nan_source",
    "inf_escape",
    "cancel_risk",
    "stale_domain",
];

/// One lint finding (already filtered against the whitelist).
#[derive(Debug, Clone)]
pub struct LintViolation {
    /// Which rule fired (one of [`RULES`], or `unjustified-allow`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Call-chain evidence for interprocedural findings: hot root first,
    /// the function containing the site last, then the operation itself
    /// (e.g. `alloc: Vec::push`). Empty for intraprocedural rules.
    pub chain: Vec<String>,
}

/// Whether `file` (workspace-relative) is library code subject to the
/// library-scoped rules: any `src/` tree, at the root or under `crates/`.
pub(crate) fn is_library_code(file: &Path) -> bool {
    let mut comps = file.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("src") => true,
        Some("crates") => {
            comps.next(); // crate name
            comps.next().as_deref() == Some("src")
        }
        _ => false,
    }
}

fn starts_with_dir(file: &Path, prefix: &str) -> bool {
    file.starts_with(prefix)
}

/// Whether `rule` applies to `file` at all, before policy exemptions.
pub(crate) fn rule_in_scope(rule: &str, file: &Path) -> bool {
    if !is_library_code(file) {
        return false;
    }
    let model_sim = starts_with_dir(file, "crates/model") || starts_with_dir(file, "crates/sim");
    let result_path = model_sim
        || starts_with_dir(file, "crates/trace")
        || starts_with_dir(file, "crates/testbed");
    match rule {
        "cast" => model_sim,
        "float-eq" => model_sim || starts_with_dir(file, "crates/trace"),
        "unordered-iter" => result_path,
        // The PFTK formulas mix packets, rounds, seconds and probabilities;
        // the unit-newtype escape hatch is policed where those formulas
        // live and run.
        "unit_escape" => model_sim,
        // The value-range family follows [[domain]] roots, which all live
        // in the model kernels today; scoping to model/sim keeps helper
        // crates (trace parsing, report rendering) out of interval math
        // they never perform.
        "div_domain" | "nan_source" | "inf_escape" | "cancel_risk" | "stale_domain" => model_sim,
        // The panic family, wall-clock, rng-stream and relaxed_atomic
        // apply to all library code; structural exemptions (bench timing,
        // the seeded-stream API itself) come from `[[policy]]` entries.
        _ => true,
    }
}

/// Whether a `[[policy]]` entry exempts `file` from `rule`.
pub(crate) fn policy_exempts(policies: &[LintPolicy], rule: &str, file: &Path) -> bool {
    policies
        .iter()
        .any(|p| p.allow == rule && file.starts_with(&p.path))
}

/// One parsed `//~ allow(...)` directive.
#[derive(Debug, Clone)]
pub(crate) struct AllowEntry {
    /// Rules the directive names.
    pub rules: Vec<String>,
    /// Whether a `: reason` follows the directive.
    pub justified: bool,
    /// Line of the directive comment itself.
    pub directive_line: usize,
    /// Line the directive applies to (same line for trailing directives,
    /// the line after the standalone run for standalone ones).
    pub applies_to: usize,
    /// Whether the directive sits in `#[cfg(test)]` code (exempt from the
    /// justification requirement — nothing lints there anyway).
    pub in_test: bool,
}

/// All `//~ allow` directives of one file, resolved to the lines they
/// whitelist.
#[derive(Debug, Default)]
pub(crate) struct Allows {
    entries: Vec<AllowEntry>,
}

impl Allows {
    /// Extracts and resolves directives from a lexed file.
    pub(crate) fn from_model(model: &SourceModel) -> Allows {
        // Collect raw directives with their standalone-ness.
        let mut raw: Vec<(usize, bool, bool, Vec<String>, bool)> = Vec::new();
        for tok in model.comments() {
            if tok.kind != TokenKind::LineComment || !tok.text.starts_with("//~") {
                continue;
            }
            let (rules, justified) = parse_allow_directive(&tok.text);
            if rules.is_empty() {
                continue;
            }
            let standalone = !model.line_has_code(tok.line);
            raw.push((tok.line, standalone, justified, rules, tok.in_test));
        }
        // Resolve application lines: a trailing directive applies to its
        // own line; a run of standalone directive lines applies to the
        // first line after the run.
        let standalone_lines: BTreeSet<usize> = raw
            .iter()
            .filter(|(_, standalone, ..)| *standalone)
            .map(|(line, ..)| *line)
            .collect();
        let entries = raw
            .into_iter()
            .map(|(line, standalone, justified, rules, in_test)| {
                let applies_to = if standalone {
                    let mut end = line;
                    while standalone_lines.contains(&(end + 1)) {
                        end += 1;
                    }
                    end + 1
                } else {
                    line
                };
                AllowEntry {
                    rules,
                    justified,
                    directive_line: line,
                    applies_to,
                    in_test,
                }
            })
            .collect();
        Allows { entries }
    }

    /// Whether `rule` is whitelisted on `line` (justified or not — bare
    /// directives still suppress, but are reported separately).
    pub(crate) fn allowed(&self, line: usize, rule: &str) -> bool {
        self.entries
            .iter()
            .any(|e| e.applies_to == line && e.rules.iter().any(|r| r == rule))
    }

    /// Directives lacking a `: reason` justification (outside test code).
    pub(crate) fn unjustified(&self) -> impl Iterator<Item = &AllowEntry> {
        self.entries.iter().filter(|e| !e.justified && !e.in_test)
    }
}

/// Parses one `//~ …` comment: the rules named by `allow(a, b)` groups
/// and whether a non-empty `: reason` follows the last group.
fn parse_allow_directive(text: &str) -> (Vec<String>, bool) {
    let mut rules = Vec::new();
    let mut justified = false;
    let mut rest = &text[3..]; // past `//~`
    while let Some(pos) = rest.find("allow(") {
        rest = &rest[pos + "allow(".len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    rules.push(rule.to_string());
                }
            }
            rest = &rest[end + 1..];
            let after = rest.trim_start();
            justified = after
                .strip_prefix(':')
                .is_some_and(|r| !r.trim().is_empty());
        } else {
            break;
        }
    }
    (rules, justified)
}

/// Looks up the trimmed source line for a violation snippet.
pub(crate) fn snippet_at(text: &str, line: usize) -> String {
    text.lines()
        .nth(line.saturating_sub(1))
        .unwrap_or("")
        .trim()
        .to_string()
}

/// Shared per-file lint context handed to every rule family.
pub(crate) struct LintCtx<'a> {
    pub(crate) file: &'a Path,
    pub(crate) text: &'a str,
    pub(crate) allows: &'a Allows,
    pub(crate) policies: &'a [LintPolicy],
    /// (rule, line) pairs already reported, so one line never yields the
    /// same rule twice.
    seen: BTreeSet<(&'static str, usize)>,
}

impl<'a> LintCtx<'a> {
    pub(crate) fn new(
        file: &'a Path,
        text: &'a str,
        allows: &'a Allows,
        policies: &'a [LintPolicy],
    ) -> Self {
        LintCtx {
            file,
            text,
            allows,
            policies,
            seen: BTreeSet::new(),
        }
    }

    /// Whether `rule` applies to this file (scope minus policy).
    pub(crate) fn active(&self, rule: &str) -> bool {
        rule_in_scope(rule, self.file) && !policy_exempts(self.policies, rule, self.file)
    }

    /// Records a violation of `rule` at `line` unless whitelisted or
    /// already reported for that line.
    pub(crate) fn push(&mut self, out: &mut Vec<LintViolation>, rule: &'static str, line: usize) {
        if self.allows.allowed(line, rule) || !self.seen.insert((rule, line)) {
            return;
        }
        out.push(LintViolation {
            rule,
            file: self.file.to_path_buf(),
            line,
            snippet: snippet_at(self.text, line),
            chain: Vec::new(),
        });
    }
}

/// Runs the classic rule families (panic family, casts, float equality)
/// plus the `unjustified-allow` check over one lexed file.
pub fn lint_file(
    file: &Path,
    text: &str,
    model: &SourceModel,
    policies: &[LintPolicy],
) -> Vec<LintViolation> {
    let allows = Allows::from_model(model);
    let mut ctx = LintCtx::new(file, text, &allows, policies);
    let mut out = Vec::new();

    // Bare `//~ allow(...)` directives without a reason: reported even in
    // files outside every rule scope — the whitelist grammar is global.
    if is_library_code(file) {
        for e in allows.unjustified() {
            out.push(LintViolation {
                rule: "unjustified-allow",
                file: file.to_path_buf(),
                line: e.directive_line,
                snippet: snippet_at(text, e.directive_line),
                chain: Vec::new(),
            });
        }
    }

    if !is_library_code(file) {
        return out;
    }

    let toks: Vec<&Token> = model.code_tokens().filter(|t| !t.in_test).collect();
    let ident = |i: usize, name: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    };
    let punct = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    };
    let is_float = |i: usize| toks.get(i).is_some_and(|t| t.kind == TokenKind::Float);

    const NUMERIC: [&str; 14] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ];

    for i in 0..toks.len() {
        let line = toks[i].line;
        if punct(i, ".") && ident(i + 1, "unwrap") && punct(i + 2, "(") && ctx.active("unwrap") {
            ctx.push(&mut out, "unwrap", toks[i + 1].line);
        }
        if punct(i, ".") && ident(i + 1, "expect") && punct(i + 2, "(") && ctx.active("expect") {
            ctx.push(&mut out, "expect", toks[i + 1].line);
        }
        if ident(i, "panic") && punct(i + 1, "!") && ctx.active("panic") {
            ctx.push(&mut out, "panic", line);
        }
        if ident(i, "as")
            && toks
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident && NUMERIC.contains(&t.text.as_str()))
            && ctx.active("cast")
        {
            ctx.push(&mut out, "cast", line);
        }
        if punct(i, "==") || punct(i, "!=") {
            // `x == 0.5`, `0.5 != x`, `x == -0.5`.
            let rhs_float = is_float(i + 1) || (punct(i + 1, "-") && is_float(i + 2));
            let lhs_float = i > 0 && is_float(i - 1);
            if (rhs_float || lhs_float) && ctx.active("float-eq") {
                ctx.push(&mut out, "float-eq", line);
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, text: &str) -> Vec<LintViolation> {
        lint_file(Path::new(path), text, &SourceModel::parse(text), &[])
    }

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let text = "fn f() {\n  let x = g().unwrap();\n  let y = h().expect(\"no\");\n  panic!(\"boom\");\n}\n";
        let v = lint("crates/model/src/a.rs", text);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["unwrap", "expect", "panic"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn skips_cfg_test_modules_and_non_src_paths() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        let v = lint("crates/model/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
        assert!(lint("crates/model/tests/t.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(lint("crates/model/benches/b.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn string_and_comment_contents_do_not_fire() {
        let text = "fn f() {\n  let s = \"call .unwrap() or panic!\";\n  // .expect( in a comment\n  /* panic! in\n     a block .unwrap() */\n  let c = 'x';\n}\n";
        assert!(lint("crates/model/src/a.rs", text).is_empty());
    }

    #[test]
    fn raw_strings_and_multiline_strings_do_not_fire() {
        let text = "fn f() {\n  let r = r#\"x.unwrap() panic! \"quoted\" \"#;\n  let m = \"line1\n.unwrap()\nline3\";\n}\n";
        assert!(lint("crates/model/src/a.rs", text).is_empty(), "{text}");
    }

    #[test]
    fn allow_directives_whitelist_same_or_next_line() {
        let trailing = "fn f() { x.unwrap(); } //~ allow(unwrap): reason\n";
        assert!(lint("crates/model/src/a.rs", trailing).is_empty());
        let preceding =
            "//~ allow(expect): overflow is a bug\nfn f() { x.expect(\"overflow\"); }\n";
        assert!(lint("crates/model/src/a.rs", preceding).is_empty());
        let stacked =
            "//~ allow(unwrap): a\n//~ allow(expect): b\nfn f() { x.expect(\"e\").unwrap(); }\n";
        assert!(lint("crates/model/src/a.rs", stacked).is_empty());
        let wrong_rule = "fn f() { x.unwrap(); } //~ allow(cast): still wrong rule\n";
        let v = lint("crates/model/src/a.rs", wrong_rule);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn bare_allow_suppresses_but_is_reported() {
        let text = "fn f() { x.unwrap(); } //~ allow(unwrap)\n";
        let v = lint("crates/model/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unjustified-allow");
        let fine = "fn f() { x.unwrap(); } //~ allow(unwrap): deliberate\n";
        assert!(lint("crates/model/src/a.rs", fine).is_empty());
    }

    #[test]
    fn casts_flagged_only_in_model_and_sim() {
        let text = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert_eq!(lint("crates/model/src/a.rs", text).len(), 1);
        assert_eq!(lint("crates/sim/src/a.rs", text).len(), 1);
        assert!(lint("crates/trace/src/a.rs", text).is_empty());
        let not_numeric = "fn f(x: &dyn Any) { x as &dyn Other; }\n";
        assert!(lint("crates/model/src/a.rs", not_numeric).is_empty());
    }

    #[test]
    fn float_eq_heuristic() {
        assert_eq!(
            lint(
                "crates/trace/src/a.rs",
                "fn f(x: f64) -> bool { x == 0.0 }\n"
            )
            .len(),
            1
        );
        assert_eq!(
            lint(
                "crates/model/src/a.rs",
                "fn f(x: f64) -> bool { 1.5 != x }\n"
            )
            .len(),
            1
        );
        assert_eq!(
            lint(
                "crates/model/src/a.rs",
                "fn f(x: f64) -> bool { x == -0.5 }\n"
            )
            .len(),
            1
        );
        assert!(lint(
            "crates/trace/src/a.rs",
            "fn f(x: usize) -> bool { x == 0 }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/trace/src/a.rs",
            "fn f(x: f64) -> bool { x <= 0.5 }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/repro/src/a.rs",
            "fn f(x: f64) -> bool { x == 0.0 }\n"
        )
        .is_empty());
    }

    #[test]
    fn policies_exempt_whole_subtrees() {
        let policy = vec![LintPolicy {
            path: "crates/model".into(),
            allow: "unwrap".into(),
            reason: "test".into(),
        }];
        let text = "fn f() { x.unwrap(); }\n";
        let v = lint_file(
            Path::new("crates/model/src/a.rs"),
            text,
            &SourceModel::parse(text),
            &policy,
        );
        assert!(v.is_empty(), "{v:?}");
        let v = lint_file(
            Path::new("crates/sim/src/a.rs"),
            text,
            &SourceModel::parse(text),
            &policy,
        );
        assert_eq!(v.len(), 1, "other crates unaffected");
    }

    #[test]
    fn lifetimes_do_not_break_the_lexer() {
        let text = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { h().unwrap(); }\n";
        assert_eq!(lint("crates/model/src/a.rs", text).len(), 1);
    }
}
