//! Lint pass: panic-prone calls, lossy casts, NaN-hazard comparisons.
//!
//! Three rules, each scoped to where the hazard matters:
//!
//! | rule       | flags                                   | scope                          |
//! |------------|-----------------------------------------|--------------------------------|
//! | `unwrap`   | `.unwrap()`                             | library code (`*/src`)         |
//! | `expect`   | `.expect(`                              | library code (`*/src`)         |
//! | `panic`    | `panic!`                                | library code (`*/src`)         |
//! | `cast`     | `as <numeric type>`                     | `crates/model`, `crates/sim`   |
//! | `float-eq` | `==` / `!=` against a float literal     | model, sim, trace              |
//!
//! `#[cfg(test)]` modules are skipped (brace-tracked), as are `tests/`,
//! `benches/` and `examples/` directories (path-scoped). Deliberate
//! sites are whitelisted with a `//~ allow(<rule>)` comment, either
//! trailing the offending line or alone on the line above it:
//!
//! ```text
//! let ns = (secs * 1e9).round() as u64; //~ allow(cast): saturating by construction
//! //~ allow(expect): arithmetic overflow here is a simulation bug
//! let t = base.checked_add(d).expect("simulation clock overflow");
//! ```
//!
//! Detection is line-based over *sanitized* text (string literals and
//! comments removed), so occurrences inside strings or docs never count.
//! `float-eq` is a heuristic: it fires only when one operand token is a
//! float literal (contains a `.`), which catches the NaN-hazard pattern
//! `x == 0.0` without false-firing on integer comparisons.

use std::path::{Path, PathBuf};

/// Lint rule identifiers, as used in `//~ allow(<rule>)`.
pub const RULES: [&str; 5] = ["unwrap", "expect", "panic", "cast", "float-eq"];

/// One lint finding (already filtered against the whitelist).
#[derive(Debug, Clone)]
pub struct LintViolation {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Whether `file` (workspace-relative) is library code subject to the
/// panic-family rules: any `src/` tree, at the root or under `crates/`.
fn is_library_code(file: &Path) -> bool {
    let mut comps = file.components().map(|c| c.as_os_str().to_string_lossy());
    match comps.next().as_deref() {
        Some("src") => true,
        Some("crates") => {
            comps.next(); // crate name
            comps.next().as_deref() == Some("src")
        }
        _ => false,
    }
}

fn starts_with_dir(file: &Path, prefix: &str) -> bool {
    file.starts_with(prefix)
}

/// Lints one file, returning unwhitelisted violations.
pub fn lint_file(file: &Path, text: &str) -> Vec<LintViolation> {
    let library = is_library_code(file);
    if !library {
        return Vec::new();
    }
    let cast_scope = starts_with_dir(file, "crates/model") || starts_with_dir(file, "crates/sim");
    let float_scope = cast_scope || starts_with_dir(file, "crates/trace");

    let mut out = Vec::new();
    let mut sanitizer = Sanitizer::default();
    let mut skip = TestSkip::default();
    // allow-rules carried over from a standalone `//~ allow(..)` line.
    let mut pending_allow: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let mut allows = parse_allow_directives(raw);
        let standalone_directive = raw.trim_start().starts_with("//~");
        allows.append(&mut pending_allow);
        if standalone_directive {
            // Applies to the next code line instead.
            pending_allow = allows;
            continue;
        }

        let clean = sanitizer.sanitize_line(raw);
        if skip.in_test_code(&clean) {
            continue;
        }

        let allowed = |rule: &str| allows.iter().any(|a| a == rule);
        let mut push = |rule: &'static str| {
            if !allowed(rule) {
                out.push(LintViolation {
                    rule,
                    file: file.to_path_buf(),
                    line: lineno,
                    snippet: raw.trim().to_string(),
                });
            }
        };

        if clean.contains(".unwrap()") {
            push("unwrap");
        }
        if clean.contains(".expect(") {
            push("expect");
        }
        if clean.contains("panic!") {
            push("panic");
        }
        if cast_scope && has_numeric_cast(&clean) {
            push("cast");
        }
        if float_scope && has_float_eq(&clean) {
            push("float-eq");
        }
    }
    out
}

/// Extracts rules named by `//~ allow(a, b)` directives on a raw line.
fn parse_allow_directives(raw: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("//~") {
        rest = &rest[pos + 3..];
        let trimmed = rest.trim_start();
        if let Some(args) = trimmed.strip_prefix("allow(") {
            if let Some(end) = args.find(')') {
                for rule in args[..end].split(',') {
                    rules.push(rule.trim().to_string());
                }
                rest = &args[end + 1..];
            }
        }
    }
    rules
}

/// Line sanitizer: blanks out string/char literals and comments so the
/// lint needles only match real code. Block-comment state persists
/// across lines; string literals are assumed not to span lines (true
/// for this workspace — multi-line strings live in test code, which is
/// path- or cfg-skipped anyway).
#[derive(Default)]
struct Sanitizer {
    block_comment_depth: usize,
}

impl Sanitizer {
    fn sanitize_line(&mut self, raw: &str) -> String {
        let mut out = String::with_capacity(raw.len());
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            if self.block_comment_depth > 0 {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    self.block_comment_depth -= 1;
                    i += 2;
                } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    self.block_comment_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                '/' if bytes.get(i + 1) == Some(&'/') => break, // line comment
                '/' if bytes.get(i + 1) == Some(&'*') => {
                    self.block_comment_depth += 1;
                    i += 2;
                }
                '"' => {
                    out.push(' ');
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
                'r' if bytes.get(i + 1) == Some(&'"')
                    || (bytes.get(i + 1) == Some(&'#') && bytes.get(i + 2) == Some(&'"')) =>
                {
                    // Raw string r"…" / r#"…"# (single-line forms).
                    let hashes = usize::from(bytes.get(i + 1) == Some(&'#'));
                    i += 2 + hashes; // past r, hashes, opening quote
                    out.push(' ');
                    while i < bytes.len() {
                        if bytes[i] == '"' && (hashes == 0 || bytes.get(i + 1) == Some(&'#')) {
                            i += 1 + hashes;
                            break;
                        }
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal or lifetime. A char literal closes with
                    // a quote within 1–2 chars; a lifetime does not.
                    if bytes.get(i + 2) == Some(&'\'')
                        || (bytes.get(i + 1) == Some(&'\\') && bytes.get(i + 3) == Some(&'\''))
                    {
                        let len = if bytes.get(i + 1) == Some(&'\\') {
                            4
                        } else {
                            3
                        };
                        out.push(' ');
                        i += len;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

/// Brace-tracking skipper for `#[cfg(test)]`-gated items.
#[derive(Default)]
struct TestSkip {
    depth: i64,
    /// Depth at which the current `#[cfg(test)]` item opened, if inside one.
    skip_above: Option<i64>,
    /// Saw `#[cfg(test)]` and waiting for the item's opening brace.
    pending: bool,
}

impl TestSkip {
    /// Feeds one sanitized line; returns true if the line is test code.
    fn in_test_code(&mut self, clean: &str) -> bool {
        let is_cfg_test = clean.contains("#[cfg(test)]")
            || (clean.contains("#[cfg(") && clean.contains("test") && clean.contains("]"));
        let opens = clean.matches('{').count() as i64;
        let closes = clean.matches('}').count() as i64;
        let in_test_before = self.skip_above.is_some() || self.pending || is_cfg_test;

        if is_cfg_test && self.skip_above.is_none() {
            self.pending = true;
        }
        if self.pending && opens > 0 {
            self.skip_above = Some(self.depth);
            self.pending = false;
        }
        self.depth += opens - closes;
        if let Some(at) = self.skip_above {
            if self.depth <= at {
                self.skip_above = None;
                // The closing line itself is still test code.
                return true;
            }
            return true;
        }
        in_test_before
    }
}

/// Detects `as <numeric type>` on a sanitized line.
fn has_numeric_cast(clean: &str) -> bool {
    const NUMERIC: [&str; 14] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ];
    let mut rest = clean;
    while let Some(pos) = rest.find(" as ") {
        // ` as ` must be the keyword: preceding char is part of an
        // expression (always true after sanitizing) — check the target.
        let after = rest[pos + 4..].trim_start();
        let token: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if NUMERIC.contains(&token.as_str()) {
            return true;
        }
        rest = &rest[pos + 4..];
    }
    false
}

/// Detects `==` / `!=` with a float-literal operand on a sanitized line.
fn has_float_eq(clean: &str) -> bool {
    let chars: Vec<char> = clean.chars().collect();
    for i in 0..chars.len().saturating_sub(1) {
        let op = (chars[i], chars[i + 1]);
        if op != ('=', '=') && op != ('!', '=') {
            continue;
        }
        // Skip `<=`, `>=`, `=>`, `===`-like runs.
        if i > 0 && matches!(chars[i - 1], '=' | '<' | '>' | '!') {
            continue;
        }
        if chars.get(i + 2) == Some(&'=') {
            continue;
        }
        let before = token_before(&chars, i);
        let after = token_after(&chars, i + 2);
        if is_float_literal(&before) || is_float_literal(&after) {
            return true;
        }
    }
    false
}

fn token_before(chars: &[char], end: usize) -> String {
    let mut i = end;
    while i > 0 && chars[i - 1] == ' ' {
        i -= 1;
    }
    let stop = i;
    while i > 0
        && (chars[i - 1].is_ascii_alphanumeric() || chars[i - 1] == '_' || chars[i - 1] == '.')
    {
        i -= 1;
    }
    chars[i..stop].iter().collect()
}

fn token_after(chars: &[char], start: usize) -> String {
    let mut i = start;
    while i < chars.len() && chars[i] == ' ' {
        i += 1;
    }
    if i < chars.len() && chars[i] == '-' {
        i += 1; // negative literal
    }
    let begin = i;
    while i < chars.len()
        && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
    {
        i += 1;
    }
    chars[begin..i].iter().collect()
}

/// A token counts as a float literal if it starts with a digit and
/// contains a decimal point (`0.0`, `1.5e3`, `2.0f64`).
fn is_float_literal(token: &str) -> bool {
    token.starts_with(|c: char| c.is_ascii_digit()) && token.contains('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, text: &str) -> Vec<LintViolation> {
        lint_file(Path::new(path), text)
    }

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let text = "fn f() {\n  let x = g().unwrap();\n  let y = h().expect(\"no\");\n  panic!(\"boom\");\n}\n";
        let v = lint("crates/model/src/a.rs", text);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["unwrap", "expect", "panic"]);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn skips_cfg_test_modules_and_non_src_paths() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n  fn g() { x.unwrap(); }\n}\nfn h() { y.unwrap(); }\n";
        let v = lint("crates/model/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6);
        assert!(lint("crates/model/tests/t.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(lint("crates/model/benches/b.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn string_and_comment_contents_do_not_fire() {
        let text = "fn f() {\n  let s = \"call .unwrap() or panic!\";\n  // .expect( in a comment\n  /* panic! in\n     a block .unwrap() */\n  let c = 'x';\n}\n";
        assert!(lint("crates/model/src/a.rs", text).is_empty());
    }

    #[test]
    fn allow_directives_whitelist_same_or_next_line() {
        let trailing = "fn f() { x.unwrap(); } //~ allow(unwrap): reason\n";
        assert!(lint("crates/model/src/a.rs", trailing).is_empty());
        let preceding =
            "//~ allow(expect): overflow is a bug\nfn f() { x.expect(\"overflow\"); }\n";
        assert!(lint("crates/model/src/a.rs", preceding).is_empty());
        let wrong_rule = "fn f() { x.unwrap(); } //~ allow(cast)\n";
        assert_eq!(lint("crates/model/src/a.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn casts_flagged_only_in_model_and_sim() {
        let text = "fn f(x: u64) -> f64 { x as f64 }\n";
        assert_eq!(lint("crates/model/src/a.rs", text).len(), 1);
        assert_eq!(lint("crates/sim/src/a.rs", text).len(), 1);
        assert!(lint("crates/trace/src/a.rs", text).is_empty());
        let not_numeric = "fn f(x: &dyn Any) { x as &dyn Other; }\n";
        assert!(lint("crates/model/src/a.rs", not_numeric).is_empty());
    }

    #[test]
    fn float_eq_heuristic() {
        assert_eq!(
            lint(
                "crates/trace/src/a.rs",
                "fn f(x: f64) -> bool { x == 0.0 }\n"
            )
            .len(),
            1
        );
        assert_eq!(
            lint(
                "crates/model/src/a.rs",
                "fn f(x: f64) -> bool { 1.5 != x }\n"
            )
            .len(),
            1
        );
        assert!(lint(
            "crates/trace/src/a.rs",
            "fn f(x: usize) -> bool { x == 0 }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/trace/src/a.rs",
            "fn f(x: f64) -> bool { x <= 0.5 }\n"
        )
        .is_empty());
        assert!(lint(
            "crates/repro/src/a.rs",
            "fn f(x: f64) -> bool { x == 0.0 }\n"
        )
        .is_empty());
    }

    #[test]
    fn lifetimes_do_not_break_the_sanitizer() {
        let text = "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { h().unwrap(); }\n";
        assert_eq!(lint("crates/model/src/a.rs", text).len(), 1);
    }
}
