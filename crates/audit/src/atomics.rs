//! Atomics/concurrency audit: classifies every atomic access and flags
//! `Ordering::Relaxed` on synchronization-bearing operations.
//!
//! The work-stealing `WorkerPool` (PR 4) moved campaign execution onto
//! shared atomics; a misplaced `Relaxed` there would let a task hand-off
//! race ahead of its payload and silently corrupt a campaign row. This
//! pass finds every atomic method call whose arguments name a memory
//! ordering (`load`, `store`, `swap`, `fetch_*`, `compare_exchange*`),
//! records an [`AtomicSite`] classification for the audit report, and
//! reports a `relaxed_atomic` violation for any `Relaxed` access that
//! does not carry a justified `//~ allow(relaxed_atomic)` whitelist
//! entry. Benign uses — monotonic stat counters, round-robin cursors
//! whose only requirement is uniqueness — are annotated at the site;
//! anything guarding a hand-off must use `Acquire`/`Release`/`AcqRel`.
//!
//! Detection requires an `Ordering` variant identifier inside the call's
//! argument list, so `Vec::swap(a, b)` or an unrelated `.load(path)`
//! never classifies as an atomic access. (`std::cmp::Ordering` has no
//! `Relaxed`/`AcqRel` variants, so the bare variant names are
//! unambiguous.)

use std::path::{Path, PathBuf};

use crate::lexer::{SourceModel, Token, TokenKind};
use crate::lint::{Allows, LintCtx, LintViolation};
use crate::spec::LintPolicy;

/// Atomic method names whose call sites this pass classifies.
const ATOMIC_METHODS: [&str; 11] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Memory-ordering variant identifiers.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One classified atomic access, emitted into the audit report so the
/// concurrency surface of the workspace is enumerable at a glance.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Workspace-relative file path.
    pub file: PathBuf,
    /// 1-based line of the method call.
    pub line: usize,
    /// Method name (`fetch_add`, `compare_exchange`, …).
    pub method: String,
    /// Ordering variant names appearing in the argument list, in order
    /// (`compare_exchange` lists success then failure).
    pub orderings: Vec<String>,
    /// Access class: `load`, `store`, `rmw`, or `cas`.
    pub class: &'static str,
    /// Whether any ordering is `Relaxed`.
    pub relaxed: bool,
    /// Whether a `//~ allow(relaxed_atomic)` whitelist entry covers the
    /// site (only meaningful when `relaxed`).
    pub allowed: bool,
}

fn classify(method: &str) -> &'static str {
    match method {
        "load" => "load",
        "store" => "store",
        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => "cas",
        _ => "rmw",
    }
}

/// Classifies the atomic accesses of one lexed file and reports
/// unjustified `Relaxed` uses. Returns `(sites, violations)`.
pub fn audit_atomics(
    file: &Path,
    text: &str,
    model: &SourceModel,
    policies: &[LintPolicy],
) -> (Vec<AtomicSite>, Vec<LintViolation>) {
    let allows = Allows::from_model(model);
    let mut ctx = LintCtx::new(file, text, &allows, policies);
    let mut sites = Vec::new();
    let mut out = Vec::new();

    let toks: Vec<&Token> = model.code_tokens().filter(|t| !t.in_test).collect();
    let punct = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    };

    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Ident
            || !ATOMIC_METHODS.contains(&t.text.as_str())
            || !punct(i.wrapping_sub(1), ".")
            || !punct(i + 1, "(")
        {
            continue;
        }
        // Scan the argument list (balanced parens) for ordering variants.
        let mut depth = 1usize;
        let mut j = i + 2;
        let mut orderings = Vec::new();
        while j < toks.len() && depth > 0 {
            let a = toks[j];
            match (a.kind, a.text.as_str()) {
                (TokenKind::Punct, "(") => depth += 1,
                (TokenKind::Punct, ")") => depth -= 1,
                (TokenKind::Ident, name) if ORDERINGS.contains(&name) => {
                    orderings.push(name.to_string());
                }
                _ => {}
            }
            j += 1;
        }
        if orderings.is_empty() {
            continue; // not an atomic access (e.g. `Vec::swap(a, b)`)
        }
        let relaxed = orderings.iter().any(|o| o == "Relaxed");
        let allowed = ctx.allows.allowed(t.line, "relaxed_atomic");
        sites.push(AtomicSite {
            file: file.to_path_buf(),
            line: t.line,
            method: t.text.clone(),
            orderings,
            class: classify(&t.text),
            relaxed,
            allowed,
        });
        if relaxed && ctx.active("relaxed_atomic") {
            ctx.push(&mut out, "relaxed_atomic", t.line);
        }
    }
    (sites, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(path: &str, text: &str) -> (Vec<AtomicSite>, Vec<LintViolation>) {
        audit_atomics(Path::new(path), text, &SourceModel::parse(text), &[])
    }

    #[test]
    fn classifies_access_kinds_and_orderings() {
        let text = "fn f(a: &AtomicU64, b: &AtomicU8) {\n\
                    let x = a.load(Ordering::Acquire);\n\
                    a.store(1, Ordering::Release);\n\
                    a.fetch_add(1, Ordering::AcqRel);\n\
                    let _ = b.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n\
                    }\n";
        let (sites, violations) = audit("crates/testbed/src/pool.rs", text);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(sites.len(), 4);
        let classes: Vec<_> = sites.iter().map(|s| s.class).collect();
        assert_eq!(classes, ["load", "store", "rmw", "cas"]);
        assert_eq!(sites[3].orderings, ["AcqRel", "Acquire"]);
        assert!(sites.iter().all(|s| !s.relaxed));
    }

    #[test]
    fn relaxed_without_allow_is_a_violation() {
        let text = "fn f(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n";
        let (sites, violations) = audit("crates/testbed/src/pool.rs", text);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].relaxed && !sites[0].allowed);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "relaxed_atomic");
    }

    #[test]
    fn justified_allow_suppresses_and_marks_site() {
        let text = "fn f(a: &AtomicU64) {\n\
                    //~ allow(relaxed_atomic): monotonic stat counter, no hand-off\n\
                    a.fetch_add(1, Ordering::Relaxed);\n}\n";
        let (sites, violations) = audit("crates/testbed/src/pool.rs", text);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(sites[0].relaxed && sites[0].allowed);
    }

    #[test]
    fn non_atomic_methods_are_not_classified() {
        let text = "fn f(v: &mut Vec<u64>) { v.swap(0, 1); let w = img.load(path); }\n";
        let (sites, violations) = audit("crates/testbed/src/pool.rs", text);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(violations.is_empty());
    }

    #[test]
    fn cfg_test_sites_are_ignored() {
        let text = "#[cfg(test)]\nmod tests {\n  fn t(a: &AtomicU64) { a.fetch_add(1, Ordering::Relaxed); }\n}\n";
        let (sites, violations) = audit("crates/testbed/src/pool.rs", text);
        assert!(sites.is_empty());
        assert!(violations.is_empty());
    }
}
