//! Float value-range lattice for the numeric-domain analysis
//! ([`crate::numlint`]).
//!
//! An abstract value is an interval over the extended reals plus a
//! NaN-possible flag. Endpoint *openness* carries attainability: the
//! paper's loss probability lives in `(0, 1]`, and `1/p` over that
//! domain is unbounded but never actually infinite — an analysis that
//! cannot express "arbitrarily large yet finite" would flag every
//! division in the PFTK formulas. Concretely:
//!
//! * `hi == +inf, hi_open == true` — values grow without bound but
//!   `+inf` itself is **not** attainable (sup not attained);
//! * `hi == +inf, hi_open == false` — `+inf` **is** attainable (and
//!   symmetrically for `lo`/`-inf`);
//! * `nan == true` — NaN is attainable in addition to the interval.
//!
//! Transfer functions compute endpoint images with actual `f64`
//! arithmetic, so overflow at an endpoint (`3.0 / (2.0 * b * p)` for
//! subnormal `p`) reproduces the runtime overflow instead of idealising
//! it away. Indeterminate corner forms (`0 × ∞`, `∞ − ∞`, `0 ÷ 0`,
//! `∞ ÷ ∞`) produce NaN **only when both contributing endpoints are
//! attained**; open corners widen the interval hull instead, because a
//! limit of finite operands is a finite (if unbounded) value. What the
//! lattice does *not* model is documented in `DESIGN.md` §15: interior
//! rounding is not directed, and branch guards are not refined — see
//! [`crate::numlint`] for why the analysis stays useful anyway.

use std::fmt;

/// An interval over the extended reals, plus NaN-attainability.
///
/// Invariant: `lo <= hi` (comparing as `f64`, so `-inf <= x <= +inf`);
/// both endpoints are never NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Lower endpoint (may be `-inf`).
    pub lo: f64,
    /// Upper endpoint (may be `+inf`).
    pub hi: f64,
    /// Whether `lo` itself is excluded (strict bound).
    pub lo_open: bool,
    /// Whether `hi` itself is excluded (strict bound).
    pub hi_open: bool,
    /// Whether NaN is attainable.
    pub nan: bool,
}

/// The lattice top: any float, including both infinities and NaN.
pub const TOP: Range = Range {
    lo: f64::NEG_INFINITY,
    hi: f64::INFINITY,
    lo_open: false,
    hi_open: false,
    nan: true,
};

/// An abstract value: a known [`Range`] or no information at all.
///
/// `Unknown` is *assumed safe*: the analysis is an evidence-based bug
/// finder, so hazards are reported only when grounded in declared
/// domains, never speculated from absent information. The dynamic
/// `domain_sweep` test is the cross-check that keeps this honest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Interval information derived from a `[[domain]]` declaration.
    Known(Range),
    /// Nothing provable; treated as hazard-free.
    Unknown,
}

impl Val {
    /// The range when known.
    pub fn known(self) -> Option<Range> {
        match self {
            Val::Known(r) => Some(r),
            Val::Unknown => None,
        }
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:e}, {:e}{}{}",
            if self.lo_open { '(' } else { '[' },
            self.lo,
            self.hi,
            if self.hi_open { ')' } else { ']' },
            if self.nan { "+nan" } else { "" },
        )
    }
}

impl Range {
    /// The degenerate interval holding exactly `v` (which must not be
    /// NaN; a NaN literal degrades to [`TOP`]).
    pub fn point(v: f64) -> Range {
        if v.is_nan() {
            return TOP;
        }
        Range {
            lo: v,
            hi: v,
            lo_open: false,
            hi_open: false,
            nan: false,
        }
    }

    /// A closed/open interval with no NaN.
    pub fn new(lo: f64, lo_open: bool, hi: f64, hi_open: bool) -> Range {
        Range {
            lo,
            hi,
            lo_open,
            hi_open,
            nan: false,
        }
    }

    /// Whether the value `0.0` is attainable.
    pub fn contains_zero(&self) -> bool {
        let above_lo = self.lo < 0.0 || (self.lo == 0.0 && !self.lo_open);
        let below_hi = self.hi > 0.0 || (self.hi == 0.0 && !self.hi_open);
        above_lo && below_hi
    }

    /// Whether `+inf` is attainable.
    pub fn may_pos_inf(&self) -> bool {
        self.hi == f64::INFINITY && !self.hi_open
    }

    /// Whether `-inf` is attainable.
    pub fn may_neg_inf(&self) -> bool {
        self.lo == f64::NEG_INFINITY && !self.lo_open
    }

    /// Whether any non-finite value (NaN or ±inf) is attainable.
    pub fn may_non_finite(&self) -> bool {
        self.nan || self.may_pos_inf() || self.may_neg_inf()
    }

    /// Whether a strictly negative value is attainable.
    pub fn may_negative(&self) -> bool {
        self.lo < 0.0
    }

    /// Whether this interval overlaps `other` (shares at least one
    /// attainable real value).
    pub fn overlaps(&self, other: &Range) -> bool {
        let lo = if self.lo > other.lo { self } else { other };
        let hi = if self.hi < other.hi { self } else { other };
        lo.lo < hi.hi || (lo.lo == hi.hi && !lo.lo_open && !hi.hi_open)
    }

    /// Smallest range containing both operands (endpoint openness kept
    /// only when *every* contributor of that endpoint is open).
    pub fn hull(&self, other: &Range) -> Range {
        let (lo, lo_open) = ep_min(self.lo, self.lo_open, other.lo, other.lo_open);
        let (hi, hi_open) = ep_max(self.hi, self.hi_open, other.hi, other.hi_open);
        Range {
            lo,
            hi,
            lo_open,
            hi_open,
            nan: self.nan || other.nan,
        }
    }

    /// `-self`.
    pub fn neg(&self) -> Range {
        Range {
            lo: -self.hi,
            hi: -self.lo,
            lo_open: self.hi_open,
            hi_open: self.lo_open,
            nan: self.nan,
        }
    }

    /// `self + other`. `∞ − ∞` corners with both endpoints attained set
    /// the NaN flag; open corners widen instead.
    pub fn add(&self, other: &Range) -> Range {
        let nan = self.nan
            || other.nan
            || (self.may_pos_inf() && other.may_neg_inf())
            || (self.may_neg_inf() && other.may_pos_inf());
        let (lo, lo_open) = ep_add(self.lo, self.lo_open, other.lo, other.lo_open)
            .unwrap_or((f64::NEG_INFINITY, true));
        let (hi, hi_open) =
            ep_add(self.hi, self.hi_open, other.hi, other.hi_open).unwrap_or((f64::INFINITY, true));
        Range {
            lo,
            hi,
            lo_open,
            hi_open,
            nan,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &Range) -> Range {
        self.add(&other.neg())
    }

    /// `self * other` over the four endpoint corners. A `0 × ∞` corner
    /// sets NaN only when both sides are attained; otherwise it
    /// contributes the full limit span `0 … ±∞(open)` to the hull.
    pub fn mul(&self, other: &Range) -> Range {
        let mut nan = self.nan || other.nan;
        let mut acc: Option<Range> = None;
        let push = |v: f64, open: bool, acc: &mut Option<Range>| {
            let r = Range {
                lo: v,
                hi: v,
                lo_open: open,
                hi_open: open,
                nan: false,
            };
            *acc = Some(match acc {
                Some(a) => a.hull(&r),
                None => r,
            });
        };
        for &(xv, xo) in &[(self.lo, self.lo_open), (self.hi, self.hi_open)] {
            for &(yv, yo) in &[(other.lo, other.lo_open), (other.hi, other.hi_open)] {
                let p = xv * yv;
                if p.is_nan() {
                    // 0 × ±∞ corner.
                    if !xo && !yo {
                        nan = true;
                    }
                    let (iv, _io) = if xv == 0.0 { (yv, yo) } else { (xv, xo) };
                    push(0.0, xv != 0.0 || yv != 0.0, &mut acc);
                    push(iv, true, &mut acc);
                    push(-iv, true, &mut acc);
                } else {
                    let open = if p.is_infinite() {
                        if (xv.is_infinite() && !xo) || (yv.is_infinite() && !yo) {
                            false // attained infinity dominates
                        } else if xv.is_finite() && yv.is_finite() {
                            // Finite × finite overflowing to ±inf in f64
                            // *is* the runtime result.
                            xo || yo
                        } else {
                            true // open infinity stays unbounded-finite
                        }
                    } else {
                        xo || yo
                    };
                    push(p, open, &mut acc);
                }
            }
        }
        let mut out = acc.unwrap_or(TOP);
        out.nan = nan;
        out
    }

    /// `self / other`. A denominator with an *attained* zero yields the
    /// full line with both infinities attained (plus NaN when the
    /// numerator also attains zero: `0 ÷ 0`); a zero that is only an
    /// open endpoint yields unbounded-but-finite quotients instead.
    pub fn div(&self, other: &Range) -> Range {
        let mut nan = self.nan || other.nan;
        if other.contains_zero() {
            if self.contains_zero() {
                nan = true; // 0 ÷ 0
            }
            let mut out = TOP;
            out.nan = nan;
            return out;
        }
        // Denominator does not change sign through an attained zero; if
        // its interval still spans both signs (possible only via open
        // zero endpoints on each side, which contains_zero() excludes
        // per-side), corner analysis below covers each sign's extreme.
        if self.may_pos_inf() || self.may_neg_inf() {
            // ∞ ÷ ∞ corner: NaN only when the denominator's infinity is
            // attained too.
            if (other.may_pos_inf() || other.may_neg_inf())
                && (self.may_pos_inf() || self.may_neg_inf())
            {
                nan = true;
            }
        }
        let mut acc: Option<Range> = None;
        for &(xv, xo) in &[(self.lo, self.lo_open), (self.hi, self.hi_open)] {
            for &(yv, yo) in &[(other.lo, other.lo_open), (other.hi, other.hi_open)] {
                let q = xv / yv;
                let (v, open) = if q.is_nan() {
                    // 0 ÷ 0 or ∞ ÷ ∞ with at least one open side: the
                    // limit can be anything finite; widen both ways.
                    let a = Range::new(f64::NEG_INFINITY, true, f64::INFINITY, true);
                    acc = Some(match acc {
                        Some(prev) => prev.hull(&a),
                        None => a,
                    });
                    continue;
                } else if q.is_infinite() {
                    // x ÷ (open 0) → unbounded finite unless x's own
                    // infinity is attained.
                    (q, !xv.is_infinite() || xo)
                } else {
                    (q, xo || yo)
                };
                let r = Range {
                    lo: v,
                    hi: v,
                    lo_open: open,
                    hi_open: open,
                    nan: false,
                };
                acc = Some(match acc {
                    Some(prev) => prev.hull(&r),
                    None => r,
                });
            }
        }
        let mut out = acc.unwrap_or(TOP);
        out.nan = nan;
        out
    }

    /// `self.sqrt()`. Attainable negatives set the NaN flag; the real
    /// part is the image of the non-negative portion.
    pub fn sqrt(&self) -> Range {
        let mut nan = self.nan;
        if self.lo < 0.0 {
            nan = true;
        }
        if self.hi < 0.0 || (self.hi == 0.0 && self.hi_open && self.lo < 0.0) {
            // Entire interval negative: only NaN remains. Keep a
            // degenerate zero so downstream arithmetic stays total.
            return Range {
                lo: 0.0,
                hi: 0.0,
                lo_open: false,
                hi_open: false,
                nan: true,
            };
        }
        let (lo, lo_open) = if self.lo < 0.0 {
            (0.0, false) // 0 is interior, hence attained
        } else {
            (self.lo.sqrt(), self.lo_open)
        };
        Range {
            lo,
            hi: self.hi.sqrt(),
            lo_open,
            hi_open: self.hi_open,
            nan,
        }
    }

    /// `self.cbrt()`. Total and strictly monotone over all of ℝ — unlike
    /// `sqrt` there is no domain edge, so the image is just the endpoint
    /// image and NaN only propagates from the input.
    pub fn cbrt(&self) -> Range {
        Range {
            lo: self.lo.cbrt(),
            hi: self.hi.cbrt(),
            lo_open: self.lo_open,
            hi_open: self.hi_open,
            nan: self.nan,
        }
    }

    /// `self.min(other)` with Rust `f64::min` semantics: NaN only when
    /// *both* operands are NaN; a NaN side otherwise passes the other
    /// side's value through.
    pub fn min(&self, other: &Range) -> Range {
        let (lo, lo_open) = ep_min(self.lo, self.lo_open, other.lo, other.lo_open);
        let (hi, hi_open) = ep_min(self.hi, self.hi_open, other.hi, other.hi_open);
        let mut out = Range {
            lo,
            hi,
            lo_open,
            hi_open,
            nan: self.nan && other.nan,
        };
        // When one side may be NaN, the result may be the *other* side's
        // full value, not just the pointwise min.
        if self.nan {
            out = out.hull(&Range {
                nan: false,
                ..*other
            });
        }
        if other.nan {
            out = out.hull(&Range {
                nan: false,
                ..*self
            });
        }
        out
    }

    /// `self.max(other)`, same NaN semantics as [`Range::min`].
    pub fn max(&self, other: &Range) -> Range {
        let (lo, lo_open) = ep_max(self.lo, self.lo_open, other.lo, other.lo_open);
        let (hi, hi_open) = ep_max(self.hi, self.hi_open, other.hi, other.hi_open);
        let mut out = Range {
            lo,
            hi,
            lo_open,
            hi_open,
            nan: self.nan && other.nan,
        };
        if self.nan {
            out = out.hull(&Range {
                nan: false,
                ..*other
            });
        }
        if other.nan {
            out = out.hull(&Range {
                nan: false,
                ..*self
            });
        }
        out
    }

    /// `|self|`.
    pub fn abs(&self) -> Range {
        if self.lo >= 0.0 {
            return *self;
        }
        if self.hi <= 0.0 {
            return self.neg();
        }
        let (hi, hi_open) = ep_max(-self.lo, self.lo_open, self.hi, self.hi_open);
        Range {
            lo: 0.0,
            lo_open: false, // 0 is interior, hence attained
            hi,
            hi_open,
            nan: self.nan,
        }
    }

    /// `self.powi(k)` for a literal integer exponent.
    pub fn powi(&self, k: i32) -> Range {
        if k == 0 {
            return Range::point(1.0);
        }
        if k < 0 {
            return Range::point(1.0).div(&self.powi(-k));
        }
        if k % 2 == 0 {
            return self.abs().pow_monotone(k);
        }
        self.pow_monotone(k)
    }

    /// Monotone `x^k` over a sign-consistent (or odd-power) interval.
    fn pow_monotone(&self, k: i32) -> Range {
        Range {
            lo: self.lo.powi(k),
            hi: self.hi.powi(k),
            lo_open: self.lo_open,
            hi_open: self.hi_open,
            nan: self.nan,
        }
    }

    /// `self.powf(exp)`. Precise tracking of `base^exp` is out of scope;
    /// the cases the kernels use are covered soundly:
    /// strictly-positive base → positive result, base touching zero →
    /// non-negative result, base possibly negative → NaN possible.
    pub fn powf(&self, exp: &Range) -> Range {
        let nan = self.nan || exp.nan;
        if self.lo > 0.0 || (self.lo == 0.0 && self.lo_open) {
            return Range {
                lo: 0.0,
                hi: f64::INFINITY,
                lo_open: true,
                hi_open: true,
                nan,
            };
        }
        if self.lo == 0.0 {
            // 0^0 == 1 and 0^positive == 0 in IEEE; no NaN from the base.
            return Range {
                lo: 0.0,
                hi: f64::INFINITY,
                lo_open: false,
                hi_open: true,
                nan,
            };
        }
        // Negative base with a non-integer exponent is NaN.
        let mut out = TOP;
        out.nan = true;
        out
    }

    /// `self.ln()`: NaN below zero, `-inf` at an attained zero.
    pub fn ln(&self) -> Range {
        self.log_like(0.0, f64::ln)
    }

    /// `self.ln_1p()`: NaN below -1, `-inf` at an attained -1.
    pub fn ln_1p(&self) -> Range {
        self.log_like(-1.0, f64::ln_1p)
    }

    fn log_like(&self, floor: f64, f: fn(f64) -> f64) -> Range {
        let mut nan = self.nan;
        if self.lo < floor {
            nan = true;
        }
        if self.hi < floor || (self.hi == floor && self.hi_open && self.lo < floor) {
            return Range {
                lo: 0.0,
                hi: 0.0,
                lo_open: false,
                hi_open: false,
                nan: true,
            };
        }
        let (lo, lo_open) = if self.lo < floor {
            (f64::NEG_INFINITY, false) // floor is interior, hence attained
        } else {
            (f(self.lo), self.lo_open)
        };
        Range {
            lo,
            hi: f(self.hi),
            lo_open,
            hi_open: self.hi_open,
            nan,
        }
    }

    /// `self.exp()`: monotone, `exp(-inf) == 0`, `exp(+inf) == +inf`.
    pub fn exp(&self) -> Range {
        self.monotone(f64::exp)
    }

    /// `self.exp_m1()`: monotone, `exp_m1(-inf) == -1`.
    pub fn exp_m1(&self) -> Range {
        self.monotone(f64::exp_m1)
    }

    fn monotone(&self, f: fn(f64) -> f64) -> Range {
        Range {
            lo: f(self.lo),
            hi: f(self.hi),
            lo_open: self.lo_open,
            hi_open: self.hi_open,
            nan: self.nan,
        }
    }
}

/// Endpoint sum; `None` marks an indeterminate `∞ − ∞` corner. An
/// attained infinity dominates a finite or open contribution.
fn ep_add(x: f64, xo: bool, y: f64, yo: bool) -> Option<(f64, bool)> {
    let s = x + y;
    if s.is_nan() {
        return None;
    }
    let open = if s.is_infinite() {
        if (x.is_infinite() && !xo) || (y.is_infinite() && !yo) {
            false
        } else if x.is_finite() && y.is_finite() {
            // Finite + finite overflowing in f64 is the runtime result.
            xo || yo
        } else {
            true
        }
    } else {
        xo || yo
    };
    Some((s, open))
}

/// The smaller endpoint (ties stay closed when either side is closed —
/// closed is the wider, safer choice).
fn ep_min(x: f64, xo: bool, y: f64, yo: bool) -> (f64, bool) {
    if x < y {
        (x, xo)
    } else if y < x {
        (y, yo)
    } else {
        (x, xo && yo)
    }
}

/// The larger endpoint, same tie rule as [`ep_min`].
fn ep_max(x: f64, xo: bool, y: f64, yo: bool) -> (f64, bool) {
    if x > y {
        (x, xo)
    } else if y > x {
        (y, yo)
    } else {
        (x, xo && yo)
    }
}

/// Parses a `[[domain]]` interval string: `[lo, hi]` with `[`/`(` and
/// `]`/`)` choosing closed/open endpoints; endpoints are `f64` literals
/// or `inf`/`-inf` (an *open* infinity means unbounded-but-finite).
pub fn parse_interval(s: &str) -> Option<Range> {
    let s = s.trim();
    let (first, rest) = s.split_at(s.len().min(1));
    let lo_open = match first {
        "[" => false,
        "(" => true,
        _ => return None,
    };
    let (body, last) = rest.split_at(rest.len().checked_sub(1)?);
    let hi_open = match last {
        "]" => false,
        ")" => true,
        _ => return None,
    };
    let (lo_s, hi_s) = body.split_once(',')?;
    let lo = parse_endpoint(lo_s)?;
    let hi = parse_endpoint(hi_s)?;
    if lo.is_nan() || hi.is_nan() || lo > hi {
        return None;
    }
    Some(Range::new(lo, lo_open, hi, hi_open))
}

fn parse_endpoint(s: &str) -> Option<f64> {
    match s.trim() {
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        t => t.parse::<f64>().ok().filter(|v| !v.is_nan()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed(lo: f64, hi: f64) -> Range {
        Range::new(lo, false, hi, false)
    }

    #[test]
    fn zero_membership_respects_openness() {
        assert!(closed(-1.0, 1.0).contains_zero());
        assert!(closed(0.0, 1.0).contains_zero());
        assert!(!Range::new(0.0, true, 1.0, false).contains_zero());
        assert!(!closed(1e-12, 1.0).contains_zero());
        assert!(!Range::new(-1.0, false, 0.0, true).contains_zero());
    }

    #[test]
    fn division_by_open_zero_is_unbounded_finite() {
        // 1 / (0, 1] — the PFTK 1/p shape: huge but never infinite.
        let num = Range::point(1.0);
        let den = Range::new(0.0, true, 1.0, false);
        let q = num.div(&den);
        assert!(!q.nan, "{q}");
        assert!(!q.may_pos_inf(), "{q}");
        assert_eq!(q.lo, 1.0);
        assert_eq!(q.hi, f64::INFINITY);
        assert!(q.hi_open);
    }

    #[test]
    fn division_by_attained_zero_attains_infinity() {
        let num = Range::point(1.0);
        let den = closed(0.0, 1.0);
        let q = num.div(&den);
        assert!(q.may_pos_inf() || q.may_neg_inf(), "{q}");
        // 0/0 needs the numerator to attain zero too.
        assert!(!q.nan, "{q}");
        let z = closed(0.0, 1.0).div(&closed(0.0, 1.0));
        assert!(z.nan, "{z}");
    }

    #[test]
    fn attained_inf_minus_inf_is_nan_open_is_not() {
        let attained = Range::new(0.0, false, f64::INFINITY, false);
        let open = Range::new(0.0, false, f64::INFINITY, true);
        assert!(attained.sub(&attained).nan);
        let s = open.sub(&open);
        assert!(!s.nan, "{s}");
        assert!(!s.may_pos_inf() && !s.may_neg_inf(), "{s}");
    }

    #[test]
    fn sqrt_of_possible_negative_flags_nan() {
        let r = closed(-1.0, 4.0).sqrt();
        assert!(r.nan);
        assert_eq!(r.lo, 0.0);
        assert_eq!(r.hi, 2.0);
        let clean = closed(0.25, 4.0).sqrt();
        assert!(!clean.nan);
        assert_eq!((clean.lo, clean.hi), (0.5, 2.0));
    }

    #[test]
    fn cbrt_is_total_across_zero() {
        // Unlike sqrt, negatives are in-domain: no NaN, monotone image.
        let r = closed(-8.0, 27.0).cbrt();
        assert!(!r.nan);
        assert_eq!((r.lo, r.hi), (-2.0, 3.0));
    }

    #[test]
    fn mul_endpoint_overflow_is_attained() {
        // Finite × finite overflowing f64 is the runtime value.
        let big = closed(1e300, 1e300);
        let p = big.mul(&big);
        assert!(p.may_pos_inf(), "{p}");
    }

    #[test]
    fn mul_signs_and_zero_inf_corner() {
        let p = closed(-2.0, 3.0).mul(&closed(-1.0, 4.0));
        assert_eq!((p.lo, p.hi), (-8.0, 12.0));
        // [0,1] × [1, inf): open infinity — no NaN, no attained inf.
        let z = closed(0.0, 1.0).mul(&Range::new(1.0, false, f64::INFINITY, true));
        assert!(!z.nan, "{z}");
        assert!(!z.may_pos_inf(), "{z}");
        // [0,1] × [1, inf]: both attained — NaN possible.
        let z = closed(0.0, 1.0).mul(&Range::new(1.0, false, f64::INFINITY, false));
        assert!(z.nan, "{z}");
    }

    #[test]
    fn min_max_rust_nan_semantics() {
        let mut nanful = closed(5.0, 9.0);
        nanful.nan = true;
        let other = closed(0.0, 2.0);
        let m = nanful.min(&other);
        // f64::min(NaN, x) == x, so NaN does not survive a one-sided min…
        assert!(!m.nan, "{m}");
        // …but the other side's whole interval does.
        assert_eq!((m.lo, m.hi), (0.0, 2.0));
        let mut both = other;
        both.nan = true;
        assert!(nanful.min(&both).nan);
    }

    #[test]
    fn powi_even_odd() {
        let r = closed(-2.0, 3.0);
        let even = r.powi(2);
        assert_eq!((even.lo, even.hi), (0.0, 9.0));
        let odd = r.powi(3);
        assert_eq!((odd.lo, odd.hi), (-8.0, 27.0));
    }

    #[test]
    fn powf_positive_base_stays_positive() {
        let q = Range::new(0.0, true, 1.0, true); // (0,1)
        let w = closed(1.0, 1e6);
        let r = q.powf(&w);
        assert!(!r.nan);
        assert!(!r.contains_zero(), "{r}");
        let neg = closed(-1.0, 1.0).powf(&w);
        assert!(neg.nan);
    }

    #[test]
    fn expm1_ln1p_chain_is_sign_tight() {
        // one_minus_q_pow: -expm1(x * ln_1p(-p)) for p in [1e-12, 1-1e-12],
        // x in [1, 1e6] — the rewritten q̂ denominator must exclude zero.
        let p = closed(1e-12, 1.0 - 1e-12);
        let x = closed(1.0, 1e6);
        let inner = p.neg().ln_1p(); // ln(1-p) in [ln(1e-12), -1e-12]
        assert!(inner.hi < 0.0, "{inner}");
        let prod = x.mul(&inner);
        assert!(prod.hi < 0.0, "{prod}");
        let out = prod.exp_m1().neg();
        assert!(!out.contains_zero(), "{out}");
        assert!(!out.nan && !out.may_pos_inf(), "{out}");
        assert!(out.hi <= 1.0, "{out}");
    }

    #[test]
    fn interval_parsing() {
        let r = parse_interval("[1e-12, 0.5]").unwrap();
        assert_eq!((r.lo, r.hi), (1e-12, 0.5));
        assert!(!r.lo_open && !r.hi_open);
        let r = parse_interval("(0, 1]").unwrap();
        assert!(r.lo_open && !r.hi_open);
        let r = parse_interval("[1, inf)").unwrap();
        assert_eq!(r.hi, f64::INFINITY);
        assert!(r.hi_open && !r.may_pos_inf());
        assert!(parse_interval("[2, 1]").is_none());
        assert!(parse_interval("1, 2").is_none());
        assert!(parse_interval("[nan, 1]").is_none());
    }

    #[test]
    fn overlap_and_hull() {
        let a = closed(0.0, 1.0);
        let b = closed(1.0, 2.0);
        assert!(a.overlaps(&b));
        assert!(!Range::new(0.0, false, 1.0, true).overlaps(&Range::new(1.0, false, 2.0, false)));
        let h = a.hull(&closed(5.0, 6.0));
        assert_eq!((h.lo, h.hi), (0.0, 6.0));
    }
}
