//! Report rendering: human-readable summary and `results/conformance.json`.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::spec::Level;
use crate::AuditOutcome;

/// JSON shape of one claim's coverage.
#[derive(Debug, Serialize)]
pub struct ClaimJson {
    /// Claim id.
    pub id: String,
    /// `"MUST"` or `"SHOULD"`.
    pub level: String,
    /// Paper section.
    pub section: String,
    /// Human title.
    pub title: String,
    /// Whether the claim has both impl and test citations.
    pub covered: bool,
    /// Implementation citation sites (`file:line`).
    pub impl_sites: Vec<String>,
    /// Test citation sites (`file:line`).
    pub test_sites: Vec<String>,
}

/// JSON shape of a citation error.
#[derive(Debug, Serialize)]
pub struct CitationErrorJson {
    /// `unknown`, `stale`, `duplicate`, `malformed`, or `impl-in-test`.
    pub kind: String,
    /// Citation site (`file:line`).
    pub site: String,
    /// The cited claim id.
    pub claim: String,
}

/// JSON shape of a lint violation.
#[derive(Debug, Serialize)]
pub struct LintJson {
    /// Rule name.
    pub rule: String,
    /// File path.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// Offending line, trimmed.
    pub snippet: String,
    /// Call-chain evidence (hot root → … → operation) for the
    /// interprocedural families; empty otherwise.
    pub chain: Vec<String>,
}

/// JSON shape of one `[[hotpath]]` root's reachability summary.
#[derive(Debug, Serialize)]
pub struct HotpathJson {
    /// Registry key (`Type::method` or fn name).
    pub root: String,
    /// Why the root is hot.
    pub reason: String,
    /// Graph nodes the key resolved to (0 fails the gate).
    pub resolved: u64,
    /// Functions reachable from the root, inclusive.
    pub reached: u64,
}

/// JSON shape of one classified atomic access.
#[derive(Debug, Serialize)]
pub struct AtomicSiteJson {
    /// File path.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// Method name (`fetch_add`, `compare_exchange`, …).
    pub method: String,
    /// Access class: `load`, `store`, `rmw`, or `cas`.
    pub class: String,
    /// Ordering variants in argument order.
    pub orderings: Vec<String>,
    /// Whether any ordering is `Relaxed`.
    pub relaxed: bool,
    /// Whether a justified whitelist entry covers the site.
    pub allowed: bool,
}

/// JSON shape of one `[[domain]]` root's numeric-analysis summary.
#[derive(Debug, Serialize)]
pub struct DomainJson {
    /// Registry key (`Type::method` or fn name).
    pub root: String,
    /// Why the domain matters.
    pub reason: String,
    /// Function definitions the key resolved to (0 fails the gate).
    pub resolved: u64,
    /// Functions the interval propagation reached from the root.
    pub reached: u64,
}

/// JSON shape of one `[[policy]]` lint exemption.
#[derive(Debug, Serialize)]
pub struct PolicyJson {
    /// Workspace-relative path prefix.
    pub path: String,
    /// Exempted rule.
    pub allow: String,
    /// Mandatory justification.
    pub reason: String,
}

/// Top-level JSON report written to `results/conformance.json`.
#[derive(Debug, Serialize)]
pub struct ReportJson {
    /// Overall gate verdict.
    pub clean: bool,
    /// Total citations scanned.
    pub citations: u64,
    /// Number of MUST claims in the registry.
    pub must_total: u64,
    /// Number of MUST claims fully covered.
    pub must_covered: u64,
    /// Violation count per rule (zero entries included for every known
    /// rule, so regressions in one family are visible at a glance).
    pub rule_counts: BTreeMap<String, u64>,
    /// Per-claim coverage.
    pub claims: Vec<ClaimJson>,
    /// Citation errors.
    pub citation_errors: Vec<CitationErrorJson>,
    /// Lint violations across all families.
    pub lint_violations: Vec<LintJson>,
    /// Every classified atomic access in the workspace.
    pub atomics: Vec<AtomicSiteJson>,
    /// The path-scoped lint exemptions in force.
    pub policies: Vec<PolicyJson>,
    /// The hot-path root registry with reachability counts.
    pub hotpaths: Vec<HotpathJson>,
    /// The numeric-domain root registry with propagation counts.
    pub domains: Vec<DomainJson>,
    /// Wall-clock milliseconds per pass group plus `"total"`. The only
    /// machine-dependent part of the report: CI's freshness diff masks
    /// these lines, and the gate test bounds `"total"` instead.
    pub timings_ms: BTreeMap<String, u64>,
}

fn level_str(level: Level) -> &'static str {
    match level {
        Level::Must => "MUST",
        Level::Should => "SHOULD",
    }
}

/// Builds the JSON report structure from an audit outcome.
pub fn to_json(outcome: &AuditOutcome) -> ReportJson {
    let conf = &outcome.conformance;
    let claims: Vec<ClaimJson> = conf
        .claims
        .iter()
        .map(|c| ClaimJson {
            id: c.id.clone(),
            level: level_str(c.level).to_string(),
            section: c.section.clone(),
            title: c.title.clone(),
            covered: c.covered(),
            impl_sites: c.impl_sites.clone(),
            test_sites: c.test_sites.clone(),
        })
        .collect();
    let must_total = conf
        .claims
        .iter()
        .filter(|c| c.level == Level::Must)
        .count() as u64;
    let must_covered = conf
        .claims
        .iter()
        .filter(|c| c.level == Level::Must && c.covered())
        .count() as u64;
    ReportJson {
        clean: outcome.is_clean(),
        citations: conf.citation_count as u64,
        must_total,
        must_covered,
        rule_counts: outcome
            .rule_counts()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v as u64))
            .collect(),
        claims,
        citation_errors: conf
            .errors
            .iter()
            .map(|e| CitationErrorJson {
                kind: e.kind.to_string(),
                site: e.site.clone(),
                claim: e.claim.clone(),
            })
            .collect(),
        lint_violations: outcome
            .lint
            .iter()
            .map(|v| LintJson {
                rule: v.rule.to_string(),
                file: v.file.display().to_string(),
                line: v.line as u64,
                snippet: v.snippet.clone(),
                chain: v.chain.clone(),
            })
            .collect(),
        atomics: outcome
            .atomics
            .iter()
            .map(|s| AtomicSiteJson {
                file: s.file.display().to_string(),
                line: s.line as u64,
                method: s.method.clone(),
                class: s.class.to_string(),
                orderings: s.orderings.clone(),
                relaxed: s.relaxed,
                allowed: s.allowed,
            })
            .collect(),
        policies: outcome
            .policies
            .iter()
            .map(|p| PolicyJson {
                path: p.path.clone(),
                allow: p.allow.clone(),
                reason: p.reason.clone(),
            })
            .collect(),
        hotpaths: outcome
            .hotpaths
            .iter()
            .map(|r| HotpathJson {
                root: r.root.clone(),
                reason: r.reason.clone(),
                resolved: r.resolved as u64,
                reached: r.reached as u64,
            })
            .collect(),
        domains: outcome
            .domains
            .iter()
            .map(|r| DomainJson {
                root: r.root.clone(),
                reason: r.reason.clone(),
                resolved: r.resolved as u64,
                reached: r.reached as u64,
            })
            .collect(),
        timings_ms: outcome
            .timings_ms
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
    }
}

/// Renders the human summary printed by the binary.
pub fn render_summary(outcome: &AuditOutcome) -> String {
    let conf = &outcome.conformance;
    let mut out = String::new();
    let push = |out: &mut String, line: &str| {
        out.push_str(line);
        out.push('\n');
    };

    push(&mut out, "pftk-audit: paper-conformance + lint gate");
    push(&mut out, "=========================================");

    let (mut must_total, mut must_cov, mut should_total, mut should_cov) = (0u64, 0u64, 0u64, 0u64);
    for c in &conf.claims {
        match c.level {
            Level::Must => {
                must_total += 1;
                must_cov += u64::from(c.covered());
            }
            Level::Should => {
                should_total += 1;
                should_cov += u64::from(c.covered());
            }
        }
    }
    push(
        &mut out,
        &format!(
            "claims: {} ({} MUST, {} SHOULD) | citations scanned: {}",
            conf.claims.len(),
            must_total,
            should_total,
            conf.citation_count
        ),
    );
    push(
        &mut out,
        &format!("coverage: MUST {must_cov}/{must_total}, SHOULD {should_cov}/{should_total}"),
    );

    // Per-rule breakdown, always printed: a regression in one family must
    // be attributable at a glance even when another family also fails.
    let counts = outcome.rule_counts();
    let rendered: Vec<String> = counts
        .iter()
        .map(|(rule, n)| format!("{rule}={n}"))
        .collect();
    push(&mut out, &format!("lint rules: {}", rendered.join(" ")));
    let relaxed = outcome.atomics.iter().filter(|s| s.relaxed).count();
    let allowed = outcome
        .atomics
        .iter()
        .filter(|s| s.relaxed && s.allowed)
        .count();
    push(
        &mut out,
        &format!(
            "atomics: {} classified sites ({relaxed} Relaxed, {allowed} justified)",
            outcome.atomics.len()
        ),
    );
    if !outcome.hotpaths.is_empty() {
        let reached: usize = outcome.hotpaths.iter().map(|r| r.reached).sum();
        let unresolved = outcome.hotpaths.iter().filter(|r| r.resolved == 0).count();
        push(
            &mut out,
            &format!(
                "hotpaths: {} roots, {reached} fns reached, {unresolved} unresolved",
                outcome.hotpaths.len()
            ),
        );
        for r in outcome.hotpaths.iter().filter(|r| r.resolved == 0) {
            push(
                &mut out,
                &format!(
                    "ERROR hotpath root {:?} resolves to no function (stale registry entry?)",
                    r.root
                ),
            );
        }
    }
    if !outcome.domains.is_empty() {
        let reached: usize = outcome.domains.iter().map(|r| r.reached).sum();
        let unresolved = outcome.domains.iter().filter(|r| r.resolved == 0).count();
        push(
            &mut out,
            &format!(
                "domains: {} roots, {reached} fns interpreted, {unresolved} unresolved",
                outcome.domains.len()
            ),
        );
        for r in outcome.domains.iter().filter(|r| r.resolved == 0) {
            push(
                &mut out,
                &format!(
                    "ERROR domain root {:?} resolves to no function (stale registry entry?)",
                    r.root
                ),
            );
        }
    }
    if let Some(total) = outcome.timings_ms.get("total") {
        let per_pass: Vec<String> = outcome
            .timings_ms
            .iter()
            .filter(|(k, _)| **k != "total")
            .map(|(k, v)| format!("{k}={v}ms"))
            .collect();
        push(
            &mut out,
            &format!("timing: total={total}ms ({})", per_pass.join(" ")),
        );
    }

    for c in conf.uncovered_must() {
        let missing = match (c.impl_sites.is_empty(), c.test_sites.is_empty()) {
            (true, true) => "impl+test",
            (true, false) => "impl",
            (false, true) => "test",
            (false, false) => unreachable!("covered claims are not uncovered"),
        };
        push(
            &mut out,
            &format!(
                "ERROR uncovered MUST pftk#{} ({}): missing {missing} citation",
                c.id, c.title
            ),
        );
    }
    for c in conf.uncovered_should() {
        push(
            &mut out,
            &format!("warn  uncovered SHOULD pftk#{} ({})", c.id, c.title),
        );
    }
    for e in &conf.errors {
        push(
            &mut out,
            &format!("ERROR {} citation pftk#{} at {}", e.kind, e.claim, e.site),
        );
    }
    for v in &outcome.lint {
        push(
            &mut out,
            &format!(
                "ERROR lint[{}] {}:{}: {}",
                v.rule,
                v.file.display(),
                v.line,
                v.snippet
            ),
        );
        if !v.chain.is_empty() {
            push(&mut out, &format!("      via {}", v.chain.join(" -> ")));
        }
    }

    push(
        &mut out,
        if outcome.is_clean() {
            "verdict: PASS"
        } else {
            "verdict: FAIL"
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::check;
    use crate::scanner::scan_text;
    use crate::spec::parse_spec;
    use std::path::Path;

    fn outcome() -> AuditOutcome {
        let reg = parse_spec(
            "[[claim]]\nid = \"eq-1\"\nlevel = \"MUST\"\nsection = \"II\"\ntitle = \"t\"\nquote = \"q\"\n",
        )
        .unwrap();
        let cites = scan_text(
            Path::new("a.rs"),
            "//= pftk#eq-1\nfn f() {}\n//= pftk#eq-1 type=test\nfn t() {}\n",
        );
        AuditOutcome {
            conformance: check(&reg, &cites),
            lint: Vec::new(),
            atomics: Vec::new(),
            policies: Vec::new(),
            hotpaths: Vec::new(),
            domains: Vec::new(),
            timings_ms: BTreeMap::new(),
        }
    }

    #[test]
    fn unresolved_hotpath_root_fails_and_renders() {
        let mut bad = outcome();
        bad.hotpaths.push(crate::hotpath::RootSummary {
            root: "Ghost::step".into(),
            reason: "r".into(),
            resolved: 0,
            reached: 0,
        });
        assert!(!bad.is_clean());
        let text = render_summary(&bad);
        assert!(text.contains("hotpaths: 1 roots"), "{text}");
        assert!(
            text.contains("ERROR hotpath root \"Ghost::step\""),
            "{text}"
        );
    }

    #[test]
    fn chain_evidence_renders_and_serializes() {
        let mut bad = outcome();
        bad.lint.push(crate::lint::LintViolation {
            rule: "hot_alloc",
            file: Path::new("crates/sim/src/event.rs").to_path_buf(),
            line: 7,
            snippet: "self.heap.push(e)".into(),
            chain: vec!["HybridQueue::pop".into(), ".push".into()],
        });
        let text = render_summary(&bad);
        assert!(text.contains("via HybridQueue::pop -> .push"), "{text}");
        let json = serde_json::to_string(&to_json(&bad)).unwrap();
        assert!(json.contains("\"chain\":[\"HybridQueue::pop\""), "{json}");
        assert!(json.contains("\"hot_alloc\":1"), "{json}");
    }

    #[test]
    fn json_round_trips_through_serde_json() {
        let json = serde_json::to_string(&to_json(&outcome())).unwrap();
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"must_covered\":1"), "{json}");
        assert!(json.contains("a.rs:1"), "{json}");
        assert!(json.contains("\"rule_counts\""), "{json}");
        assert!(json.contains("\"relaxed_atomic\":0"), "{json}");
    }

    #[test]
    fn summary_reports_pass_and_fail_with_rule_counts() {
        let ok = outcome();
        let text = render_summary(&ok);
        assert!(text.contains("verdict: PASS"));
        assert!(text.contains("lint rules:"), "{text}");
        assert!(text.contains("wall-clock=0"), "{text}");
        let mut bad = outcome();
        bad.lint.push(crate::lint::LintViolation {
            rule: "unwrap",
            file: Path::new("crates/model/src/a.rs").to_path_buf(),
            line: 3,
            snippet: "x.unwrap()".into(),
            chain: Vec::new(),
        });
        let text = render_summary(&bad);
        assert!(text.contains("verdict: FAIL"));
        assert!(text.contains("lint[unwrap]"));
        assert!(text.contains("unwrap=1"), "{text}");
    }

    #[test]
    fn unresolved_domain_root_fails_and_renders() {
        let mut bad = outcome();
        bad.domains.push(crate::numlint::DomainSummary {
            root: "ghost_kernel".into(),
            reason: "r".into(),
            resolved: 0,
            reached: 0,
        });
        assert!(!bad.is_clean());
        let text = render_summary(&bad);
        assert!(text.contains("domains: 1 roots"), "{text}");
        assert!(
            text.contains("ERROR domain root \"ghost_kernel\""),
            "{text}"
        );
        let json = serde_json::to_string(&to_json(&bad)).unwrap();
        assert!(
            json.contains("\"domains\":[{\"root\":\"ghost_kernel\""),
            "{json}"
        );
    }

    #[test]
    fn timings_render_and_serialize() {
        let mut ok = outcome();
        ok.timings_ms.insert("scanner", 3);
        ok.timings_ms.insert("numlint", 12);
        ok.timings_ms.insert("total", 40);
        let text = render_summary(&ok);
        assert!(
            text.contains("timing: total=40ms (numlint=12ms scanner=3ms)"),
            "{text}"
        );
        let json = serde_json::to_string(&to_json(&ok)).unwrap();
        assert!(json.contains("\"timings_ms\":{\"numlint\":12"), "{json}");
    }

    #[test]
    fn new_family_failure_alone_fails_the_gate() {
        // Satellite: a violation in a *new* rule family must flip the
        // verdict even when conformance and classic lints are clean.
        let mut bad = outcome();
        bad.lint.push(crate::lint::LintViolation {
            rule: "relaxed_atomic",
            file: Path::new("crates/testbed/src/pool.rs").to_path_buf(),
            line: 9,
            snippet: "x.fetch_add(1, Ordering::Relaxed)".into(),
            chain: Vec::new(),
        });
        assert!(!bad.is_clean());
        let text = render_summary(&bad);
        assert!(text.contains("verdict: FAIL"));
        assert!(text.contains("relaxed_atomic=1"), "{text}");
    }
}
