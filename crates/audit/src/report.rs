//! Report rendering: human-readable summary and `results/conformance.json`.

use serde::Serialize;

use crate::spec::Level;
use crate::AuditOutcome;

/// JSON shape of one claim's coverage.
#[derive(Debug, Serialize)]
pub struct ClaimJson {
    /// Claim id.
    pub id: String,
    /// `"MUST"` or `"SHOULD"`.
    pub level: String,
    /// Paper section.
    pub section: String,
    /// Human title.
    pub title: String,
    /// Whether the claim has both impl and test citations.
    pub covered: bool,
    /// Implementation citation sites (`file:line`).
    pub impl_sites: Vec<String>,
    /// Test citation sites (`file:line`).
    pub test_sites: Vec<String>,
}

/// JSON shape of a citation error.
#[derive(Debug, Serialize)]
pub struct CitationErrorJson {
    /// `unknown`, `stale`, `duplicate`, or `malformed`.
    pub kind: String,
    /// Citation site (`file:line`).
    pub site: String,
    /// The cited claim id.
    pub claim: String,
}

/// JSON shape of a lint violation.
#[derive(Debug, Serialize)]
pub struct LintJson {
    /// Rule name.
    pub rule: String,
    /// File path.
    pub file: String,
    /// 1-based line.
    pub line: u64,
    /// Offending line, trimmed.
    pub snippet: String,
}

/// Top-level JSON report written to `results/conformance.json`.
#[derive(Debug, Serialize)]
pub struct ReportJson {
    /// Overall gate verdict.
    pub clean: bool,
    /// Total citations scanned.
    pub citations: u64,
    /// Number of MUST claims in the registry.
    pub must_total: u64,
    /// Number of MUST claims fully covered.
    pub must_covered: u64,
    /// Per-claim coverage.
    pub claims: Vec<ClaimJson>,
    /// Citation errors.
    pub citation_errors: Vec<CitationErrorJson>,
    /// Lint violations.
    pub lint_violations: Vec<LintJson>,
}

fn level_str(level: Level) -> &'static str {
    match level {
        Level::Must => "MUST",
        Level::Should => "SHOULD",
    }
}

/// Builds the JSON report structure from an audit outcome.
pub fn to_json(outcome: &AuditOutcome) -> ReportJson {
    let conf = &outcome.conformance;
    let claims: Vec<ClaimJson> = conf
        .claims
        .iter()
        .map(|c| ClaimJson {
            id: c.id.clone(),
            level: level_str(c.level).to_string(),
            section: c.section.clone(),
            title: c.title.clone(),
            covered: c.covered(),
            impl_sites: c.impl_sites.clone(),
            test_sites: c.test_sites.clone(),
        })
        .collect();
    let must_total = conf
        .claims
        .iter()
        .filter(|c| c.level == Level::Must)
        .count() as u64;
    let must_covered = conf
        .claims
        .iter()
        .filter(|c| c.level == Level::Must && c.covered())
        .count() as u64;
    ReportJson {
        clean: outcome.is_clean(),
        citations: conf.citation_count as u64,
        must_total,
        must_covered,
        claims,
        citation_errors: conf
            .errors
            .iter()
            .map(|e| CitationErrorJson {
                kind: e.kind.to_string(),
                site: e.site.clone(),
                claim: e.claim.clone(),
            })
            .collect(),
        lint_violations: outcome
            .lint
            .iter()
            .map(|v| LintJson {
                rule: v.rule.to_string(),
                file: v.file.display().to_string(),
                line: v.line as u64,
                snippet: v.snippet.clone(),
            })
            .collect(),
    }
}

/// Renders the human summary printed by the binary.
pub fn render_summary(outcome: &AuditOutcome) -> String {
    let conf = &outcome.conformance;
    let mut out = String::new();
    let push = |out: &mut String, line: &str| {
        out.push_str(line);
        out.push('\n');
    };

    push(&mut out, "pftk-audit: paper-conformance + lint gate");
    push(&mut out, "=========================================");

    let (mut must_total, mut must_cov, mut should_total, mut should_cov) = (0u64, 0u64, 0u64, 0u64);
    for c in &conf.claims {
        match c.level {
            Level::Must => {
                must_total += 1;
                must_cov += u64::from(c.covered());
            }
            Level::Should => {
                should_total += 1;
                should_cov += u64::from(c.covered());
            }
        }
    }
    push(
        &mut out,
        &format!(
            "claims: {} ({} MUST, {} SHOULD) | citations scanned: {}",
            conf.claims.len(),
            must_total,
            should_total,
            conf.citation_count
        ),
    );
    push(
        &mut out,
        &format!("coverage: MUST {must_cov}/{must_total}, SHOULD {should_cov}/{should_total}"),
    );

    for c in conf.uncovered_must() {
        let missing = match (c.impl_sites.is_empty(), c.test_sites.is_empty()) {
            (true, true) => "impl+test",
            (true, false) => "impl",
            (false, true) => "test",
            (false, false) => unreachable!("covered claims are not uncovered"),
        };
        push(
            &mut out,
            &format!(
                "ERROR uncovered MUST pftk#{} ({}): missing {missing} citation",
                c.id, c.title
            ),
        );
    }
    for c in conf.uncovered_should() {
        push(
            &mut out,
            &format!("warn  uncovered SHOULD pftk#{} ({})", c.id, c.title),
        );
    }
    for e in &conf.errors {
        push(
            &mut out,
            &format!("ERROR {} citation pftk#{} at {}", e.kind, e.claim, e.site),
        );
    }
    for v in &outcome.lint {
        push(
            &mut out,
            &format!(
                "ERROR lint[{}] {}:{}: {}",
                v.rule,
                v.file.display(),
                v.line,
                v.snippet
            ),
        );
    }

    push(
        &mut out,
        if outcome.is_clean() {
            "verdict: PASS"
        } else {
            "verdict: FAIL"
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::check;
    use crate::scanner::scan_citations;
    use crate::spec::parse_spec;
    use std::path::Path;

    fn outcome() -> AuditOutcome {
        let reg = parse_spec(
            "[[claim]]\nid = \"eq-1\"\nlevel = \"MUST\"\nsection = \"II\"\ntitle = \"t\"\nquote = \"q\"\n",
        )
        .unwrap();
        let cites = scan_citations(
            Path::new("a.rs"),
            "//= pftk#eq-1\nfn f() {}\n//= pftk#eq-1 type=test\nfn t() {}\n",
        );
        AuditOutcome {
            conformance: check(&reg, &cites),
            lint: Vec::new(),
        }
    }

    #[test]
    fn json_round_trips_through_serde_json() {
        let json = serde_json::to_string(&to_json(&outcome())).unwrap();
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"must_covered\":1"), "{json}");
        assert!(json.contains("a.rs:1"), "{json}");
    }

    #[test]
    fn summary_reports_pass_and_fail() {
        let ok = outcome();
        assert!(render_summary(&ok).contains("verdict: PASS"));
        let mut bad = outcome();
        bad.lint.push(crate::lint::LintViolation {
            rule: "unwrap",
            file: Path::new("crates/model/src/a.rs").to_path_buf(),
            line: 3,
            snippet: "x.unwrap()".into(),
        });
        let text = render_summary(&bad);
        assert!(text.contains("verdict: FAIL"));
        assert!(text.contains("lint[unwrap]"));
    }
}
