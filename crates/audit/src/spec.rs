//! Claim registry: the `specs/pftk-spec.toml` data model and its parser.
//!
//! The registry is TOML on disk, but the auditor must stay
//! dependency-light, so this module hand-rolls a parser for the tiny
//! grammar the spec file actually uses: `[table]` / `[[array-of-tables]]`
//! headers, `key = "basic string"` (with `\"`, `\\`, `\n`, `\t` escapes),
//! `key = <integer>`, full-line and trailing comments, and blank lines.
//! Anything outside that grammar is a hard parse error — better to reject
//! a construct than to silently mis-read the registry the whole gate
//! hangs off.
//!
//! Two array-of-tables kinds are recognized: `[[claim]]` (paper claims)
//! and `[[policy]]` (per-crate/per-file lint exemptions):
//!
//! ```toml
//! [[policy]]
//! path = "crates/bench"      # workspace-relative path prefix
//! allow = "wall-clock"       # one rule from pftk_audit::lint::RULES
//! reason = "measuring wall time is the crate's purpose"
//! ```
//!
//! A policy's `reason` is mandatory, mirroring the justification
//! requirement on `//~ allow(...)` site whitelists, and `allow` must name
//! a known rule so a typo cannot silently disable nothing.

use std::collections::BTreeMap;

/// Requirement level of a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Uncovered = audit failure: the claim needs an impl and a test citation.
    Must,
    /// Uncovered = warning only.
    Should,
}

impl Level {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "MUST" => Ok(Level::Must),
            "SHOULD" => Ok(Level::Should),
            other => Err(format!(
                "unknown level {other:?} (expected \"MUST\" or \"SHOULD\")"
            )),
        }
    }
}

/// Lifecycle status of a claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Normal claim; citations are valid.
    Active,
    /// Superseded claim kept for history; citing it is a stale citation.
    Retired,
}

impl Status {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "active" => Ok(Status::Active),
            "retired" => Ok(Status::Retired),
            other => Err(format!(
                "unknown status {other:?} (expected \"active\" or \"retired\")"
            )),
        }
    }
}

/// One paper claim from the registry.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Citation id, e.g. `eq-32` — what `//= pftk#<id>` comments reference.
    pub id: String,
    /// Requirement level.
    pub level: Level,
    /// Lifecycle status (`active` unless the spec says otherwise).
    pub status: Status,
    /// Paper section, e.g. `II-B`.
    pub section: String,
    /// Short human title.
    pub title: String,
    /// Quoted or closely paraphrased paper text.
    pub quote: String,
}

/// One `[[hotpath]]` entry: a root function of the hot-path capability
/// analysis (see `crate::hotpath`).
#[derive(Debug, Clone)]
pub struct HotpathRoot {
    /// Graph key: `Type::method` for methods, a bare name for free fns.
    pub root: String,
    /// Mandatory justification for *why* this root is hot.
    pub reason: String,
}

/// One `[[domain]]` entry: a numeric-domain root for the value-range
/// analysis (see `crate::numlint`).
///
/// Besides `root` and `reason`, every other key declares the input
/// interval of one parameter (or one field of a parameter's struct
/// type), written as an interval literal:
///
/// ```toml
/// [[domain]]
/// root = "full_model"
/// reason = "Eq. (32) is only meaningful for measurable loss"
/// p = "[1e-12, 0.999999999999]"
/// rtt = "[0.001, 10]"
/// ```
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Graph key: `Type::method` for methods, a bare name for free fns.
    pub root: String,
    /// Mandatory justification tying the root to the paper's domain.
    pub reason: String,
    /// 1-based line of the `[[domain]]` header in the spec file.
    pub line: usize,
    /// Declared input intervals keyed by parameter / field name.
    pub params: BTreeMap<String, crate::domain::Range>,
}

/// One `[[policy]]` entry: a path-scoped lint exemption.
#[derive(Debug, Clone)]
pub struct LintPolicy {
    /// Workspace-relative path prefix the exemption applies to
    /// (a crate root like `crates/bench` or a single file).
    pub path: String,
    /// The lint rule being exempted (one of `lint::RULES`).
    pub allow: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed registry: ordered claims plus an id index.
#[derive(Debug)]
pub struct Registry {
    /// Claims in file order.
    pub claims: Vec<Claim>,
    /// Path-scoped lint exemptions in file order.
    pub policies: Vec<LintPolicy>,
    /// Hot-path analysis roots in file order.
    pub hotpaths: Vec<HotpathRoot>,
    /// Numeric-domain roots in file order.
    pub domains: Vec<DomainSpec>,
    index: BTreeMap<String, usize>,
}

impl Registry {
    /// Looks up a claim by citation id.
    pub fn get(&self, id: &str) -> Option<&Claim> {
        self.index.get(id).map(|&i| &self.claims[i])
    }
}

/// Parses the spec grammar described in the module docs.
pub fn parse_spec(text: &str) -> Result<Registry, String> {
    #[derive(Default)]
    struct Partial {
        fields: BTreeMap<String, String>,
        line: usize,
    }

    /// Which table header the parser is inside.
    #[derive(PartialEq, Clone, Copy)]
    enum Section {
        /// `[spec]` metadata — validated for shape, otherwise ignored.
        Spec,
        /// A `[[claim]]` entry.
        Claim,
        /// A `[[policy]]` entry.
        Policy,
        /// A `[[hotpath]]` entry.
        Hotpath,
        /// A `[[domain]]` entry.
        Domain,
    }

    let mut claims: Vec<Claim> = Vec::new();
    let mut policies: Vec<LintPolicy> = Vec::new();
    let mut hotpaths: Vec<HotpathRoot> = Vec::new();
    let mut domains: Vec<DomainSpec> = Vec::new();
    let mut index = BTreeMap::new();
    let mut current: Option<Partial> = None;
    let mut section = Section::Spec;

    let finish_hotpath =
        |partial: Option<Partial>, hotpaths: &mut Vec<HotpathRoot>| -> Result<(), String> {
            let Some(p) = partial else { return Ok(()) };
            let at = format!("[[hotpath]] at line {}", p.line);
            let take = |key: &str| -> Result<String, String> {
                p.fields
                    .get(key)
                    .cloned()
                    .ok_or_else(|| format!("{at}: missing required key {key:?}"))
            };
            let entry = HotpathRoot {
                root: take("root")?,
                reason: take("reason")?,
            };
            // `Type::method` or a bare fn name; reject shapes the call
            // graph could never resolve so a typo fails loudly at parse
            // time, not as a silent zero-match root.
            let valid_shape = match entry.root.split_once("::") {
                Some((t, m)) => is_ident_str(t) && is_ident_str(m),
                None => is_ident_str(&entry.root),
            };
            if !valid_shape {
                return Err(format!(
                    "{at}: root {:?} is not `Type::method` or a bare fn name",
                    entry.root
                ));
            }
            if entry.reason.trim().is_empty() {
                return Err(format!("{at}: reason must be non-empty"));
            }
            hotpaths.push(entry);
            Ok(())
        };

    let finish_domain =
        |partial: Option<Partial>, domains: &mut Vec<DomainSpec>| -> Result<(), String> {
            let Some(p) = partial else { return Ok(()) };
            let at = format!("[[domain]] at line {}", p.line);
            let take = |key: &str| -> Result<String, String> {
                p.fields
                    .get(key)
                    .cloned()
                    .ok_or_else(|| format!("{at}: missing required key {key:?}"))
            };
            let root = take("root")?;
            let reason = take("reason")?;
            let valid_shape = match root.split_once("::") {
                Some((t, m)) => is_ident_str(t) && is_ident_str(m),
                None => is_ident_str(&root),
            };
            if !valid_shape {
                return Err(format!(
                    "{at}: root {root:?} is not `Type::method` or a bare fn name"
                ));
            }
            if reason.trim().is_empty() {
                return Err(format!("{at}: reason must be non-empty"));
            }
            // Every other key declares one parameter's interval; parse it
            // eagerly so a malformed interval fails the spec load, not
            // silently weakens the analysis.
            let mut params = BTreeMap::new();
            for (key, value) in &p.fields {
                if key == "root" || key == "reason" {
                    continue;
                }
                if !is_ident_str(key) {
                    return Err(format!("{at}: parameter key {key:?} is not an identifier"));
                }
                let range = crate::domain::parse_interval(value).ok_or_else(|| {
                    format!(
                        "{at}: {key} = {value:?} is not an interval \
                         (expected e.g. \"[1e-12, 0.5]\" or \"(0, inf)\")"
                    )
                })?;
                params.insert(key.clone(), range);
            }
            if params.is_empty() {
                return Err(format!("{at}: declares no parameter intervals"));
            }
            domains.push(DomainSpec {
                root,
                reason,
                line: p.line,
                params,
            });
            Ok(())
        };

    let finish_policy =
        |partial: Option<Partial>, policies: &mut Vec<LintPolicy>| -> Result<(), String> {
            let Some(p) = partial else { return Ok(()) };
            let at = format!("[[policy]] at line {}", p.line);
            let take = |key: &str| -> Result<String, String> {
                p.fields
                    .get(key)
                    .cloned()
                    .ok_or_else(|| format!("{at}: missing required key {key:?}"))
            };
            let policy = LintPolicy {
                path: take("path")?,
                allow: take("allow")?,
                reason: take("reason")?,
            };
            if !crate::lint::RULES.contains(&policy.allow.as_str()) {
                return Err(format!(
                    "{at}: allow = {:?} names no known lint rule",
                    policy.allow
                ));
            }
            if policy.reason.trim().is_empty() {
                return Err(format!("{at}: reason must be non-empty"));
            }
            policies.push(policy);
            Ok(())
        };

    let finish = |partial: Option<Partial>,
                  claims: &mut Vec<Claim>,
                  index: &mut BTreeMap<String, usize>|
     -> Result<(), String> {
        let Some(p) = partial else { return Ok(()) };
        let at = format!("[[claim]] at line {}", p.line);
        let take = |key: &str| -> Result<String, String> {
            p.fields
                .get(key)
                .cloned()
                .ok_or_else(|| format!("{at}: missing required key {key:?}"))
        };
        let id = take("id")?;
        if !id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "{at}: id {id:?} has characters outside [A-Za-z0-9_-]"
            ));
        }
        let claim = Claim {
            level: Level::parse(&take("level")?).map_err(|e| format!("{at}: {e}"))?,
            status: match p.fields.get("status") {
                Some(s) => Status::parse(s).map_err(|e| format!("{at}: {e}"))?,
                None => Status::Active,
            },
            section: take("section")?,
            title: take("title")?,
            quote: take("quote")?,
            id,
        };
        if index.insert(claim.id.clone(), claims.len()).is_some() {
            return Err(format!("{at}: duplicate claim id {:?}", claim.id));
        }
        claims.push(claim);
        Ok(())
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if matches!(
            line,
            "[[claim]]" | "[[policy]]" | "[[hotpath]]" | "[[domain]]"
        ) {
            match section {
                Section::Claim => finish(current.take(), &mut claims, &mut index)?,
                Section::Policy => finish_policy(current.take(), &mut policies)?,
                Section::Hotpath => finish_hotpath(current.take(), &mut hotpaths)?,
                Section::Domain => finish_domain(current.take(), &mut domains)?,
                Section::Spec => {}
            }
            current = Some(Partial {
                fields: BTreeMap::new(),
                line: lineno,
            });
            section = match line {
                "[[claim]]" => Section::Claim,
                "[[policy]]" => Section::Policy,
                "[[domain]]" => Section::Domain,
                _ => Section::Hotpath,
            };
        } else if line.starts_with("[[") {
            return Err(format!("line {lineno}: unknown array-of-tables {line:?}"));
        } else if line.starts_with('[') {
            match section {
                Section::Claim => finish(current.take(), &mut claims, &mut index)?,
                Section::Policy => finish_policy(current.take(), &mut policies)?,
                Section::Hotpath => finish_hotpath(current.take(), &mut hotpaths)?,
                Section::Domain => finish_domain(current.take(), &mut domains)?,
                Section::Spec => {}
            }
            section = Section::Spec;
            if line != "[spec]" {
                return Err(format!("line {lineno}: unknown table {line:?}"));
            }
        } else {
            let (key, value) = parse_key_value(line).map_err(|e| format!("line {lineno}: {e}"))?;
            if section != Section::Spec {
                let p = current
                    .as_mut()
                    .ok_or_else(|| format!("line {lineno}: key outside any table"))?;
                if p.fields.insert(key.clone(), value).is_some() {
                    return Err(format!("line {lineno}: duplicate key {key:?} in entry"));
                }
            }
            // [spec] metadata (paper, version) is validated for shape only.
        }
    }
    match section {
        Section::Claim => finish(current.take(), &mut claims, &mut index)?,
        Section::Policy => finish_policy(current.take(), &mut policies)?,
        Section::Hotpath => finish_hotpath(current.take(), &mut hotpaths)?,
        Section::Domain => finish_domain(current.take(), &mut domains)?,
        Section::Spec => {}
    }

    if claims.is_empty() {
        return Err("registry contains no [[claim]] entries".into());
    }
    Ok(Registry {
        claims,
        policies,
        hotpaths,
        domains,
        index,
    })
}

/// A Rust identifier shape (`[A-Za-z_][A-Za-z0-9_]*`).
fn is_ident_str(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `key = "value"` or `key = 123`.
fn parse_key_value(line: &str) -> Result<(String, String), String> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| format!("expected `key = value`, got {line:?}"))?;
    let key = key.trim();
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(format!("bad key {key:?}"));
    }
    let rest = rest.trim();
    if let Some(body) = rest.strip_prefix('"') {
        let mut value = String::new();
        let mut chars = body.chars();
        loop {
            match chars.next() {
                None => return Err(format!("unterminated string in {line:?}")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    other => return Err(format!("unsupported escape \\{other:?} in {line:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        let tail: String = chars.collect();
        if !tail.trim().is_empty() {
            return Err(format!(
                "trailing content {:?} after string value",
                tail.trim()
            ));
        }
        Ok((key.to_string(), value))
    } else if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
        Ok((key.to_string(), rest.to_string()))
    } else {
        Err(format!(
            "unsupported value syntax {rest:?} (only basic strings and integers)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r##"
        # a comment
        [spec]
        paper = "demo"
        version = 1

        [[claim]]
        id = "eq-1"
        level = "MUST"
        section = "II"
        title = "first"
        quote = "a \"quoted\" phrase"   # trailing comment

        [[claim]]
        id = "eq-2"
        level = "SHOULD"
        status = "retired"
        section = "III"
        title = "second"
        quote = "# not a comment"
    "##;

    #[test]
    fn parses_claims_with_comments_and_escapes() {
        let reg = parse_spec(MINI).unwrap();
        assert_eq!(reg.claims.len(), 2);
        let first = reg.get("eq-1").unwrap();
        assert_eq!(first.level, Level::Must);
        assert_eq!(first.status, Status::Active);
        assert_eq!(first.quote, "a \"quoted\" phrase");
        let second = reg.get("eq-2").unwrap();
        assert_eq!(second.status, Status::Retired);
        assert_eq!(second.quote, "# not a comment");
    }

    #[test]
    fn rejects_duplicate_ids() {
        let text = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                    title = \"t\"\nquote = \"q\"\n[[claim]]\nid = \"x\"\n\
                    level = \"MUST\"\nsection = \"I\"\ntitle = \"t\"\nquote = \"q\"\n";
        let err = parse_spec(text).unwrap_err();
        assert!(err.contains("duplicate claim id"), "{err}");
    }

    #[test]
    fn rejects_missing_required_key() {
        let text = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\n";
        let err = parse_spec(text).unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
    }

    #[test]
    fn rejects_unknown_level_and_bad_syntax() {
        let bad_level = "[[claim]]\nid = \"x\"\nlevel = \"MAY\"\nsection = \"I\"\n\
                         title = \"t\"\nquote = \"q\"\n";
        assert!(parse_spec(bad_level).unwrap_err().contains("unknown level"));
        assert!(parse_spec("[spec]\nkey = [1, 2]\n")
            .unwrap_err()
            .contains("unsupported value"));
        assert!(parse_spec("[weird]\n")
            .unwrap_err()
            .contains("unknown table"));
    }

    #[test]
    fn parses_policy_entries() {
        let text = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                    title = \"t\"\nquote = \"q\"\n\n\
                    [[policy]]\npath = \"crates/bench\"\nallow = \"wall-clock\"\n\
                    reason = \"timing is the crate's purpose\"\n";
        let reg = parse_spec(text).unwrap();
        assert_eq!(reg.policies.len(), 1);
        assert_eq!(reg.policies[0].path, "crates/bench");
        assert_eq!(reg.policies[0].allow, "wall-clock");
    }

    #[test]
    fn rejects_bad_policies() {
        let unknown_rule = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                            title = \"t\"\nquote = \"q\"\n\
                            [[policy]]\npath = \"crates/bench\"\nallow = \"wibble\"\nreason = \"r\"\n";
        assert!(parse_spec(unknown_rule)
            .unwrap_err()
            .contains("names no known lint rule"));
        let no_reason = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                         title = \"t\"\nquote = \"q\"\n\
                         [[policy]]\npath = \"crates/bench\"\nallow = \"wall-clock\"\n";
        assert!(parse_spec(no_reason)
            .unwrap_err()
            .contains("missing required key \"reason\""));
    }

    #[test]
    fn parses_hotpath_entries() {
        let text = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                    title = \"t\"\nquote = \"q\"\n\n\
                    [[hotpath]]\nroot = \"HybridQueue::pop\"\nreason = \"per-event dequeue\"\n\
                    [[hotpath]]\nroot = \"estimate\"\nreason = \"per-sample math\"\n";
        let reg = parse_spec(text).unwrap();
        assert_eq!(reg.hotpaths.len(), 2);
        assert_eq!(reg.hotpaths[0].root, "HybridQueue::pop");
        assert_eq!(reg.hotpaths[1].root, "estimate");
    }

    #[test]
    fn rejects_bad_hotpaths() {
        let bad_shape = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                         title = \"t\"\nquote = \"q\"\n\
                         [[hotpath]]\nroot = \"a::b::c\"\nreason = \"r\"\n";
        assert!(parse_spec(bad_shape)
            .unwrap_err()
            .contains("not `Type::method`"));
        let no_reason = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                         title = \"t\"\nquote = \"q\"\n\
                         [[hotpath]]\nroot = \"Q::pop\"\n";
        assert!(parse_spec(no_reason)
            .unwrap_err()
            .contains("missing required key \"reason\""));
    }

    #[test]
    fn parses_domain_entries() {
        let text = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                    title = \"t\"\nquote = \"q\"\n\n\
                    [[domain]]\nroot = \"td_only\"\nreason = \"Eq. 20 domain\"\n\
                    p = \"[1e-12, 0.999999999999]\"\nrtt = \"(0, 10]\"\n";
        let reg = parse_spec(text).unwrap();
        assert_eq!(reg.domains.len(), 1);
        let d = &reg.domains[0];
        assert_eq!(d.root, "td_only");
        assert_eq!(d.params.len(), 2);
        let p = &d.params["p"];
        assert_eq!((p.lo, p.hi), (1e-12, 0.999999999999));
        assert!(d.params["rtt"].lo_open);
    }

    #[test]
    fn rejects_bad_domains() {
        let claim = "[[claim]]\nid = \"x\"\nlevel = \"MUST\"\nsection = \"I\"\n\
                     title = \"t\"\nquote = \"q\"\n";
        let bad_interval =
            format!("{claim}[[domain]]\nroot = \"f\"\nreason = \"r\"\np = \"oops\"\n");
        assert!(parse_spec(&bad_interval)
            .unwrap_err()
            .contains("is not an interval"));
        let no_params = format!("{claim}[[domain]]\nroot = \"f\"\nreason = \"r\"\n");
        assert!(parse_spec(&no_params)
            .unwrap_err()
            .contains("declares no parameter intervals"));
        let bad_root =
            format!("{claim}[[domain]]\nroot = \"a::b::c\"\nreason = \"r\"\np = \"[0, 1]\"\n");
        assert!(parse_spec(&bad_root)
            .unwrap_err()
            .contains("not `Type::method`"));
    }

    #[test]
    fn rejects_empty_registry() {
        assert!(parse_spec("[spec]\npaper = \"p\"\n")
            .unwrap_err()
            .contains("no [[claim]]"));
    }
}
