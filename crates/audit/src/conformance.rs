//! Conformance pass: joins the claim registry with scanned citations.

use std::collections::BTreeMap;

use crate::scanner::{Citation, CitationKind};
use crate::spec::{Level, Registry, Status};

/// Coverage of one claim.
#[derive(Debug, Clone)]
pub struct ClaimCoverage {
    /// The claim id.
    pub id: String,
    /// Requirement level.
    pub level: Level,
    /// Paper section.
    pub section: String,
    /// Human title.
    pub title: String,
    /// Implementation citation sites, as `file:line`.
    pub impl_sites: Vec<String>,
    /// Test citation sites, as `file:line`.
    pub test_sites: Vec<String>,
}

impl ClaimCoverage {
    /// A claim is covered when it has both impl and test citations.
    pub fn covered(&self) -> bool {
        !self.impl_sites.is_empty() && !self.test_sites.is_empty()
    }
}

/// A citation problem that fails the audit.
#[derive(Debug, Clone)]
pub struct CitationError {
    /// `unknown`, `stale`, `duplicate`, `malformed`, or `impl-in-test`.
    pub kind: &'static str,
    /// Citation site, as `file:line`.
    pub site: String,
    /// The cited claim id.
    pub claim: String,
}

/// The full conformance result.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Per-claim coverage in registry order.
    pub claims: Vec<ClaimCoverage>,
    /// Unknown / stale / duplicate / malformed citations.
    pub errors: Vec<CitationError>,
    /// Total citations scanned.
    pub citation_count: usize,
}

impl ConformanceReport {
    /// MUST-level claims that lack an impl or a test citation.
    pub fn uncovered_must(&self) -> Vec<&ClaimCoverage> {
        self.claims
            .iter()
            .filter(|c| c.level == Level::Must && !c.covered())
            .collect()
    }

    /// SHOULD-level claims that lack an impl or a test citation
    /// (reported as warnings, not failures).
    pub fn uncovered_should(&self) -> Vec<&ClaimCoverage> {
        self.claims
            .iter()
            .filter(|c| c.level == Level::Should && !c.covered())
            .collect()
    }

    /// Gate condition for the conformance pass.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.uncovered_must().is_empty()
    }
}

/// Joins registry and citations into a [`ConformanceReport`].
pub fn check(registry: &Registry, citations: &[Citation]) -> ConformanceReport {
    let mut impl_sites: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut test_sites: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut errors = Vec::new();

    for cite in citations {
        let site = format!("{}:{}", cite.file.display(), cite.line);
        if cite.malformed {
            errors.push(CitationError {
                kind: "malformed",
                site,
                claim: cite.claim.clone(),
            });
            continue;
        }
        if cite.duplicate {
            errors.push(CitationError {
                kind: "duplicate",
                site,
                claim: cite.claim.clone(),
            });
            continue;
        }
        match registry.get(&cite.claim) {
            None => {
                errors.push(CitationError {
                    kind: "unknown",
                    site,
                    claim: cite.claim.clone(),
                });
            }
            Some(claim) if claim.status == Status::Retired => {
                errors.push(CitationError {
                    kind: "stale",
                    site,
                    claim: cite.claim.clone(),
                });
            }
            // An *implementation* citation inside `#[cfg(test)]` code would
            // count test-only code as impl coverage; the test citation form
            // (`type=test`) is the correct one there.
            Some(_) if cite.kind == CitationKind::Impl && cite.in_test => {
                errors.push(CitationError {
                    kind: "impl-in-test",
                    site,
                    claim: cite.claim.clone(),
                });
            }
            Some(claim) => {
                let bucket = match cite.kind {
                    CitationKind::Impl => &mut impl_sites,
                    CitationKind::Test => &mut test_sites,
                };
                bucket.entry(claim.id.as_str()).or_default().push(site);
            }
        }
    }

    let claims = registry
        .claims
        .iter()
        .map(|c| ClaimCoverage {
            id: c.id.clone(),
            level: c.level,
            section: c.section.clone(),
            title: c.title.clone(),
            impl_sites: impl_sites.remove(c.id.as_str()).unwrap_or_default(),
            test_sites: test_sites.remove(c.id.as_str()).unwrap_or_default(),
        })
        .collect();

    ConformanceReport {
        claims,
        errors,
        citation_count: citations.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_text;
    use crate::spec::parse_spec;
    use std::path::Path;

    fn registry() -> Registry {
        parse_spec(
            "[[claim]]\nid = \"eq-1\"\nlevel = \"MUST\"\nsection = \"II\"\ntitle = \"t\"\nquote = \"q\"\n\
             [[claim]]\nid = \"eq-2\"\nlevel = \"SHOULD\"\nsection = \"II\"\ntitle = \"t\"\nquote = \"q\"\n\
             [[claim]]\nid = \"old\"\nlevel = \"SHOULD\"\nstatus = \"retired\"\nsection = \"II\"\ntitle = \"t\"\nquote = \"q\"\n",
        )
        .unwrap()
    }

    #[test]
    fn must_claim_needs_impl_and_test() {
        let reg = registry();
        let cites = scan_text(Path::new("a.rs"), "//= pftk#eq-1\nfn f() {}\n");
        let report = check(&reg, &cites);
        assert!(!report.is_clean(), "impl-only MUST coverage must not pass");
        assert_eq!(report.uncovered_must().len(), 1);

        let cites = scan_text(
            Path::new("a.rs"),
            "//= pftk#eq-1\nfn f() {}\n//= pftk#eq-1 type=test\nfn t() {}\n",
        );
        let report = check(&reg, &cites);
        assert!(report.uncovered_must().is_empty());
        assert!(report.is_clean(), "{:?}", report.errors);
        // SHOULD uncovered is a warning, not a failure.
        assert_eq!(report.uncovered_should().len(), 2);
    }

    #[test]
    fn unknown_stale_duplicate_are_errors() {
        let reg = registry();
        let text = "//= pftk#nope\n//= pftk#old\n//= pftk#eq-2\n//= pftk#eq-2\n";
        let report = check(&reg, &scan_text(Path::new("a.rs"), text));
        let kinds: Vec<_> = report.errors.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["unknown", "stale", "duplicate"]);
        assert!(!report.is_clean());
    }

    #[test]
    fn impl_citation_inside_cfg_test_is_an_error() {
        let reg = registry();
        let text = "#[cfg(test)]\nmod tests {\n    //= pftk#eq-1\n    fn t() {}\n    //= pftk#eq-2 type=test\n    fn u() {}\n}\n";
        let report = check(&reg, &scan_text(Path::new("a.rs"), text));
        let kinds: Vec<_> = report.errors.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["impl-in-test"], "{:?}", report.errors);
        // The `type=test` citation in the same module is the valid form.
        assert_eq!(report.claims[1].test_sites.len(), 1);
    }

    #[test]
    fn malformed_citation_is_an_error() {
        let reg = registry();
        let report = check(
            &reg,
            &scan_text(Path::new("a.rs"), "//= pftk#eq-1 type=bench\n"),
        );
        assert_eq!(report.errors[0].kind, "malformed");
        assert!(!report.is_clean());
    }
}
