//! Nondeterminism lints: sources of run-to-run variation in result paths.
//!
//! The validation campaigns substitute seeded synthetic traces for the
//! paper's live 1997 `tcpdump` captures (PAPER.md §5), so the whole
//! `results/` tree is only as trustworthy as bit-reproducibility from a
//! seed. This family flags the three static sources of drift:
//!
//! * **`wall-clock`** — `Instant::now()` / `SystemTime` reads. Wall time
//!   must never feed simulated results; `crates/bench` (timing is its
//!   job) is exempted by a `[[policy]]` entry rather than per-site
//!   whitelists, and the supervisor's wall-budget deadline carries a
//!   justified `//~ allow(wall-clock)` because its reading is explicitly
//!   outside the bit-identity contract (DESIGN.md §10).
//! * **`unordered-iter`** — `HashMap`/`HashSet` use in result-path crates
//!   (`model`, `sim`, `trace`, `testbed`). Iterating either feeds
//!   platform-/seed-dependent order into otherwise ordered output;
//!   membership-only sets are fine but must say so via a justified
//!   allow, so every use is a reviewed decision.
//! * **`rng-stream`** — constructing a raw RNG (`ChaCha8Rng`,
//!   `thread_rng`, `from_entropy`, …) anywhere but `sim::rng`, the one
//!   blessed seeded-stream API. Forked `SimRng` streams are replayable;
//!   ad-hoc RNGs are not.
//!
//! Detection runs on the shared lexer token stream: comments, strings and
//! `#[cfg(test)]` regions never fire.

use std::path::Path;

use crate::lexer::{SourceModel, Token, TokenKind};
use crate::lint::{Allows, LintCtx, LintViolation};
use crate::spec::LintPolicy;

/// Raw-RNG constructors and types whose appearance outside `sim::rng`
/// bypasses the seeded-stream API.
const RNG_NEEDLES: [&str; 9] = [
    "ChaCha8Rng",
    "ChaCha12Rng",
    "ChaCha20Rng",
    "StdRng",
    "SmallRng",
    "OsRng",
    "thread_rng",
    "from_entropy",
    "SeedableRng",
];

/// Runs the nondeterminism family over one lexed file.
//= pftk#det-wallclock-free
pub fn lint_nondet(
    file: &Path,
    text: &str,
    model: &SourceModel,
    policies: &[LintPolicy],
) -> Vec<LintViolation> {
    let allows = Allows::from_model(model);
    let mut ctx = LintCtx::new(file, text, &allows, policies);
    let mut out = Vec::new();

    let toks: Vec<&Token> = model.code_tokens().filter(|t| !t.in_test).collect();
    let ident = |i: usize, name: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    };
    let punct = |i: usize, p: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == p)
    };

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let rule = match t.text.as_str() {
            // `Instant::now(...)`: the `use std::time::Instant` line alone
            // is inert — only the read is nondeterministic. `SystemTime`
            // is flagged on sight (even `UNIX_EPOCH` math varies per run).
            "Instant" if punct(i + 1, "::") && ident(i + 2, "now") => "wall-clock",
            "SystemTime" => "wall-clock",
            "HashMap" | "HashSet" => "unordered-iter",
            name if RNG_NEEDLES.contains(&name) => "rng-stream",
            _ => continue,
        };
        if ctx.active(rule) {
            ctx.push(&mut out, rule, t.line);
        }
    }
    out.sort_by_key(|v| v.line);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, text: &str) -> Vec<LintViolation> {
        lint_nondet(Path::new(path), text, &SourceModel::parse(text), &[])
    }

    //= pftk#det-wallclock-free type=test
    #[test]
    fn flags_wall_clock_reads_but_not_imports() {
        let text = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let v = lint("crates/sim/src/a.rs", text);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "wall-clock");
        assert_eq!(v[0].line, 2);
        let sys = lint("crates/sim/src/a.rs", "use std::time::SystemTime;\n");
        assert_eq!(sys.len(), 1, "SystemTime is flagged even as an import");
    }

    #[test]
    fn policy_exempts_bench_from_wall_clock() {
        let policy = vec![LintPolicy {
            path: "crates/bench".into(),
            allow: "wall-clock".into(),
            reason: "timing is its job".into(),
        }];
        let text = "fn f() { let t = Instant::now(); }\n";
        let v = lint_nondet(
            Path::new("crates/bench/src/bin/b.rs"),
            text,
            &SourceModel::parse(text),
            &policy,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn flags_unordered_containers_in_result_paths_only() {
        let text =
            "use std::collections::HashSet;\nfn f() { let s: HashSet<u64> = HashSet::new(); }\n";
        let v = lint("crates/trace/src/a.rs", text);
        assert_eq!(v.len(), 2, "once per line: {v:?}");
        assert_eq!(v[0].rule, "unordered-iter");
        assert!(
            lint("crates/repro/src/a.rs", text).is_empty(),
            "out of scope"
        );
    }

    #[test]
    fn allow_with_reason_suppresses_unordered_iter() {
        let text = "fn f() {\n  //~ allow(unordered-iter): membership only, never iterated\n  let s: std::collections::HashSet<u64> = Default::default();\n}\n";
        assert!(lint("crates/trace/src/a.rs", text).is_empty());
    }

    #[test]
    fn flags_raw_rng_construction() {
        let text = "fn f() { let r = ChaCha8Rng::seed_from_u64(1); }\n";
        let v = lint("crates/sim/src/fault/plan.rs", text);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "rng-stream");
        let blessed = "fn f() { let r = SimRng::seed_from_u64(1); }\n";
        assert!(lint("crates/sim/src/fault/plan.rs", blessed).is_empty());
    }

    #[test]
    fn cfg_test_and_strings_do_not_fire() {
        let text = "#[cfg(test)]\nmod tests {\n  use std::collections::HashSet;\n  fn t() { let t = Instant::now(); }\n}\nfn f() { let s = \"Instant::now() HashMap thread_rng\"; }\n";
        assert!(lint("crates/sim/src/a.rs", text).is_empty());
    }
}
