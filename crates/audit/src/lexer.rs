//! A small hand-rolled Rust lexer and `#[cfg(test)]`-region marker.
//!
//! Every audit pass (citation scanning, lint families, the atomics
//! classifier) used to be line-regex based, which meant a `panic!` inside
//! a string literal or a citation inside a raw string could fire or count.
//! This module tokenizes real Rust source once per file and every pass
//! consumes the same token stream, so:
//!
//! * string literals (including raw strings `r#"…"#` with any number of
//!   hashes, byte strings, and multi-line strings), char literals, and
//!   lifetimes are single opaque tokens — lint needles never match inside
//!   them;
//! * line and block comments (including *nested* block comments) are
//!   [`TokenKind::LineComment`] / [`TokenKind::BlockComment`] tokens —
//!   citation (`//=`) and whitelist (`//~`) directives are read from
//!   comment tokens only, and code-looking text inside a comment never
//!   lints;
//! * `#[cfg(test)]`-gated items are brace-tracked at the *token* level and
//!   every token inside them carries [`Token::in_test`], so test-only code
//!   is skipped without the false positives of line heuristics.
//!
//! The lexer is deliberately not a full Rust parser: it does not build an
//! AST, resolve macros, or validate syntax. It only guarantees the token
//! boundaries the audit passes rely on. Unknown or malformed trailing
//! input degrades to single-character [`TokenKind::Punct`] tokens rather
//! than failing the audit.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `as`, `fn`, `r#match`, …).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `10_000u64`).
    Int,
    /// Float literal — a numeric literal containing a decimal point
    /// (`0.5`, `1.5e3`, `2.0f64`). `1e5` without a dot is classified as
    /// [`TokenKind::Int`]; the float-equality lint keys off the dot, as
    /// the paper-era heuristic did.
    Float,
    /// String, raw-string, byte-string, or raw-byte-string literal.
    /// Contents are opaque to every audit pass.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation. Multi-character operators (`::`, `==`, `!=`, `<=`,
    /// `..=`, …) are single tokens so the float-equality lint cannot
    /// mistake `<=` for `=` `=`.
    Punct,
    /// A `//` comment, text including the leading `//`.
    LineComment,
    /// A `/* … */` comment (possibly nested); text is dropped.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Source text. Kept for idents, puncts, and line comments (the
    /// audit passes match on those); empty for opaque literals and block
    /// comments to keep the model small.
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: usize,
    /// True when the token sits inside a `#[cfg(test)]`-gated item (or is
    /// part of the attribute itself).
    pub in_test: bool,
}

impl Token {
    fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// The lexed form of one source file, shared by every audit pass.
#[derive(Debug)]
pub struct SourceModel {
    /// All tokens in source order, comments included.
    pub tokens: Vec<Token>,
}

impl SourceModel {
    /// Lexes `text` and marks `#[cfg(test)]` regions.
    pub fn parse(text: &str) -> SourceModel {
        let mut tokens = lex(text);
        mark_test_regions(&mut tokens);
        SourceModel { tokens }
    }

    /// Code tokens only (comments filtered out), in source order.
    pub fn code_tokens(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| t.is_code())
    }

    /// Comment tokens only, in source order.
    pub fn comments(&self) -> impl Iterator<Item = &Token> {
        self.tokens.iter().filter(|t| !t.is_code())
    }

    /// True when `line` has at least one code token (used to distinguish
    /// standalone directive/citation comment lines from trailing ones).
    pub fn line_has_code(&self, line: usize) -> bool {
        // Multi-line tokens (strings, block comments) only record their
        // starting line; for directive/citation purposes a line inside a
        // multi-line literal never parses as a comment anyway.
        self.tokens.iter().any(|t| t.line == line && t.is_code())
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the list in order.
const MULTI_PUNCT: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "=>", "->", "<-", "..", "&&", "||",
    "<<", ">>", "+=", "-=", "*=", "/=", "%=", "^=", "|=",
];

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    /// Advances one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex(text: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        // Whitespace.
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            let mut body = String::new();
            while let Some(ch) = lx.peek(0) {
                if ch == '\n' {
                    break;
                }
                body.push(ch);
                lx.bump();
            }
            out.push(Token {
                kind: TokenKind::LineComment,
                text: body,
                line,
                in_test: false,
            });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump_n(2);
            let mut depth = 1usize;
            while depth > 0 {
                match (lx.peek(0), lx.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        lx.bump_n(2);
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        lx.bump_n(2);
                    }
                    (Some(_), _) => {
                        lx.bump();
                    }
                    (None, _) => break, // unterminated; tolerate
                }
            }
            out.push(Token {
                kind: TokenKind::BlockComment,
                text: String::new(),
                line,
                in_test: false,
            });
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, b"…", br##"…"##, b'…'.
        if is_ident_start(c) {
            if let Some(tok) = try_lex_string_prefix(&mut lx, line) {
                out.push(tok);
                continue;
            }
            let mut ident = String::new();
            while let Some(ch) = lx.peek(0) {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    lx.bump();
                } else {
                    break;
                }
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
                in_test: false,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            out.push(lex_number(&mut lx, line));
            continue;
        }
        // Plain strings.
        if c == '"' {
            lx.bump();
            lex_string_body(&mut lx);
            out.push(Token {
                kind: TokenKind::Str,
                text: String::new(),
                line,
                in_test: false,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            out.push(lex_char_or_lifetime(&mut lx, line));
            continue;
        }
        // Multi-char punctuation, longest match first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let len = op.chars().count();
            if (0..len).all(|i| lx.peek(i) == op.chars().nth(i)) {
                lx.bump_n(len);
                out.push(Token {
                    kind: TokenKind::Punct,
                    text: op.to_string(),
                    line,
                    in_test: false,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        lx.bump();
        out.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            in_test: false,
        });
    }
    out
}

/// Recognizes `r`/`b`/`br`-prefixed string or byte-char literals starting
/// at the current position. Returns `None` when the prefix is an ordinary
/// identifier (including raw identifiers like `r#match`).
fn try_lex_string_prefix(lx: &mut Lexer, line: usize) -> Option<Token> {
    let c = lx.peek(0)?;
    // b'x' byte char.
    if c == 'b' && lx.peek(1) == Some('\'') {
        lx.bump_n(1); // past b; lex_char handles the quote
        return Some(lex_char_or_lifetime(lx, line));
    }
    // b"…" byte string.
    if c == 'b' && lx.peek(1) == Some('"') {
        lx.bump_n(2);
        lex_string_body(lx);
        return Some(Token {
            kind: TokenKind::Str,
            text: String::new(),
            line,
            in_test: false,
        });
    }
    // r"…" / r#"…"# / br"…" / br#"…"# raw (byte) strings.
    let raw_off = match (c, lx.peek(1)) {
        ('r', _) => 1,
        ('b', Some('r')) => 2,
        _ => return None,
    };
    let mut hashes = 0usize;
    while lx.peek(raw_off + hashes) == Some('#') {
        hashes += 1;
    }
    if lx.peek(raw_off + hashes) != Some('"') {
        // `r#match` raw identifier or a plain ident starting with r/br.
        if hashes > 0 && raw_off == 1 {
            // Raw identifier: consume `r#` + ident so the ident pass
            // doesn't re-see the hash as punctuation.
            lx.bump_n(2);
            let mut ident = String::new();
            while let Some(ch) = lx.peek(0) {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    lx.bump();
                } else {
                    break;
                }
            }
            return Some(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
                in_test: false,
            });
        }
        return None;
    }
    lx.bump_n(raw_off + hashes + 1); // past prefix, hashes, opening quote
    loop {
        match lx.bump() {
            None => break, // unterminated; tolerate
            Some('"') => {
                let mut seen = 0usize;
                while seen < hashes && lx.peek(0) == Some('#') {
                    lx.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {}
        }
    }
    Some(Token {
        kind: TokenKind::Str,
        text: String::new(),
        line,
        in_test: false,
    })
}

/// Consumes a (possibly multi-line) string body after the opening quote.
fn lex_string_body(lx: &mut Lexer) {
    loop {
        match lx.bump() {
            None | Some('"') => break,
            Some('\\') => {
                lx.bump(); // escaped char, including \" and \\
            }
            Some(_) => {}
        }
    }
}

/// Lexes a numeric literal; classifies as [`TokenKind::Float`] iff it
/// contains a decimal point followed by a digit.
fn lex_number(lx: &mut Lexer, line: usize) -> Token {
    let mut text = String::new();
    let radix_prefixed = lx.peek(0) == Some('0')
        && matches!(lx.peek(1), Some('x') | Some('o') | Some('b') | Some('X'));
    let consume_run = |lx: &mut Lexer, text: &mut String| {
        while let Some(ch) = lx.peek(0) {
            if is_ident_continue(ch) {
                text.push(ch);
                lx.bump();
                // Exponent sign: `1e-5`, `2.5E+3`.
                if matches!(ch, 'e' | 'E')
                    && !radix_prefixed
                    && matches!(lx.peek(0), Some('+') | Some('-'))
                    && lx.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    text.push(lx.bump().unwrap_or_default());
                }
            } else {
                break;
            }
        }
    };
    consume_run(lx, &mut text);
    let mut float = false;
    // A dot directly followed by a digit continues the literal (`1.5`);
    // `0..10` and `1.max(2)` do not.
    if !radix_prefixed && lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|d| d.is_ascii_digit())
    {
        float = true;
        text.push('.');
        lx.bump();
        consume_run(lx, &mut text);
    }
    Token {
        kind: if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
        text,
        line,
        in_test: false,
    }
}

/// Disambiguates `'x'` (char literal) from `'a` (lifetime/label).
///
/// Follows `rustc_lexer`: `'X'` is a char literal only when the quote
/// after `X` actually *closes* it, i.e. the character following that
/// quote is not ident-continue. `'a` in generic position (`f<'a>`,
/// `Foo::<'a, 'b>`, `&'a str`) therefore never opens a char token, while
/// const-char generics (`W::<'x'>`) and ranges (`'a'..='z'`) still lex
/// as chars. A quote that starts neither form (malformed input) degrades
/// to a single [`TokenKind::Punct`] so damage stays local.
fn lex_char_or_lifetime(lx: &mut Lexer, line: usize) -> Token {
    lx.bump(); // opening quote
    match lx.peek(0) {
        // Escaped char: '\n', '\'', '\\', '\u{…}'.
        Some('\\') => {
            lx.bump();
            lx.bump(); // the escaped character (or `u`)
                       // Consume to the closing quote (covers \u{1F600}).
            while let Some(ch) = lx.peek(0) {
                lx.bump();
                if ch == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::Char,
                text: String::new(),
                line,
                in_test: false,
            }
        }
        // One char then a *closing* quote: char literal — unless what
        // follows the would-be closing quote continues an identifier
        // (`'l'x`), in which case the first quote opened a lifetime and
        // the second opens a char/lifetime of its own.
        Some(c)
            if lx.peek(1) == Some('\'')
                && !(is_ident_continue(c) && lx.peek(2).is_some_and(is_ident_continue)) =>
        {
            lx.bump_n(2);
            Token {
                kind: TokenKind::Char,
                text: String::new(),
                line,
                in_test: false,
            }
        }
        // Lifetime or label: consume the identifier.
        Some(c) if is_ident_continue(c) => {
            let mut name = String::from("'");
            while let Some(ch) = lx.peek(0) {
                if is_ident_continue(ch) {
                    name.push(ch);
                    lx.bump();
                } else {
                    break;
                }
            }
            Token {
                kind: TokenKind::Lifetime,
                text: name,
                line,
                in_test: false,
            }
        }
        // Dangling quote (malformed input): a bare punct token, not a
        // ghost empty lifetime that downstream passes would trip over.
        _ => Token {
            kind: TokenKind::Punct,
            text: "'".to_string(),
            line,
            in_test: false,
        },
    }
}

/// Marks every token inside a `#[cfg(test)]`-gated item with
/// [`Token::in_test`], brace-tracked over *code* tokens (string literals
/// and comments cannot confuse the depth count).
fn mark_test_regions(tokens: &mut [Token]) {
    let mut depth: i64 = 0;
    // Depth at which the innermost test item's body opened.
    let mut region_at: Option<i64> = None;
    // Saw a `#[cfg(test)]` attribute; waiting for the item body (`{`) or a
    // braceless item end (`;`).
    let mut pending = false;
    let mut i = 0;
    while i < tokens.len() {
        // Attribute group detection: `#` `[` … `]`.
        let starts_attr = tokens[i].kind == TokenKind::Punct
            && tokens[i].text == "#"
            && next_code(tokens, i + 1)
                .is_some_and(|j| tokens[j].kind == TokenKind::Punct && tokens[j].text == "[");
        if starts_attr && region_at.is_none() {
            let open = next_code(tokens, i + 1).unwrap_or(i);
            let mut j = open + 1;
            let mut bracket_depth = 1i64;
            let mut saw_cfg = false;
            let mut saw_test = false;
            while j < tokens.len() && bracket_depth > 0 {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "[" => bracket_depth += 1,
                        "]" => bracket_depth -= 1,
                        _ => {}
                    }
                } else if t.kind == TokenKind::Ident {
                    if t.text == "cfg" {
                        saw_cfg = true;
                    } else if t.text == "test" {
                        saw_test = true;
                    }
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                pending = true;
                // The attribute tokens themselves are test code.
                for t in &mut tokens[i..j] {
                    t.in_test = true;
                }
            }
            i = j;
            continue;
        }

        let in_region = region_at.is_some();
        if in_region || pending {
            tokens[i].in_test = true;
        }
        if tokens[i].kind == TokenKind::Punct {
            match tokens[i].text.as_str() {
                "{" => {
                    if pending && region_at.is_none() {
                        region_at = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if let Some(at) = region_at {
                        if depth <= at {
                            region_at = None;
                        }
                    }
                }
                ";" if pending && region_at.is_none() => {
                    // `#[cfg(test)] use …;` — the item ends here.
                    pending = false;
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Index of the next code (non-comment) token at or after `from`.
fn next_code(tokens: &[Token], from: usize) -> Option<usize> {
    (from..tokens.len()).find(|&j| tokens[j].is_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        SourceModel::parse(text)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = a.unwrap() + 0.5 - 10u64;");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
        assert!(toks.contains(&(TokenKind::Float, "0.5".into())));
        assert!(toks.contains(&(TokenKind::Int, "10u64".into())));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = kinds("a <= b == c != d => e ..= f :: g");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["<=", "==", "!=", "=>", "..=", "::"]);
    }

    #[test]
    fn strings_are_opaque_even_with_code_inside() {
        let toks = kinds("let s = \"x.unwrap() // not code\";");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let toks = kinds("let s = r#\"panic!(\"inner \" quote\")\"#; let t = r\"plain\";");
        assert!(!toks.iter().any(|(_, t)| t == "panic"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        // The trailing `;` after each string still lexes.
        assert_eq!(toks.iter().filter(|(_, t)| t == ";").count(), 2);
    }

    #[test]
    fn multi_line_and_byte_strings() {
        let toks = kinds("let s = \"line1\n .unwrap()\nline3\"; let b = b\"bytes\"; done");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert!(toks.contains(&(TokenKind::Ident, "done".into())));
        // Line counting continues through the literal.
        let model = SourceModel::parse("let s = \"a\nb\nc\";\nafter");
        let after = model
            .tokens
            .iter()
            .find(|t| t.text == "after")
            .expect("after token");
        assert_eq!(after.line, 4);
    }

    #[test]
    fn nested_block_comments_do_not_leak() {
        let toks = kinds("/* outer /* inner */ still comment .unwrap() */ fn f() {}");
        assert!(!toks.iter().any(|(_, t)| t == "unwrap"));
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
    }

    #[test]
    fn line_comments_keep_their_text() {
        let model = SourceModel::parse("//= pftk#eq-1\nfn f() {} //~ allow(unwrap): reason\n");
        let comments: Vec<_> = model.comments().map(|t| t.text.clone()).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].starts_with("//= pftk#eq-1"));
        assert!(comments[1].starts_with("//~ allow"));
        assert!(!model.line_has_code(1));
        assert!(model.line_has_code(2));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let b = b'y'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            3
        );
    }

    #[test]
    fn cfg_test_region_marks_tokens() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n\
                   fn live2() { c.unwrap(); }\n";
        let model = SourceModel::parse(src);
        let unwraps: Vec<_> = model.tokens.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 3);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        assert!(!unwraps[2].in_test, "region must close at its brace");
    }

    #[test]
    fn cfg_test_on_single_item_and_attribute_itself() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn live() {}\n\
                   #[cfg(all(test, feature = \"x\"))]\nfn gated() { y.unwrap(); }\nfn live2() {}\n";
        let model = SourceModel::parse(src);
        let live = model
            .tokens
            .iter()
            .find(|t| t.text == "live")
            .expect("live");
        assert!(!live.in_test, "braceless item ends at `;`");
        let gated_unwrap = model.tokens.iter().find(|t| t.text == "unwrap").expect("u");
        assert!(gated_unwrap.in_test, "cfg(all(test, …)) counts");
        let live2 = model.tokens.iter().find(|t| t.text == "live2").expect("l2");
        assert!(!live2.in_test);
        // The attribute's own tokens are marked.
        let cfg = model.tokens.iter().find(|t| t.text == "cfg").expect("cfg");
        assert!(cfg.in_test);
    }

    #[test]
    fn cfg_not_test_does_not_mark() {
        let src = "#[cfg(feature = \"fast\")]\nfn f() { x.unwrap(); }\n";
        let model = SourceModel::parse(src);
        assert!(model.tokens.iter().all(|t| !t.in_test));
    }

    #[test]
    fn lifetimes_in_generic_position_never_open_char_tokens() {
        // The parser layer walks generic argument lists, so `'a` after
        // `<` / `::<` must always be one Lifetime token.
        for src in [
            "fn f<'a>(x: &'a str) -> &'a str { x }",
            "Foo::<'a, 'b>::new()",
            "struct S<'s, T: 'static>(&'s T);",
            "impl<'a> Tr<'a> for W<'a> {}",
            "for<'r> fn(&'r u8)",
            "'outer: loop { break 'outer; }",
        ] {
            let toks = kinds(src);
            assert!(
                !toks.iter().any(|(k, _)| *k == TokenKind::Char),
                "char token leaked in {src:?}: {toks:?}"
            );
            assert!(
                toks.iter().any(|(k, _)| *k == TokenKind::Lifetime),
                "no lifetime in {src:?}: {toks:?}"
            );
        }
    }

    #[test]
    fn char_literals_in_generic_and_range_position_stay_chars() {
        // Const-char generics and char ranges must keep lexing as chars
        // even though they sit where a lifetime could.
        for (src, chars) in [
            ("W::<'x'>::VAL", 1),
            ("matches!(c, 'a'..='z')", 2),
            ("f('a', 'b')", 2),
            ("if b < 'a' {}", 1),
            ("let t = ('a', 'b');", 2),
        ] {
            let toks = kinds(src);
            assert_eq!(
                toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
                chars,
                "{src:?}: {toks:?}"
            );
            assert!(
                !toks.iter().any(|(k, _)| *k == TokenKind::Lifetime),
                "{src:?}: {toks:?}"
            );
        }
    }

    #[test]
    fn quote_before_ident_run_is_a_lifetime_not_a_greedy_char() {
        // `'l'x'`: the first quote opens the label `'l`, then `'x'` is a
        // char. The old lexer took `'l'` as a char and left a dangling
        // quote that garbled everything after it.
        let toks = kinds("break 'l'x'");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "break".into()),
                (TokenKind::Lifetime, "'l".into()),
                (TokenKind::Char, String::new()),
            ]
        );
    }

    #[test]
    fn dangling_quote_degrades_to_punct() {
        let toks = kinds("let x = ' ;");
        assert!(toks.contains(&(TokenKind::Punct, "'".into())), "{toks:?}");
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Lifetime));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#match = 1; r#true.unwrap();");
        assert!(toks.contains(&(TokenKind::Ident, "match".into())));
        assert!(toks.contains(&(TokenKind::Ident, "unwrap".into())));
    }
}
