//! Hot-path capability analysis: which allocation, panic, and blocking
//! operations are *reachable* from the registered hot roots.
//!
//! The dynamic counting-allocator test and the perf-smoke ceiling only
//! observe the paths a test happens to execute; this pass proves the
//! zero-alloc / panic-free / non-blocking claims for **every** path by
//! walking the [`crate::callgraph`] from each `[[hotpath]]` root in
//! `specs/pftk-spec.toml` and reporting every intrinsic effect site any
//! reachable function contains, with the full call chain as evidence.
//!
//! The effect lattice is three independent one-bit facts per operation —
//! allocates / may-panic / may-block — assigned by the needle tables
//! below and propagated root-to-leaf by reachability (a function *has*
//! an effect iff it or anything it can call performs it). Reachability
//! over the union-edged graph over-approximates: a finding can be a
//! false positive (then justified with `//~ allow(hot_*): reason`, or a
//! `[[policy]]` for structural cases), but a genuine effect on a hot
//! path cannot hide behind dispatch the heuristics failed to type.
//!
//! Known under-approximations, accepted and documented (DESIGN.md §12):
//! arithmetic overflow / division-by-zero panics, panics inside stdlib
//! macro expansions, and `debug_assert*` (compiled out of release
//! builds, which are what the hot-path claims cover).

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::lint::{policy_exempts, snippet_at, Allows, LintViolation};
use crate::spec::{HotpathRoot, LintPolicy};

/// One capability in the effect lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Heap allocation (or possible growth reallocation).
    Alloc,
    /// Possible panic.
    Panic,
    /// Possible blocking: I/O, locks, thread parking, channel receives.
    Block,
}

impl Effect {
    /// The lint rule this effect reports under.
    pub fn rule(self) -> &'static str {
        match self {
            Effect::Alloc => "hot_alloc",
            Effect::Panic => "hot_panic",
            Effect::Block => "hot_block",
        }
    }
}

/// Macros with intrinsic effects (`name!` form).
pub(crate) const MACRO_EFFECTS: [(Effect, &str); 16] = [
    (Effect::Alloc, "format!"),
    (Effect::Alloc, "vec!"),
    (Effect::Panic, "panic!"),
    (Effect::Panic, "assert!"),
    (Effect::Panic, "assert_eq!"),
    (Effect::Panic, "assert_ne!"),
    (Effect::Panic, "unreachable!"),
    (Effect::Panic, "todo!"),
    (Effect::Panic, "unimplemented!"),
    // Stdout/stderr hold a lock and write through it; on a hot path
    // that is both blocking and formatting-allocating — Block is the
    // sharper diagnosis.
    (Effect::Block, "println!"),
    (Effect::Block, "print!"),
    (Effect::Block, "eprintln!"),
    (Effect::Block, "eprint!"),
    (Effect::Block, "dbg!"),
    (Effect::Block, "write!"),
    (Effect::Block, "writeln!"),
];

/// Method names that allocate regardless of receiver type. `push` &c.
/// *may* be amortized-O(1), but growth beyond capacity reallocates —
/// exactly the "beyond-capacity-unknown" case the static pass exists to
/// surface; pre-reserved sites carry a justified allow.
const ALLOC_METHODS: [&str; 18] = [
    "push",
    "push_back",
    "push_front",
    "push_str",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "reserve",
    "reserve_exact",
    "split_off",
    "collect",
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "repeat",
];

/// Method names that can panic regardless of receiver type.
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

/// Method names that can block regardless of receiver type.
const BLOCK_METHODS: [&str; 8] = [
    "lock",
    "recv",
    "recv_timeout",
    "join",
    "wait",
    "wait_timeout",
    "park",
    "read_to_string",
];

/// Stdlib types whose constructors allocate.
const ALLOC_TYPES: [&str; 9] = [
    "Vec",
    "String",
    "Box",
    "VecDeque",
    "BinaryHeap",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
];

/// Path qualifiers whose associated functions block (I/O and threads).
const BLOCK_QUALIFIERS: [&str; 6] = ["File", "thread", "fs", "io", "stdin", "stdout"];

/// Effect of a call the workspace does not define, or `None` when the
/// name carries no known stdlib effect. `qualifier` is the explicit path
/// or resolved receiver type when one is known.
pub(crate) fn stdlib_effect(qualifier: Option<&str>, method: &str) -> Option<Effect> {
    if let Some(q) = qualifier {
        if ALLOC_TYPES.contains(&q) {
            // Constructors and conversions: `Vec::new`, `Box::new`,
            // `String::from`, `BTreeMap::default`, `Vec::with_capacity`
            // (allocates up front — cheap at init, still an allocation).
            if matches!(method, "new" | "with_capacity" | "from" | "default") {
                return Some(Effect::Alloc);
            }
        }
        if BLOCK_QUALIFIERS.contains(&q) {
            return Some(Effect::Block);
        }
    }
    if ALLOC_METHODS.contains(&method) {
        return Some(Effect::Alloc);
    }
    if PANIC_METHODS.contains(&method) {
        return Some(Effect::Panic);
    }
    if BLOCK_METHODS.contains(&method) {
        return Some(Effect::Block);
    }
    None
}

/// Per-root reachability summary for the report.
#[derive(Debug, Clone)]
pub struct RootSummary {
    /// The registry key (`Type::method` or `fn name`).
    pub root: String,
    /// Why this root is hot (from the registry).
    pub reason: String,
    /// How many graph nodes the key resolved to (0 = stale registry
    /// entry, which fails the gate).
    pub resolved: usize,
    /// How many functions are reachable from this root (inclusive).
    pub reached: usize,
}

/// Result of the hot-path analysis.
#[derive(Debug)]
pub struct HotpathAnalysis {
    /// One summary per registry root, in registry order.
    pub roots: Vec<RootSummary>,
    /// Unjustified findings (justified sites are filtered here, like
    /// every other lint family).
    pub findings: Vec<LintViolation>,
}

/// Per-file inputs the analysis needs for suppression and snippets.
pub(crate) struct FileCtx<'a> {
    /// File text for snippet extraction.
    pub text: &'a str,
    /// Parsed `//~ allow` directives.
    pub allows: &'a Allows,
}

/// Runs the analysis: multi-source BFS per root, effect-site collection
/// on every reached node, allow/policy filtering, global dedup.
pub(crate) fn analyze(
    graph: &CallGraph,
    roots: &[HotpathRoot],
    policies: &[LintPolicy],
    files: &BTreeMap<std::path::PathBuf, FileCtx<'_>>,
) -> HotpathAnalysis {
    let n = graph.nodes.len();
    // visited_by[v] = Some(root index that reached v first); parent
    // pointers reconstruct one representative chain per finding.
    let mut claimed: Vec<Option<usize>> = vec![None; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut summaries = Vec::new();
    let mut order: Vec<usize> = Vec::new(); // all reached nodes, BFS order

    for (ri, root) in roots.iter().enumerate() {
        let seeds = graph.resolve_key(&root.root);
        let mut queue: std::collections::VecDeque<usize> = seeds
            .iter()
            .copied()
            .filter(|&s| claimed[s].is_none())
            .collect();
        for &s in &queue {
            claimed[s] = Some(ri);
        }
        let mut reached = seeds.len();
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &graph.edges[v] {
                if claimed[w].is_none() {
                    claimed[w] = Some(ri);
                    parent[w] = Some(v);
                    reached += 1;
                    queue.push_back(w);
                }
            }
        }
        summaries.push(RootSummary {
            root: root.root.clone(),
            reason: root.reason.clone(),
            resolved: seeds.len(),
            reached,
        });
    }

    // Collect effect sites on every reached node.
    let mut findings = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for &v in &order {
        for site in &graph.sites[v] {
            let rule = site.effect.rule();
            let file = &graph.nodes[v].file;
            if !seen.insert((rule, file.clone(), site.line)) {
                continue;
            }
            if policy_exempts(policies, rule, file) {
                continue;
            }
            let Some(fctx) = files.get(file) else {
                continue;
            };
            if fctx.allows.allowed(site.line, rule) {
                continue;
            }
            // Chain: root → … → containing fn, then the operation.
            let mut chain = Vec::new();
            let mut cur = Some(v);
            while let Some(c) = cur {
                chain.push(graph.nodes[c].key.clone());
                cur = parent[c];
            }
            chain.reverse();
            chain.push(site.what.clone());
            findings.push(LintViolation {
                rule,
                file: file.clone(),
                line: site.line,
                snippet: snippet_at(fctx.text, site.line),
                chain,
            });
        }
    }

    HotpathAnalysis {
        roots: summaries,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::lexer::SourceModel;
    use crate::parser::parse_file;
    use std::path::PathBuf;

    fn run(src: &str, roots: &[&str]) -> HotpathAnalysis {
        run_with_policies(src, roots, &[])
    }

    fn run_with_policies(src: &str, roots: &[&str], policies: &[LintPolicy]) -> HotpathAnalysis {
        let file = PathBuf::from("crates/sim/src/x.rs");
        let model = SourceModel::parse(src);
        let parsed = parse_file(&model);
        let allows = Allows::from_model(&model);
        let graph = CallGraph::build(&[(file.clone(), parsed)]);
        let roots: Vec<HotpathRoot> = roots
            .iter()
            .map(|r| HotpathRoot {
                root: r.to_string(),
                reason: "test".into(),
            })
            .collect();
        let mut files = BTreeMap::new();
        files.insert(
            file,
            FileCtx {
                text: src,
                allows: &allows,
            },
        );
        analyze(&graph, &roots, policies, &files)
    }

    #[test]
    fn direct_effect_in_root_is_found() {
        let a = run(
            "impl Q {\n  pub fn pop(&mut self) -> u64 { self.items.remove(0); format!(\"x\"); 0 }\n}\n",
            &["Q::pop"],
        );
        assert_eq!(a.roots[0].resolved, 1);
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"hot_alloc"), "{:?}", a.findings);
    }

    #[test]
    fn transitive_effect_carries_full_chain() {
        let a = run(
            "impl Q {\n  pub fn pop(&mut self) { helper(); }\n}\n\
             fn helper() { deeper(); }\n\
             fn deeper(x: Option<u64>) { x.unwrap(); }\n",
            &["Q::pop"],
        );
        assert_eq!(a.findings.len(), 1);
        let f = &a.findings[0];
        assert_eq!(f.rule, "hot_panic");
        assert_eq!(f.chain, ["Q::pop", "helper", "deeper", "Option::unwrap"]);
    }

    #[test]
    fn justified_allow_suppresses_and_bare_does_not_hide_from_lint() {
        let a = run(
            "impl Q {\n  pub fn pop(&mut self) {\n    self.heap.push(1); //~ allow(hot_alloc): heap is the pre-sized overflow lane\n  }\n}\n",
            &["Q::pop"],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn policy_exempts_subtree() {
        let policies = vec![LintPolicy {
            path: "crates/sim".into(),
            allow: "hot_alloc".into(),
            reason: "test".into(),
        }];
        let a = run_with_policies(
            "impl Q { pub fn pop(&mut self) { self.v.push(1); } }\n",
            &["Q::pop"],
            &policies,
        );
        assert!(a.findings.is_empty());
    }

    #[test]
    fn unreachable_effects_do_not_fire() {
        let a = run(
            "impl Q { pub fn pop(&mut self) {} }\n\
             fn cold() { let v = Vec::new(); std::fs::read(\"x\").unwrap(); }\n",
            &["Q::pop"],
        );
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.roots[0].reached, 1);
    }

    #[test]
    fn unresolved_root_reports_zero() {
        let a = run("fn f() {}\n", &["Ghost::step"]);
        assert_eq!(a.roots[0].resolved, 0);
    }

    #[test]
    fn block_effects_via_locks_io_and_macros() {
        let a = run(
            "impl Q {\n  pub fn pop(&mut self) {\n    self.m.lock();\n    println!(\"tick\");\n    thread::sleep(d);\n  }\n}\n",
            &["Q::pop"],
        );
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["hot_block", "hot_block", "hot_block"]);
    }

    #[test]
    fn each_seeded_fixture_bug_class_fires() {
        // The three ISSUE-mandated seeds in miniature: format! in a hot
        // loop, an unjustified index, and (covered in unitlint tests)
        // the unit-mixing multiply.
        let a = run(
            "impl Q {\n  pub fn pop(&mut self) {\n    for i in 0..n { trace.push_str(&format!(\"{i}\")); }\n    let x = self.slots[idx];\n  }\n}\n",
            &["Q::pop"],
        );
        let rules: Vec<&str> = a.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"hot_alloc"), "{rules:?}");
        assert!(rules.contains(&"hot_panic"), "{rules:?}");
    }
}
