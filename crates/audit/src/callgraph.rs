//! Conservative workspace call graph over [`crate::parser`] items.
//!
//! Nodes are non-test library functions keyed `Type::name` (methods) or
//! `name` (free functions). Edges are produced by scanning each body's
//! token stream for call shapes and resolving them with receiver-type
//! heuristics, erring on the side of *more* edges:
//!
//! * `self.m(…)` resolves by the enclosing impl's self type;
//!   `self.field.m(…)` through the struct's field table (unwrapping one
//!   generic layer, so `Option<KarnCore>` reaches `KarnCore::m`);
//! * `x.m(…)` resolves by `x`'s declared type when the body gives one
//!   (`x: T` parameter, `let x: T`, `let x = T::new(…)`, `let x = T {…}`,
//!   `if/while let Some(x) = …self.field…`);
//! * `Type::m(…)` and `module::f(…)` resolve by path; `Self::m(…)` maps
//!   to the enclosing impl type;
//! * a method call whose receiver type is unknown falls back to a
//!   **union**: edges to *every* workspace method of that name. A trait
//!   method called through `dyn`/generic dispatch therefore reaches all
//!   implementors — over-approximation, never silent omission;
//! * calls the workspace does not define resolve against the standard
//!   library effect tables in [`crate::hotpath`], recorded on the caller
//!   as intrinsic effect sites.
//!
//! What the graph knowingly does not model (documented in DESIGN.md §12):
//! closures are attributed to their enclosing function, macro bodies are
//! opaque (the macro *call* is classified by name), and arithmetic
//! overflow/division panics are out of scope for `hot_panic`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use crate::hotpath::{stdlib_effect, Effect, MACRO_EFFECTS};
use crate::lexer::{Token, TokenKind};
use crate::parser::{type_head, ParsedFile};

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "else", "while", "for", "loop", "match", "return", "in", "move", "as", "where", "await",
];

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Graph key (`Type::name` or `name`).
    pub key: String,
    /// Workspace-relative file.
    pub file: PathBuf,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One intrinsic effect site inside a function body.
#[derive(Debug, Clone)]
pub struct EffectSite {
    /// Which effect the operation has.
    pub effect: Effect,
    /// 1-based line of the operation.
    pub line: usize,
    /// Human-readable operation (`format!`, `Vec::push`, `index []`, …).
    pub what: String,
}

/// The workspace call graph plus per-node intrinsic effects.
#[derive(Debug)]
pub struct CallGraph {
    /// All nodes, in deterministic (file, line) order.
    pub nodes: Vec<FnNode>,
    /// Adjacency (callee indices), sorted and deduped per node.
    pub edges: Vec<Vec<usize>>,
    /// Intrinsic effect sites per node.
    pub sites: Vec<Vec<EffectSite>>,
    /// Node indices by key (a key maps to every node sharing it — the
    /// same method name under two impls of one type, or trait + impls).
    index: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Node indices for a registry root key (`Type::name` or `name`).
    pub fn resolve_key(&self, key: &str) -> &[usize] {
        self.index.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Unit newtype names are collected during the same parse; exposed
    /// here so `unit_escape` shares one pass over the workspace.
    pub fn build(files: &[(PathBuf, ParsedFile)]) -> CallGraph {
        Builder::new(files).run()
    }
}

fn is_punct(t: &Token, p: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == p
}

/// Field tables: (struct, field) → (outer, inner) type heads.
type FieldTable = BTreeMap<(String, String), (String, Option<String>)>;

struct Builder<'a> {
    files: &'a [(PathBuf, ParsedFile)],
    nodes: Vec<FnNode>,
    index: BTreeMap<String, Vec<usize>>,
    /// (self type, method name) → node indices.
    typed: BTreeMap<(String, String), Vec<usize>>,
    /// method name → node indices (methods only, for union fallback).
    by_method: BTreeMap<String, Vec<usize>>,
    /// free fn name → node indices.
    free: BTreeMap<String, Vec<usize>>,
    fields: FieldTable,
}

impl<'a> Builder<'a> {
    fn new(files: &'a [(PathBuf, ParsedFile)]) -> Self {
        Builder {
            files,
            nodes: Vec::new(),
            index: BTreeMap::new(),
            typed: BTreeMap::new(),
            by_method: BTreeMap::new(),
            free: BTreeMap::new(),
            fields: BTreeMap::new(),
        }
    }

    fn run(mut self) -> CallGraph {
        // Pass 1: nodes and lookup tables.
        for (file, parsed) in self.files {
            for s in &parsed.structs {
                for f in &s.fields {
                    self.fields.insert(
                        (s.name.clone(), f.name.clone()),
                        (f.outer.clone(), f.inner.clone()),
                    );
                }
            }
            for f in &parsed.fns {
                if f.in_test {
                    continue;
                }
                let id = self.nodes.len();
                let key = f.key();
                self.nodes.push(FnNode {
                    key: key.clone(),
                    file: file.clone(),
                    line: f.line,
                });
                self.index.entry(key).or_default().push(id);
                match &f.self_type {
                    Some(t) => {
                        self.typed
                            .entry((t.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        // A trait impl is also reachable through the trait:
                        // a receiver typed `dyn Tr` / `impl Tr` resolves to
                        // every implementor, not just the (bodiless) trait
                        // declaration.
                        if let Some(tr) = &f.trait_name {
                            self.typed
                                .entry((tr.clone(), f.name.clone()))
                                .or_default()
                                .push(id);
                        }
                        self.by_method.entry(f.name.clone()).or_default().push(id);
                    }
                    None => self.free.entry(f.name.clone()).or_default().push(id),
                }
            }
        }

        // Pass 2: edges and intrinsic effect sites.
        let mut edges = vec![Vec::new(); self.nodes.len()];
        let mut sites = vec![Vec::new(); self.nodes.len()];
        let mut id = 0usize;
        for (_, parsed) in self.files {
            for f in &parsed.fns {
                if f.in_test {
                    continue;
                }
                if let Some((start, end)) = f.body {
                    let body = &parsed.toks[start..end];
                    let env = self.local_env(f, body);
                    self.scan_body(
                        body,
                        f.self_type.as_deref(),
                        &env,
                        &mut edges[id],
                        &mut sites[id],
                    );
                }
                id += 1;
            }
        }
        for adj in &mut edges {
            adj.sort_unstable();
            adj.dedup();
        }
        CallGraph {
            nodes: self.nodes,
            edges,
            sites,
            index: self.index,
        }
    }

    /// Declared types of local bindings: parameters plus `let` forms the
    /// scanner understands. One flat map per body — shadowing and block
    /// scoping are ignored (a heuristic, not a typechecker).
    fn local_env(&self, f: &crate::parser::FnItem, body: &[Token]) -> BTreeMap<String, String> {
        let mut env: BTreeMap<String, String> = f.params.iter().cloned().collect();
        let mut k = 0usize;
        while k < body.len() {
            let t = &body[k];
            if t.kind == TokenKind::Ident && t.text == "let" {
                // `let [mut] name …`
                let mut p = k + 1;
                if body
                    .get(p)
                    .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "mut")
                {
                    p += 1;
                }
                // `let Some(name) = … self.field …` / `= expr?`
                if body
                    .get(p)
                    .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "Some")
                    && body.get(p + 1).is_some_and(|t| is_punct(t, "("))
                {
                    self.bind_some_pattern(f.self_type.as_deref(), body, p, &mut env);
                } else if body.get(p).is_some_and(|t| t.kind == TokenKind::Ident) {
                    let name = body[p].text.clone();
                    if let Some(ty) = self.binding_type(body, p + 1) {
                        env.insert(name, ty);
                    }
                }
                k = p + 1;
                continue;
            }
            k += 1;
        }
        env
    }

    /// `let Some(x) = [&][mut] self.field` → bind `x` to the field's
    /// inner type (`Option<KarnCore>` → `KarnCore`).
    fn bind_some_pattern(
        &self,
        self_type: Option<&str>,
        body: &[Token],
        some_at: usize,
        env: &mut BTreeMap<String, String>,
    ) {
        let Some(selfty) = self_type else { return };
        let name_at = some_at + 2;
        if !(body
            .get(name_at)
            .is_some_and(|t| t.kind == TokenKind::Ident)
            && body.get(name_at + 1).is_some_and(|t| is_punct(t, ")"))
            && body.get(name_at + 2).is_some_and(|t| is_punct(t, "=")))
        {
            return;
        }
        // Skip `&` / `mut` after the `=`.
        let mut p = name_at + 3;
        while body
            .get(p)
            .is_some_and(|t| is_punct(t, "&") || (t.kind == TokenKind::Ident && t.text == "mut"))
        {
            p += 1;
        }
        if body
            .get(p)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == "self")
            && body.get(p + 1).is_some_and(|t| is_punct(t, "."))
            && body.get(p + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let field = body[p + 2].text.clone();
            if let Some((outer, inner)) = self.fields.get(&(selfty.to_string(), field)) {
                let ty = inner.clone().unwrap_or_else(|| outer.clone());
                env.insert(body[name_at].text.clone(), ty);
            }
        }
    }

    /// Type of a `let name …` binding from what follows the name:
    /// `: Type` annotation, or `= Type::ctor(…)` / `= Type {…}`.
    fn binding_type(&self, body: &[Token], after_name: usize) -> Option<String> {
        match body.get(after_name) {
            Some(t) if is_punct(t, ":") => {
                // Annotation runs to `=` or `;` at this level; a flat
                // scan is enough for the annotations the workspace uses.
                let stop = (after_name + 1..body.len())
                    .find(|&k| is_punct(&body[k], "=") || is_punct(&body[k], ";"))
                    .unwrap_or(body.len());
                type_head(&body[after_name + 1..stop])
            }
            Some(t) if is_punct(t, "=") => {
                let t0 = body.get(after_name + 1)?;
                if t0.kind != TokenKind::Ident || !t0.text.chars().next()?.is_uppercase() {
                    return None;
                }
                let next = body.get(after_name + 2)?;
                if is_punct(next, "::") || is_punct(next, "{") {
                    Some(t0.text.clone())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Scans one body for macro calls, path calls, method calls, free-fn
    /// calls, and panicking index expressions.
    fn scan_body(
        &self,
        body: &[Token],
        self_type: Option<&str>,
        env: &BTreeMap<String, String>,
        edges: &mut Vec<usize>,
        sites: &mut Vec<EffectSite>,
    ) {
        let ident_at =
            |k: usize| -> Option<&Token> { body.get(k).filter(|t| t.kind == TokenKind::Ident) };
        for k in 0..body.len() {
            let t = &body[k];
            // Macro call: `name ! (…)` / `name ! […]` / `name ! {…}`.
            if t.kind == TokenKind::Ident
                && body.get(k + 1).is_some_and(|n| is_punct(n, "!"))
                && body
                    .get(k + 2)
                    .is_some_and(|n| is_punct(n, "(") || is_punct(n, "[") || is_punct(n, "{"))
            {
                let mac = format!("{}!", t.text);
                if let Some((effect, _)) = MACRO_EFFECTS.iter().find(|(_, m)| *m == mac) {
                    sites.push(EffectSite {
                        effect: *effect,
                        line: t.line,
                        what: mac,
                    });
                }
                continue;
            }
            // Panicking index: `expr[…]` where expr ends in ident/`)`/`]`.
            if is_punct(t, "[")
                && k > 0
                && (matches!(body[k - 1].kind, TokenKind::Ident if !NON_CALL_KEYWORDS.contains(&body[k - 1].text.as_str()) && body[k - 1].text != "self")
                    || is_punct(&body[k - 1], ")")
                    || is_punct(&body[k - 1], "]"))
            {
                sites.push(EffectSite {
                    effect: Effect::Panic,
                    line: t.line,
                    what: format!("index {}[]", body[k - 1].text),
                });
                continue;
            }
            if !is_punct(t, "(") || k == 0 {
                continue;
            }
            let Some(callee) = ident_at(k - 1) else {
                continue;
            };
            if NON_CALL_KEYWORDS.contains(&callee.text.as_str()) {
                continue;
            }
            let m = callee.text.clone();
            let line = callee.line;
            match body.get(k.wrapping_sub(2)) {
                // `Type::m(…)` / `module::f(…)` / `Self::m(…)`.
                Some(p) if is_punct(p, "::") => {
                    let seg = ident_at(k.wrapping_sub(3)).map(|t| t.text.clone());
                    let qualifier = match seg.as_deref() {
                        Some("Self") => self_type.map(str::to_string),
                        other => other.map(str::to_string),
                    };
                    self.resolve_path_call(qualifier.as_deref(), &m, line, edges, sites);
                }
                // `recv.m(…)`.
                Some(p) if is_punct(p, ".") => {
                    let recv_ty = self.receiver_type(body, k - 2, self_type, env);
                    self.resolve_method_call(recv_ty.as_deref(), &m, line, edges, sites);
                }
                // `fn m(…)` definition (nested fn) — not a call.
                Some(p) if p.kind == TokenKind::Ident && p.text == "fn" => {}
                // Bare call `m(…)`: free fn if the workspace defines one.
                // A preceding non-keyword ident (`struct S(`, matcher
                // fragments) means this is not expression position.
                Some(p)
                    if p.kind == TokenKind::Ident
                        && !NON_CALL_KEYWORDS.contains(&p.text.as_str()) => {}
                _ => {
                    if let Some(ids) = self.free.get(&m) {
                        edges.extend(ids.iter().copied());
                    }
                }
            }
        }
    }

    /// Declared type of the receiver ending at the `.` before a method
    /// name (`dot_at` indexes that `.`).
    fn receiver_type(
        &self,
        body: &[Token],
        dot_at: usize,
        self_type: Option<&str>,
        env: &BTreeMap<String, String>,
    ) -> Option<String> {
        let recv = body.get(dot_at.checked_sub(1)?)?;
        if recv.kind != TokenKind::Ident {
            return None;
        }
        let before_recv = dot_at.checked_sub(2).and_then(|k| body.get(k));
        let via_field = before_recv.is_some_and(|t| is_punct(t, "."));
        if via_field {
            // `self.field.m(…)` — anything deeper stays unknown.
            let owner = dot_at.checked_sub(3).and_then(|k| body.get(k))?;
            if owner.kind == TokenKind::Ident && owner.text == "self" {
                let selfty = self_type?;
                let (outer, _) = self.fields.get(&(selfty.to_string(), recv.text.clone()))?;
                return Some(outer.clone());
            }
            return None;
        }
        if recv.text == "self" {
            return self_type.map(str::to_string);
        }
        env.get(&recv.text).cloned()
    }

    fn resolve_path_call(
        &self,
        qualifier: Option<&str>,
        m: &str,
        line: usize,
        edges: &mut Vec<usize>,
        sites: &mut Vec<EffectSite>,
    ) {
        if let Some(q) = qualifier {
            if let Some(ids) = self.typed.get(&(q.to_string(), m.to_string())) {
                edges.extend(ids.iter().copied());
                return;
            }
            if let Some(effect) = stdlib_effect(Some(q), m) {
                sites.push(EffectSite {
                    effect,
                    line,
                    what: format!("{q}::{m}"),
                });
                return;
            }
            // `module::f(…)`: a free fn behind a module path.
            if q.chars().next().is_some_and(char::is_lowercase) {
                if let Some(ids) = self.free.get(m) {
                    edges.extend(ids.iter().copied());
                }
            }
            return;
        }
        if let Some(ids) = self.free.get(m) {
            edges.extend(ids.iter().copied());
        }
    }

    fn resolve_method_call(
        &self,
        recv_ty: Option<&str>,
        m: &str,
        line: usize,
        edges: &mut Vec<usize>,
        sites: &mut Vec<EffectSite>,
    ) {
        if let Some(ty) = recv_ty {
            if let Some(ids) = self.typed.get(&(ty.to_string(), m.to_string())) {
                edges.extend(ids.iter().copied());
                return;
            }
            if let Some(effect) = stdlib_effect(Some(ty), m) {
                sites.push(EffectSite {
                    effect,
                    line,
                    what: format!("{ty}::{m}"),
                });
                return;
            }
        }
        // Unknown receiver, or a known type without that method (trait
        // call through a bound): classify stdlib effect names
        // intrinsically, otherwise union over same-named workspace
        // methods so dynamic dispatch is never silently dropped.
        if let Some(effect) = stdlib_effect(None, m) {
            sites.push(EffectSite {
                effect,
                line,
                what: format!(".{m}"),
            });
            return;
        }
        if let Some(ids) = self.by_method.get(m) {
            edges.extend(ids.iter().copied());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceModel;
    use crate::parser::parse_file;

    fn graph(srcs: &[(&str, &str)]) -> CallGraph {
        let files: Vec<(PathBuf, ParsedFile)> = srcs
            .iter()
            .map(|(p, s)| (PathBuf::from(p), parse_file(&SourceModel::parse(s))))
            .collect();
        CallGraph::build(&files)
    }

    fn callees<'g>(g: &'g CallGraph, key: &str) -> Vec<&'g str> {
        let id = g.resolve_key(key)[0];
        g.edges[id]
            .iter()
            .map(|&c| g.nodes[c].key.as_str())
            .collect()
    }

    #[test]
    fn self_and_free_calls_resolve() {
        let g = graph(&[(
            "a.rs",
            "fn helper(x: u64) -> u64 { x }\n\
             impl Engine {\n  fn step(&mut self) { self.inner(); helper(1); }\n  fn inner(&mut self) {}\n}\n",
        )]);
        assert_eq!(callees(&g, "Engine::step"), ["helper", "Engine::inner"]);
    }

    #[test]
    fn field_and_option_field_receivers_resolve() {
        let g = graph(&[(
            "a.rs",
            "pub struct Analyzer { karn: Option<KarnCore>, depth: Gauge }\n\
             impl KarnCore { pub fn on_send(&mut self) {} }\n\
             impl Gauge { pub fn bump(&mut self) {} }\n\
             impl Analyzer {\n  fn on_event(&mut self) {\n    if let Some(karn) = &mut self.karn { karn.on_send(); }\n    self.depth.bump();\n  }\n}\n",
        )]);
        assert_eq!(
            callees(&g, "Analyzer::on_event"),
            ["KarnCore::on_send", "Gauge::bump"]
        );
    }

    #[test]
    fn typed_locals_and_path_calls_resolve() {
        let g = graph(&[(
            "a.rs",
            "impl Core { pub fn new() -> Core { Core }\n  pub fn work(&self) {} }\n\
             fn run() {\n  let c = Core::new();\n  c.work();\n  let d: Core = make();\n  d.work();\n}\nfn make() -> Core { Core::new() }\n",
        )]);
        let cs = callees(&g, "run");
        assert!(cs.contains(&"Core::new"), "{cs:?}");
        assert!(cs.contains(&"Core::work"), "{cs:?}");
        assert!(cs.contains(&"make"), "{cs:?}");
    }

    #[test]
    fn unknown_receiver_unions_same_named_methods() {
        let g = graph(&[(
            "a.rs",
            "impl Hybrid { pub fn pop(&mut self) {} }\n\
             impl Legacy { pub fn pop(&mut self) {} }\n\
             fn drive(q: &mut Q) { q.pop(); }\n",
        )]);
        // `Q` is not defined here, so `.pop()` must reach both impls.
        assert_eq!(callees(&g, "drive"), ["Hybrid::pop", "Legacy::pop"]);
    }

    #[test]
    fn trait_typed_receiver_reaches_every_implementor() {
        let g = graph(&[(
            "a.rs",
            "pub trait Watch { fn on_seq(&mut self, seq: u64); }\n\
             impl Watch for Quiet { fn on_seq(&mut self, _seq: u64) {} }\n\
             impl Watch for Greedy { fn on_seq(&mut self, seq: u64) { self.log(seq); } }\n\
             impl Greedy { fn log(&mut self, _seq: u64) {} }\n\
             fn fan(w: &mut dyn Watch, seq: u64) { w.on_seq(seq); }\n",
        )]);
        let cs = callees(&g, "fan");
        assert!(cs.contains(&"Quiet::on_seq"), "{cs:?}");
        assert!(cs.contains(&"Greedy::on_seq"), "{cs:?}");
    }

    #[test]
    fn stdlib_needles_become_intrinsic_sites_not_unions() {
        let g = graph(&[(
            "a.rs",
            "fn f(v: &mut V) { v.push(1); v.lock(); o.unwrap(); format!(\"x\"); idx[3]; }\n",
        )]);
        let id = g.resolve_key("f")[0];
        assert!(g.edges[id].is_empty(), "needle names must not union");
        let whats: Vec<&str> = g.sites[id].iter().map(|s| s.what.as_str()).collect();
        assert_eq!(
            whats,
            ["V::push", "V::lock", ".unwrap", "format!", "index idx[]"]
        );
    }

    #[test]
    fn attribute_and_vec_macro_brackets_do_not_count_as_indexing() {
        let g = graph(&[("a.rs", "fn f() { let v = vec![1, 2]; let a = [0u8; 4]; }\n")]);
        let id = g.resolve_key("f")[0];
        assert!(
            g.sites[id].iter().all(|s| !s.what.starts_with("index")),
            "{:?}",
            g.sites[id]
        );
    }

    #[test]
    fn test_fns_are_excluded() {
        let g = graph(&[(
            "a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { live(); }\n}\n",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].key, "live");
    }

    #[test]
    fn cross_file_resolution() {
        let g = graph(&[
            (
                "a.rs",
                "impl Queue { pub fn schedule(&mut self) { grow(); } }\n",
            ),
            (
                "b.rs",
                "pub fn grow() {}\nfn outer(q: &mut Queue) { q.schedule(); }\n",
            ),
        ]);
        assert_eq!(callees(&g, "outer"), ["Queue::schedule"]);
        assert_eq!(callees(&g, "Queue::schedule"), ["grow"]);
    }
}
