//! Golden tests for the interprocedural passes: a seeded fixture
//! mini-workspace under `tests/fixtures/hotlint/` (its own spec with a
//! `[[hotpath]]` registry, `crates/*/src` trees, deliberately buggy
//! sources that are never compiled) is audited end-to-end through
//! [`pftk_audit::run_audit`], and every finding — rule, site, and full
//! call chain — is compared against the checked-in `expected.txt`.
//!
//! The corpus seeds one bug per failure mode: `format!` in a hot loop,
//! an unguarded index one call down, a mutex lock, an `unwrap` three
//! calls deep, an allocation behind `dyn` dispatch, an allocation after
//! a malformed item (parser recovery), and a `Seconds * PacketsPerSec`
//! product plus a raw `.0` strip. Two clean files (a justified allow, a
//! same-unit module) prove the passes stay quiet when they should.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/hotlint")
}

fn outcome() -> pftk_audit::AuditOutcome {
    pftk_audit::run_audit(&fixture_root()).expect("fixture audit runs")
}

fn render(outcome: &pftk_audit::AuditOutcome) -> String {
    let mut s = String::new();
    for v in &outcome.lint {
        write!(s, "{} {}:{}", v.rule, v.file.display(), v.line).unwrap();
        if !v.chain.is_empty() {
            write!(s, " via {}", v.chain.join(" -> ")).unwrap();
        }
        s.push('\n');
    }
    s
}

#[test]
fn every_seeded_bug_is_flagged_with_its_chain() {
    let actual = render(&outcome());
    let golden = fixture_root().join("expected.txt");
    let expected = std::fs::read_to_string(&golden).expect("golden file");
    assert_eq!(
        actual,
        expected,
        "fixture findings diverged from {} — if the change is intended, \
         update the golden file",
        golden.display()
    );
}

#[test]
fn every_fixture_root_resolves_and_is_walked() {
    let outcome = outcome();
    assert_eq!(outcome.hotpaths.len(), 7, "{:?}", outcome.hotpaths);
    for root in &outcome.hotpaths {
        assert!(root.resolved > 0, "unresolved root {root:?}");
        assert!(root.reached >= root.resolved, "{root:?}");
    }
    // The deep chain really walks Gate::on_send -> outer -> mid.
    let gate = outcome
        .hotpaths
        .iter()
        .find(|r| r.root == "Gate::on_send")
        .expect("Gate root present");
    assert_eq!(gate.reached, 3, "{gate:?}");
}

#[test]
fn clean_fixtures_stay_clean() {
    let outcome = outcome();
    for clean in ["allowed_ok.rs", "units_ok.rs"] {
        assert!(
            !outcome.lint.iter().any(|v| v.file.ends_with(clean)),
            "{clean} should have no findings: {:?}",
            outcome.lint
        );
    }
}
