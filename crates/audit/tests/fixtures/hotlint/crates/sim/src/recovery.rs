//! Parser recovery: the malformed item must not hide the bug below it.

const BROKEN: [u64; = 3]; // deliberately not valid Rust

/// Hot root declared after the damage (fixture).
pub fn on_tick(xs: &mut Vec<u64>) {
    xs.extend([1, 2, 3]);
}
