//! Seeded bug: the panic hides three calls below the root.

/// Pacing gate (fixture).
pub struct Gate {
    credit: Option<u64>,
}

impl Gate {
    /// Hot root: spends pacing credit.
    pub fn on_send(&mut self) {
        self.outer();
    }

    fn outer(&mut self) {
        self.mid();
    }

    fn mid(&mut self) {
        let c = self.credit.unwrap();
        self.credit = Some(c);
    }
}
