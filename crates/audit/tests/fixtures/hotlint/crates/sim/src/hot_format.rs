//! Seeded bug: allocation in the steady-state send loop.

/// Per-connection send scheduler (fixture).
pub struct Pump {
    buf: Vec<u64>,
}

impl Pump {
    /// Hot root: drains the send window.
    pub fn run(&mut self, n: u64) {
        let mut i = 0;
        while i < n {
            self.step(i);
            i += 1;
        }
    }

    fn step(&mut self, seq: u64) {
        let label = format!("seq={seq}");
        if !label.is_empty() {
            self.buf.push(seq);
        }
    }
}
