//! Union dispatch: a `dyn` receiver reaches every implementor, so the
//! allocating one is caught even though the quiet one would be fine.

/// Observer of send events (fixture).
pub trait Watch {
    /// Consumes one sequence number.
    fn on_seq(&mut self, seq: u64);
}

/// Drops everything (fixture).
pub struct Quiet;

impl Watch for Quiet {
    fn on_seq(&mut self, _seq: u64) {}
}

/// Records everything (fixture).
pub struct Greedy {
    log: Vec<u64>,
}

impl Watch for Greedy {
    fn on_seq(&mut self, seq: u64) {
        self.log.push(seq);
    }
}

/// Hot root: fans one sequence number out to a watcher (fixture).
pub fn fan(w: &mut dyn Watch, seq: u64) {
    w.on_seq(seq);
}
