//! Seeded bug: unguarded index reachable from the ack path.

/// Reassembly window (fixture).
pub struct Window {
    slots: Vec<u64>,
}

impl Window {
    /// Hot root: acknowledges one slot.
    pub fn on_ack(&mut self, idx: usize) {
        self.mark(idx);
    }

    fn mark(&mut self, idx: usize) {
        self.slots[idx] = 1;
    }
}
