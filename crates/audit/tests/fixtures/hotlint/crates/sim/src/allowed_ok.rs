//! Clean case: the one reachable allocation carries a justified allow.

/// Event sink with a pooled buffer (fixture).
pub struct Sink {
    out: Vec<u64>,
}

impl Sink {
    /// Hot root: records one event into the pooled buffer.
    pub fn on_event(&mut self, seq: u64) {
        self.out.push(seq); //~ allow(hot_alloc): pooled buffer; capacity persists across drains
    }
}
