//! Seeded bug: a mutex acquisition reachable from a per-packet root.

use std::sync::Mutex;

/// Shared packet counter (fixture).
pub struct Meter {
    inner: Mutex<u64>,
}

impl Meter {
    /// Hot root: accounts one packet.
    pub fn on_send(&self) {
        if let Ok(mut g) = self.inner.lock() {
            *g += 1;
        }
    }
}
