//! Seeded bug: dimensionally bogus arithmetic on unit newtypes, plus a
//! raw `.0` strip outside the unit's own impl.

/// Seconds (fixture unit).
#[must_use]
pub struct Seconds(pub f64);

/// Packets per second (fixture unit).
#[must_use]
pub struct PacketsPerSec(pub f64);

/// Multiplies a duration by a rate without converting first (seeded).
pub fn bogus_product(rtt: Seconds, rate: PacketsPerSec) -> f64 {
    rtt * rate
}

/// Strips the dimension off a duration (seeded).
pub fn bogus_strip(rtt: Seconds) -> f64 {
    rtt.0
}
