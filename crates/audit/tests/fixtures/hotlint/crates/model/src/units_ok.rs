//! Clean case: same-unit arithmetic and own-impl field access are fine.

/// Round-trip count (fixture unit).
#[must_use]
pub struct Rounds(pub f64);

impl Rounds {
    /// The raw count; the unit's own impl may touch its field.
    pub fn get(self) -> f64 {
        self.0
    }
}

/// Adds two round counts — same unit, no escape.
pub fn total(a: Rounds, b: Rounds) -> Rounds {
    Rounds(a.get() + b.get())
}
