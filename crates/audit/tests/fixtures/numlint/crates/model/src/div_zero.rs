//! Seeded bug: denominator interval contains zero.

/// Kernel whose declared domain lets the denominator vanish (fixture).
pub fn inverse(x: f64) -> f64 {
    1.0 / x
}
