//! Seeded bug: division by zero two calls below the declared root —
//! the finding must carry the full `top -> mid -> leaf` chain.

/// Declared root: forwards its argument down the helper chain.
pub fn top(x: f64) -> f64 {
    mid(x)
}

fn mid(x: f64) -> f64 {
    leaf(x)
}

fn leaf(d: f64) -> f64 {
    2.0 / d
}
