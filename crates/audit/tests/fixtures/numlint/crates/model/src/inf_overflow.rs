//! Seeded bug: silent overflow — the product saturates to +inf on part
//! of the declared domain and the root returns bare `f64`, so nothing
//! downstream can tell the rate from a real one.

/// Attains `f64::INFINITY` at the top of its domain (fixture).
pub fn blowup(x: f64) -> f64 {
    x * f64::MAX
}
