//! Clean file: total over its declared domain, so the analyzer must
//! stay quiet.

/// Denominator is bounded in `[2, 3]`: provably total (fixture).
pub fn safe_rate(x: f64, y: f64) -> f64 {
    (x + 1.0) / (y + 2.0)
}
