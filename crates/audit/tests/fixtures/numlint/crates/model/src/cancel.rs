//! Seeded bug: the denominator is the difference of two same-sign,
//! overlapping quantities — catastrophic cancellation feeding a divide.

/// `a` and `b` share the interval `[1, 2]`, so `a - b` keeps only
/// rounding error when they are close (fixture).
pub fn gap_ratio(a: f64, b: f64) -> f64 {
    let d = a - b;
    1.0 / d
}
