//! Seeded bugs: two distinct NaN sources — a 0/0 ratio and a square
//! root of a possibly-negative argument.

/// Both operand intervals contain zero, so 0/0 is reachable (fixture).
pub fn zero_over_zero(x: f64, y: f64) -> f64 {
    x / y
}

/// The radicand dips below zero on part of the declared domain (fixture).
pub fn sqrt_of_negative(x: f64) -> f64 {
    (0.5 - x).sqrt()
}
