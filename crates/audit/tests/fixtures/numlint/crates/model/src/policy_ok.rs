//! Clean-by-policy file: the seeded 0/0 is exempted by a `[[policy]]`
//! entry in the fixture spec, which must suppress the finding.

/// Ratio the fixture policy exempts from `nan_source` (fixture).
pub fn ratio(x: f64, y: f64) -> f64 {
    x / y
}
