//! Clean kernel whose `[[domain]]` entry declares a parameter that no
//! longer exists — the registry drifted from the code (fixture).

/// Doubles its input; the spec still declares a vanished `nope` key.
pub fn scale(x: f64) -> f64 {
    x * 2.0
}
