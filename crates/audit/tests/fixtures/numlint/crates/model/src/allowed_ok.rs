//! Clean-by-annotation file: the seeded division hazard carries a
//! justified `//~ allow`, which must suppress the finding.

/// Division a caller-side invariant keeps safe (fixture).
pub fn guarded_inverse(x: f64) -> f64 {
    //~ allow(div_domain): callers validate x against zero upstream
    1.0 / x
}
