//! Golden tests for the numeric-domain analysis: a seeded fixture
//! mini-workspace under `tests/fixtures/numlint/` (its own spec with a
//! `[[domain]]` registry, a `crates/model/src` tree of deliberately
//! buggy kernels that are never compiled) is audited end-to-end through
//! [`pftk_audit::run_audit`], and every finding — rule, site, and full
//! propagation chain — is compared against the checked-in
//! `expected.txt`.
//!
//! The corpus seeds one bug per rule: a vanishing denominator, a 0/0
//! ratio plus a negative radicand, a silent overflow to `f64::MAX`·x, a
//! near-cancelling subtraction feeding a divide, a hazard two calls
//! below its root (chain evidence), and two stale registry entries (a
//! vanished parameter key and a vanished root). Three controls — a
//! provably-total kernel, a justified `//~ allow`, and a `[[policy]]`
//! exemption — prove the pass stays quiet when it should.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/numlint")
}

fn outcome() -> pftk_audit::AuditOutcome {
    pftk_audit::run_audit(&fixture_root()).expect("fixture audit runs")
}

fn render(outcome: &pftk_audit::AuditOutcome) -> String {
    let mut s = String::new();
    for v in &outcome.lint {
        write!(s, "{} {}:{}", v.rule, v.file.display(), v.line).unwrap();
        if !v.chain.is_empty() {
            write!(s, " via {}", v.chain.join(" -> ")).unwrap();
        }
        s.push('\n');
    }
    s
}

#[test]
fn every_seeded_domain_bug_is_flagged_with_its_chain() {
    let actual = render(&outcome());
    let golden = fixture_root().join("expected.txt");
    let expected = std::fs::read_to_string(&golden).expect("golden file");
    assert_eq!(
        actual,
        expected,
        "fixture findings diverged from {} — if the change is intended, \
         update the golden file",
        golden.display()
    );
}

#[test]
fn domain_roots_resolve_except_the_seeded_ghost() {
    let outcome = outcome();
    assert_eq!(outcome.domains.len(), 11, "{:?}", outcome.domains);
    for root in &outcome.domains {
        if root.root == "ghost_fn" {
            assert_eq!(root.resolved, 0, "{root:?}");
        } else {
            assert!(root.resolved > 0, "unresolved root {root:?}");
            assert!(root.reached >= root.resolved, "{root:?}");
        }
    }
    // The chain case really walks top -> mid -> leaf.
    let top = outcome
        .domains
        .iter()
        .find(|r| r.root == "top")
        .expect("top root present");
    assert_eq!(top.reached, 3, "{top:?}");
    // A stale root alone fails the gate.
    assert!(!outcome.is_clean());
}

#[test]
fn clean_allow_and_policy_controls_stay_clean() {
    let outcome = outcome();
    for clean in ["clean_ok.rs", "allowed_ok.rs", "policy_ok.rs"] {
        assert!(
            !outcome.lint.iter().any(|v| v.file.ends_with(clean)),
            "{clean} should have no findings: {:?}",
            outcome.lint
        );
    }
}

#[test]
fn per_pass_timings_cover_every_pass_group() {
    let timings = &outcome().timings_ms;
    for key in ["scanner", "detlint", "hotlint", "numlint", "total"] {
        assert!(timings.contains_key(key), "missing timing {key:?}");
    }
}
