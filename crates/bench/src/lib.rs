//! Benchmark-only crate; see the `benches/` directory. Groups:
//!
//! * `model_kernels` — the analytic equations (TFRC-style per-feedback cost);
//! * `simulators` — packet-level and rounds-based engines, loss models;
//! * `analyzer` — trace classification, Karn timing, (de)serialization;
//! * `tables_figures` — one group per regenerated table/figure (quick scale);
//! * `ablations` — model tiers, exact-vs-approx Q̂, loss-process choice.
