//! Benchmark crate: Criterion-style groups under `benches/` plus the
//! `bench_report` binary under `src/bin/` that persists machine-readable
//! throughput numbers.
//!
//! # Benchmark groups (`cargo bench -p tcp-bench`)
//!
//! * `model_kernels` — the analytic equations (TFRC-style per-feedback cost);
//! * `simulators` — packet-level and rounds-based engines, loss models;
//! * `analyzer` — trace classification, Karn timing, (de)serialization;
//! * `tables_figures` — one group per regenerated table/figure (quick scale);
//! * `ablations` — model tiers, exact-vs-approx Q̂, loss-process choice.
//!
//! Appending `-- --test` runs every workload once, untimed (criterion's
//! validation mode) — CI's `bench-smoke` job uses this to catch benches
//! that stop compiling or panic, without paying for a measurement.
//!
//! # Throughput report (`cargo run --release -p tcp-bench --bin bench_report`)
//!
//! `bench_report` re-times the hot-path workloads (packet-level engine,
//! rounds engine, trace analyzer) and writes `results/BENCH_sim.json`
//! with per-entry `ns_per_event` and `events_per_sec` — the artifact the
//! performance acceptance compares across revisions. The `fleet` section
//! sweeps the sharded 10^5-flow campaign at 1/2/8 shards (aggregate
//! events/sec plus peak RSS); `PFTK_FLEET_BENCH_FLOWS` scales the
//! population down for smoke runs. Only release-profile numbers are
//! comparable; the JSON records which profile produced it.
//! `results/BENCH_baseline.json` is the committed reference the tier-1
//! regression guard (`tests/perf_smoke.rs`) diffs against with a ±25%
//! tolerance; refresh it deliberately, with a note, when the hot path
//! legitimately changes. See DESIGN.md §9 for the engine architecture
//! and the baseline-refresh workflow.
