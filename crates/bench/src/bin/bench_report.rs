//! Machine-readable benchmark emitter: times the three hot-path benchmark
//! groups and writes `results/BENCH_sim.json` with ns/event and events/sec
//! per entry.
//!
//! This is the artifact behind performance acceptance ("events/sec on
//! `packet_level_sim/60s_bernoulli` must not regress"): the Criterion-style
//! benches under `benches/` print human-readable medians, while this binary
//! measures the same workloads and persists the numbers where CI can diff
//! them. Run with `cargo run --release -p tcp-bench --bin bench_report`
//! (release: debug-profile numbers are meaningless for throughput). See
//! DESIGN.md §9 for the baseline-refresh workflow.

use std::time::Instant;

use tcp_sim::connection::Connection;
use tcp_sim::loss::Bernoulli;
use tcp_sim::rounds::{RoundsConfig, RoundsSim};
use tcp_sim::time::SimDuration;
use tcp_testbed::TraceRecorder;
use tcp_trace::analyzer::{analyze, AnalyzerConfig};
use tcp_trace::record::Trace;
use tcp_trace::stream::{StreamAnalyzer, StreamConfig, TraceSink};

/// One benchmark measurement: a workload, its median per-iteration wall
/// time, and the throughput normalization.
#[derive(serde::Serialize)]
struct Entry {
    /// Benchmark group (matches the Criterion group names).
    group: &'static str,
    /// Benchmark id within the group.
    bench: String,
    /// Events processed by one iteration (engine events, TDP packets, or
    /// trace records — see `unit`).
    events: u64,
    /// What `events` counts.
    unit: &'static str,
    /// Median wall time of one iteration, nanoseconds.
    ns_per_iter: f64,
    /// `ns_per_iter / events`.
    ns_per_event: f64,
    /// `events * 1e9 / ns_per_iter`.
    events_per_sec: f64,
}

/// Trace-pipeline memory accounting for one analysis mode: what the
/// pipeline retains at peak while analyzing the same simulated connection.
#[derive(serde::Serialize)]
struct MemoryEntry {
    /// `batch_materialized` (retain the trace, analyze afterwards) or
    /// `streaming` (reduce while simulating, retain analyzer state only).
    pipeline: &'static str,
    /// Simulated connection length, seconds.
    sim_secs: f64,
    /// Wire events (sends + ACKs) the connection produced.
    events: u64,
    /// Peak retained bytes: the materialized trace's in-RAM size for the
    /// batch pipeline, the analyzer-state high-water mark for streaming.
    peak_retained_bytes: u64,
    /// `peak_retained_bytes / events`.
    bytes_per_event: f64,
    /// Peak retained bytes normalized to one simulated hour at this
    /// connection's event rate — the campaign-planning number.
    bytes_per_sim_hour: f64,
}

#[derive(serde::Serialize)]
struct Report {
    /// Reminder that only release-profile numbers are comparable.
    profile: &'static str,
    entries: Vec<Entry>,
    /// Batch-vs-streaming memory comparison on an identical connection.
    trace_memory: Vec<MemoryEntry>,
}

/// Median of `iters` timed runs of `workload`, which reports how many
/// events its single iteration processed.
fn measure(iters: usize, mut workload: impl FnMut() -> u64) -> (f64, u64) {
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    let mut events = 0;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        events = workload();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], events)
}

fn entry(
    group: &'static str,
    bench: String,
    unit: &'static str,
    iters: usize,
    workload: impl FnMut() -> u64,
) -> Entry {
    let (ns_per_iter, events) = measure(iters, workload);
    let events_f = events.max(1) as f64;
    Entry {
        group,
        bench,
        events,
        unit,
        ns_per_iter,
        ns_per_event: ns_per_iter / events_f,
        events_per_sec: events_f * 1e9 / ns_per_iter.max(1.0),
    }
}

fn packet_level(p: f64) -> Entry {
    entry(
        "packet_level_sim",
        format!("60s_bernoulli/{p}"),
        "engine events",
        15,
        move || {
            let mut conn = Connection::builder()
                .rtt(0.1)
                .loss(Bernoulli::new(p))
                .seed(1)
                .build();
            conn.run_for(SimDuration::from_secs_f64(60.0));
            std::hint::black_box(conn.stats().packets_sent);
            conn.events_processed()
        },
    )
}

fn rounds() -> Entry {
    entry("rounds_sim", "10k_tdps".into(), "packets sent", 15, || {
        let mut sim = RoundsSim::new(
            RoundsConfig {
                p: 0.02,
                rtt: 0.1,
                t0: 1.0,
                b: 2,
                wmax: 64,
                ..RoundsConfig::default()
            },
            3,
        );
        sim.run_tdps(10_000);
        std::hint::black_box(sim.send_rate());
        sim.stats().packets_sent
    })
}

fn analyzer_trace() -> Trace {
    let mut conn = Connection::builder()
        .rtt(0.05)
        .loss(Bernoulli::new(0.02))
        .seed(5)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(600.0));
    conn.finish();
    conn.into_observer().into_trace()
}

fn analyzer() -> Entry {
    let trace = analyzer_trace();
    let records = trace.len() as u64;
    entry(
        "analyzer",
        "classify_loss_indications".into(),
        "trace records",
        15,
        move || {
            std::hint::black_box(analyze(&trace, AnalyzerConfig::default()));
            records
        },
    )
}

fn streaming_analyzer() -> Entry {
    let trace = analyzer_trace();
    let records = trace.len() as u64;
    entry(
        "analyzer",
        "stream_full_reduction".into(),
        "trace records",
        15,
        move || {
            let mut s = StreamAnalyzer::new(StreamConfig::default());
            for rec in trace.records() {
                s.on_record(rec);
            }
            std::hint::black_box(s.finish(Some(600.0)));
            records
        },
    )
}

/// Runs the reference 600-second connection once per pipeline and reports
/// what each retains at peak.
fn trace_memory() -> Vec<MemoryEntry> {
    const SIM_SECS: f64 = 600.0;
    let mem = |pipeline, events: u64, peak: u64| {
        let per_event = peak as f64 / events.max(1) as f64;
        MemoryEntry {
            pipeline,
            sim_secs: SIM_SECS,
            events,
            peak_retained_bytes: peak,
            bytes_per_event: per_event,
            bytes_per_sim_hour: peak as f64 * 3600.0 / SIM_SECS,
        }
    };
    // Batch: materialize, then analyze. Peak retention is the trace.
    let trace = analyzer_trace();
    let batch = mem(
        "batch_materialized",
        trace.len() as u64,
        trace.approx_bytes() as u64,
    );
    // Streaming: same connection, reduced while simulating.
    let mut conn = Connection::builder()
        .rtt(0.05)
        .loss(Bernoulli::new(0.02))
        .seed(5)
        .build_with_observer(TraceRecorder::streaming(StreamConfig::default()));
    conn.run_for(SimDuration::from_secs_f64(SIM_SECS));
    conn.finish();
    let (stream, _) = conn.into_observer().finish(Some(SIM_SECS));
    let stream = stream
        //~ allow(expect): a streaming-mode recorder always yields an analysis
        .expect("streaming recorder yields an analysis");
    vec![
        batch,
        mem("streaming", stream.events, stream.peak_state_bytes),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = Report {
        profile: if cfg!(debug_assertions) {
            "debug (numbers not comparable; rerun with --release)"
        } else {
            "release"
        },
        entries: vec![
            packet_level(0.005),
            packet_level(0.05),
            rounds(),
            analyzer(),
            streaming_analyzer(),
        ],
        trace_memory: trace_memory(),
    };
    let json = serde_json::to_string_pretty(&report)?;
    std::fs::create_dir_all("results")?;
    let path = "results/BENCH_sim.json";
    std::fs::write(path, json.as_bytes())?;
    println!("{json}");
    eprintln!("wrote {path}");
    Ok(())
}
