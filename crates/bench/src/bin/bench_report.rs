//! Machine-readable benchmark emitter: times the three hot-path benchmark
//! groups and writes `results/BENCH_sim.json` with ns/event and events/sec
//! per entry.
//!
//! This is the artifact behind performance acceptance ("events/sec on
//! `packet_level_sim/60s_bernoulli` must not regress"): the Criterion-style
//! benches under `benches/` print human-readable medians, while this binary
//! measures the same workloads and persists the numbers where CI can diff
//! them. Run with `cargo run --release -p tcp-bench --bin bench_report`
//! (release: debug-profile numbers are meaningless for throughput). See
//! DESIGN.md §9 for the baseline-refresh workflow.

use std::time::Instant;

use tcp_sim::connection::Connection;
use tcp_sim::fleet::WheelConfig;
use tcp_sim::loss::Bernoulli;
use tcp_sim::rounds::{RoundsConfig, RoundsSim};
use tcp_sim::time::{SimDuration, SimTime};
use tcp_testbed::journal::Checkpoint;
use tcp_testbed::{
    run_fleet, CampaignRecord, FleetCampaignSpec, FleetCohortSpec, Journal, TraceRecorder,
};
use tcp_trace::analyzer::{analyze, AnalyzerConfig};
use tcp_trace::record::Trace;
use tcp_trace::stream::{StreamAnalyzer, StreamConfig, TraceSink};

/// One benchmark measurement: a workload, its median per-iteration wall
/// time, and the throughput normalization.
#[derive(serde::Serialize)]
struct Entry {
    /// Benchmark group (matches the Criterion group names).
    group: &'static str,
    /// Benchmark id within the group.
    bench: String,
    /// Events processed by one iteration (engine events, TDP packets, or
    /// trace records — see `unit`).
    events: u64,
    /// What `events` counts.
    unit: &'static str,
    /// Median wall time of one iteration, nanoseconds.
    ns_per_iter: f64,
    /// `ns_per_iter / events`.
    ns_per_event: f64,
    /// `events * 1e9 / ns_per_iter`.
    events_per_sec: f64,
}

/// Trace-pipeline memory accounting for one analysis mode: what the
/// pipeline retains at peak while analyzing the same simulated connection.
#[derive(serde::Serialize)]
struct MemoryEntry {
    /// `batch_materialized` (retain the trace, analyze afterwards) or
    /// `streaming` (reduce while simulating, retain analyzer state only).
    pipeline: &'static str,
    /// Simulated connection length, seconds.
    sim_secs: f64,
    /// Wire events (sends + ACKs) the connection produced.
    events: u64,
    /// Peak retained bytes: the materialized trace's in-RAM size for the
    /// batch pipeline, the analyzer-state high-water mark for streaming.
    peak_retained_bytes: u64,
    /// `peak_retained_bytes / events`.
    bytes_per_event: f64,
    /// Peak retained bytes normalized to one simulated hour at this
    /// connection's event rate — the campaign-planning number.
    bytes_per_sim_hour: f64,
}

/// Checkpointing cost, measured two ways (DESIGN.md §13).
///
/// The acceptance row is the `packet_level_sim` workload (the same
/// observer-free connection as the `60s_bernoulli` benches): checkpointing
/// there costs one `Connection::snapshot` (~600 B) per boundary, and
/// `overhead_frac` must stay ≤ 0.05 — this is the guard that the journal
/// machinery stays off the sim hot path.
///
/// The `campaign_*` rows run the full journaled-campaign pipeline
/// (streaming analyzer attached). A campaign checkpoint also carries the
/// analyzer's retained sample vectors (hundreds of kilobytes); the worker
/// only pays a state clone — the encode and I/O run on the journal's
/// writer thread — but on a single-core host that thread shares the CPU,
/// so the wall-clock `campaign_overhead_frac` reported here is an upper
/// bound on what a multi-core host sees.
#[derive(serde::Serialize)]
struct CheckpointReport {
    /// Checkpoint cadence, sim-seconds (`JournalConfig::default`).
    cadence_sim_secs: f64,
    /// Sliced-run horizon, sim-seconds.
    horizon_sim_secs: f64,
    /// Checkpoints written per timed iteration.
    checkpoints_per_run: u64,
    /// ns/event, packet-level workload, checkpointing off.
    ns_per_event_off: f64,
    /// ns/event, packet-level workload, conn checkpoint at each boundary.
    ns_per_event_on: f64,
    /// `(on - off) / off` for the packet-level workload — the acceptance
    /// number (≤ 0.05).
    overhead_frac: f64,
    /// ns/event, full campaign pipeline, checkpointing off.
    campaign_ns_per_event_off: f64,
    /// ns/event, full campaign pipeline, checkpointing on.
    campaign_ns_per_event_on: f64,
    /// `(on - off) / off` for the campaign pipeline (informative; wall
    /// clock includes the writer thread's CPU on single-core hosts).
    campaign_overhead_frac: f64,
    /// One `Connection::snapshot` for this workload, encoded bytes.
    conn_snapshot_bytes: u64,
    /// One `StreamAnalyzer::snapshot` for this workload, encoded bytes.
    stream_snapshot_bytes: u64,
    /// The full journaled checkpoint record (both snapshots plus resume
    /// parameters), payload bytes before framing.
    checkpoint_record_bytes: u64,
}

/// One fleet-scale measurement: the same sharded campaign (same seed,
/// same flow population) at one shard count. The acceptance number is
/// `events_per_sec` at the best shard count sustaining `flows` concurrent
/// flows.
#[derive(serde::Serialize)]
struct FleetBenchEntry {
    /// Shards the campaign ran on.
    shards: usize,
    /// Concurrent flows simulated (constant across shard counts).
    flows: u64,
    /// Fleet events (rounds / loss macro-steps) per iteration.
    events: u64,
    /// Median wall time of one campaign iteration, nanoseconds.
    ns_per_iter: f64,
    /// `ns_per_iter / events`.
    ns_per_event: f64,
    /// Aggregate fleet throughput, events/sec across all shards.
    events_per_sec: f64,
    /// Process peak RSS (`VmHWM`) observed after this row's runs, bytes.
    /// A process-lifetime high-water mark: rows are measured in listed
    /// order, so each row's value includes every earlier row's footprint.
    peak_rss_bytes: u64,
}

/// Process peak resident set (`VmHWM` from `/proc/self/status`), bytes;
/// 0 where the proc filesystem is unavailable.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// The fleet benchmark campaign: a two-cohort grid (a comfortable and a
/// lossy grid point) totalling `flows` concurrent flows over a 30-second
/// horizon, no wire audit — pure shard-loop throughput.
fn fleet_spec(flows: u64) -> FleetCampaignSpec {
    let lossy = flows * 2 / 5;
    FleetCampaignSpec {
        cohorts: vec![
            FleetCohortSpec {
                label: "p=0.02 rtt=0.1 wmax=64".into(),
                config: RoundsConfig {
                    p: 0.02,
                    rtt: 0.1,
                    t0: 1.0,
                    b: 2,
                    wmax: 64,
                    ..RoundsConfig::default()
                },
                flows: flows - lossy,
            },
            FleetCohortSpec {
                label: "p=0.1 rtt=0.3 wmax=16".into(),
                config: RoundsConfig {
                    p: 0.1,
                    rtt: 0.3,
                    t0: 1.5,
                    b: 2,
                    wmax: 16,
                    ..RoundsConfig::default()
                },
                flows: lossy,
            },
        ],
        base_seed: 0xF1EE7,
        horizon_secs: 30.0,
        wheel: WheelConfig::default(),
        audit_flows_per_cohort: 0,
    }
}

/// Times the fleet campaign at 1, 2, and 8 shards.
/// `PFTK_FLEET_BENCH_FLOWS` overrides the default 10^5-flow population
/// (the acceptance floor for release builds).
fn fleet() -> Vec<FleetBenchEntry> {
    let flows = std::env::var("PFTK_FLEET_BENCH_FLOWS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(100_000u64);
    let spec = fleet_spec(flows);
    [1usize, 2, 8]
        .into_iter()
        .map(|shards| {
            let (ns_per_iter, events) = measure(3, || {
                let report = run_fleet(&spec, shards);
                std::hint::black_box(report.cohorts.len());
                report.events
            });
            let events_f = events.max(1) as f64;
            FleetBenchEntry {
                shards,
                flows,
                events,
                ns_per_iter,
                ns_per_event: ns_per_iter / events_f,
                events_per_sec: events_f * 1e9 / ns_per_iter.max(1.0),
                peak_rss_bytes: peak_rss_bytes(),
            }
        })
        .collect()
}

#[derive(serde::Serialize)]
struct Report {
    /// Reminder that only release-profile numbers are comparable.
    profile: &'static str,
    entries: Vec<Entry>,
    /// Fleet-scale shard sweep: the same 10^5-flow campaign at 1/2/8
    /// shards, with aggregate events/sec and peak RSS.
    fleet: Vec<FleetBenchEntry>,
    /// Batch-vs-streaming memory comparison on an identical connection.
    trace_memory: Vec<MemoryEntry>,
    /// Crash-safety cost: checkpointing on vs off, plus snapshot sizes.
    checkpoint: CheckpointReport,
}

/// Median of `iters` timed runs of `workload`, which reports how many
/// events its single iteration processed.
fn measure(iters: usize, mut workload: impl FnMut() -> u64) -> (f64, u64) {
    let mut times: Vec<f64> = Vec::with_capacity(iters);
    let mut events = 0;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        events = workload();
        times.push(start.elapsed().as_nanos() as f64);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], events)
}

fn entry(
    group: &'static str,
    bench: String,
    unit: &'static str,
    iters: usize,
    workload: impl FnMut() -> u64,
) -> Entry {
    let (ns_per_iter, events) = measure(iters, workload);
    let events_f = events.max(1) as f64;
    Entry {
        group,
        bench,
        events,
        unit,
        ns_per_iter,
        ns_per_event: ns_per_iter / events_f,
        events_per_sec: events_f * 1e9 / ns_per_iter.max(1.0),
    }
}

fn packet_level(p: f64) -> Entry {
    entry(
        "packet_level_sim",
        format!("60s_bernoulli/{p}"),
        "engine events",
        15,
        move || {
            let mut conn = Connection::builder()
                .rtt(0.1)
                .loss(Bernoulli::new(p))
                .seed(1)
                .build();
            conn.run_for(SimDuration::from_secs_f64(60.0));
            std::hint::black_box(conn.stats().packets_sent);
            conn.events_processed()
        },
    )
}

/// The `packet_level_sim` workload behind each congestion-control
/// variant: same path, loss rate, and seed as [`packet_level`] at
/// p = 0.05, differing only in the controller behind the
/// `CongestionController` seam. The `cc=reno` row is the perf guard
/// that the trait seam stays free (monomorphized dispatch, no vtable):
/// `tests/perf_smoke.rs` holds every row within ±25% of
/// `BENCH_baseline.json`.
fn packet_level_variant(algo: tcp_sim::cc::CcAlgorithm) -> Entry {
    use tcp_sim::reno::sender::SenderConfig;
    entry(
        "packet_level_sim",
        format!("60s_bernoulli/0.05/cc={}", algo.label()),
        "engine events",
        15,
        move || {
            let mut conn = Connection::builder()
                .rtt(0.1)
                .sender_config(SenderConfig {
                    cc: algo,
                    ..SenderConfig::default()
                })
                .loss(Bernoulli::new(0.05))
                .seed(1)
                .build();
            conn.run_for(SimDuration::from_secs_f64(60.0));
            std::hint::black_box(conn.stats().packets_sent);
            conn.events_processed()
        },
    )
}

fn rounds() -> Entry {
    entry("rounds_sim", "10k_tdps".into(), "packets sent", 15, || {
        let mut sim = RoundsSim::new(
            RoundsConfig {
                p: 0.02,
                rtt: 0.1,
                t0: 1.0,
                b: 2,
                wmax: 64,
                ..RoundsConfig::default()
            },
            3,
        );
        sim.run_tdps(10_000);
        std::hint::black_box(sim.send_rate());
        sim.stats().packets_sent
    })
}

fn analyzer_trace() -> Trace {
    let mut conn = Connection::builder()
        .rtt(0.05)
        .loss(Bernoulli::new(0.02))
        .seed(5)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(600.0));
    conn.finish();
    conn.into_observer().into_trace()
}

fn analyzer() -> Entry {
    let trace = analyzer_trace();
    let records = trace.len() as u64;
    entry(
        "analyzer",
        "classify_loss_indications".into(),
        "trace records",
        15,
        move || {
            std::hint::black_box(analyze(&trace, AnalyzerConfig::default()));
            records
        },
    )
}

fn streaming_analyzer() -> Entry {
    let trace = analyzer_trace();
    let records = trace.len() as u64;
    entry(
        "analyzer",
        "stream_full_reduction".into(),
        "trace records",
        15,
        move || {
            let mut s = StreamAnalyzer::new(StreamConfig::default());
            for rec in trace.records() {
                s.on_record(rec);
            }
            std::hint::black_box(s.finish(Some(600.0)));
            records
        },
    )
}

/// Runs the reference 600-second connection once per pipeline and reports
/// what each retains at peak.
fn trace_memory() -> Vec<MemoryEntry> {
    const SIM_SECS: f64 = 600.0;
    let mem = |pipeline, events: u64, peak: u64| {
        let per_event = peak as f64 / events.max(1) as f64;
        MemoryEntry {
            pipeline,
            sim_secs: SIM_SECS,
            events,
            peak_retained_bytes: peak,
            bytes_per_event: per_event,
            bytes_per_sim_hour: peak as f64 * 3600.0 / SIM_SECS,
        }
    };
    // Batch: materialize, then analyze. Peak retention is the trace.
    let trace = analyzer_trace();
    let batch = mem(
        "batch_materialized",
        trace.len() as u64,
        trace.approx_bytes() as u64,
    );
    // Streaming: same connection, reduced while simulating.
    let mut conn = Connection::builder()
        .rtt(0.05)
        .loss(Bernoulli::new(0.02))
        .seed(5)
        .build_with_observer(TraceRecorder::streaming(StreamConfig::default()));
    conn.run_for(SimDuration::from_secs_f64(SIM_SECS));
    conn.finish();
    let (stream, _) = conn.into_observer().finish(Some(SIM_SECS));
    let stream = stream
        //~ allow(expect): a streaming-mode recorder always yields an analysis
        .expect("streaming recorder yields an analysis");
    vec![
        batch,
        mem("streaming", stream.events, stream.peak_state_bytes),
    ]
}

/// Builds the checkpoint-overhead workload connection: the packet-level
/// hot configuration with a streaming (non-retaining) recorder, the same
/// shape journaled campaigns run.
fn checkpoint_conn() -> Connection<TraceRecorder> {
    Connection::builder()
        .rtt(0.1)
        .loss(Bernoulli::new(0.02))
        .seed(7)
        .build_with_observer(TraceRecorder::streaming(StreamConfig::default()))
}

/// One sliced run of the observer-free `packet_level_sim` workload; with
/// `journal` set, a connection checkpoint is cut at every slice boundary.
/// This isolates the sim-side cost of checkpointing (snapshot encode +
/// channel handoff) from the analyzer-state encode, which belongs to the
/// campaign pipeline measured by [`campaign_run`].
fn sim_run(cadence: f64, horizon: f64, journal: Option<&Journal>) -> u64 {
    let mut conn = Connection::builder()
        .rtt(0.1)
        .loss(Bernoulli::new(0.02))
        .seed(7)
        .build();
    let mut k: u64 = 1;
    loop {
        let t = (k as f64 * cadence).min(horizon);
        conn.run_until_budget(SimTime::from_secs_f64(t), u64::MAX);
        if t >= horizon {
            break;
        }
        if let Some(journal) = journal {
            if let Ok(conn_bytes) = conn.snapshot() {
                let boundary = k + 1;
                journal.append_with(move || {
                    CampaignRecord::Checkpoint(Checkpoint {
                        job_index: 0,
                        seed: 7,
                        wire_bits: [0; 3],
                        horizon_bits: horizon.to_bits(),
                        every_bits: cadence.to_bits(),
                        next_boundary: boundary,
                        conn: conn_bytes,
                        stream: Vec::new(),
                    })
                    .encode()
                });
            }
        }
        k += 1;
    }
    std::hint::black_box(conn.stats().packets_sent);
    conn.events_processed()
}

/// One sliced run of the full journaled-campaign pipeline (streaming
/// analyzer attached); with `journal` set, a full checkpoint (connection
/// snapshot + analyzer clone, encoded on the writer thread) is cut at
/// every slice boundary — exactly what `run_table2_journaled` does
/// between `run_until_budget` slices.
fn campaign_run(cadence: f64, horizon: f64, journal: Option<&Journal>) -> u64 {
    let mut conn = checkpoint_conn();
    let mut k: u64 = 1;
    loop {
        let t = (k as f64 * cadence).min(horizon);
        conn.run_until_budget(SimTime::from_secs_f64(t), u64::MAX);
        if t >= horizon {
            break;
        }
        if let Some(journal) = journal {
            if let (Ok(conn_bytes), Some(analyzer)) =
                (conn.snapshot(), conn.observer().stream_clone())
            {
                let boundary = k + 1;
                journal.append_with(move || {
                    CampaignRecord::Checkpoint(Checkpoint {
                        job_index: 0,
                        seed: 7,
                        wire_bits: [0; 3],
                        horizon_bits: horizon.to_bits(),
                        every_bits: cadence.to_bits(),
                        next_boundary: boundary,
                        conn: conn_bytes,
                        stream: analyzer.snapshot(),
                    })
                    .encode()
                });
            }
        }
        k += 1;
    }
    std::hint::black_box(conn.stats().packets_sent);
    conn.events_processed()
}

fn checkpoint_report() -> Result<CheckpointReport, Box<dyn std::error::Error>> {
    // The production density: `JournalConfig::default` cuts a checkpoint
    // every 300 sim-seconds. A denser cadence inflates the relative cost
    // quadratically (same encode work amortized over fewer sim events)
    // and does not reflect what journaled campaigns pay.
    const CADENCE: f64 = 300.0;
    const HORIZON: f64 = 900.0;
    let checkpoints_per_run = (HORIZON / CADENCE) as u64 - 1;

    // Snapshot sizes, measured once mid-run (steady state, not cold start).
    let (conn_snapshot_bytes, stream_snapshot_bytes, checkpoint_record_bytes) = {
        let mut conn = checkpoint_conn();
        conn.run_until_budget(SimTime::from_secs_f64(HORIZON / 2.0), u64::MAX);
        let conn_bytes = conn.snapshot().unwrap_or_default();
        let stream_bytes = conn.observer().stream_snapshot().unwrap_or_default();
        let record = CampaignRecord::Checkpoint(Checkpoint {
            job_index: 0,
            seed: 7,
            wire_bits: [0; 3],
            horizon_bits: HORIZON.to_bits(),
            every_bits: CADENCE.to_bits(),
            next_boundary: 1,
            conn: conn_bytes.clone(),
            stream: stream_bytes.clone(),
        })
        .encode();
        (
            conn_bytes.len() as u64,
            stream_bytes.len() as u64,
            record.len() as u64,
        )
    };

    let mut journal_path = std::env::temp_dir();
    journal_path.push(format!("pftk-bench-checkpoint-{}.waj", std::process::id()));
    let _ = std::fs::remove_file(&journal_path);
    let journal = Journal::open(&journal_path)?;

    // Interleave the off/on timings so slow machine phases (thermal,
    // scheduler) bias both sides equally instead of whichever ran second.
    let measure_pair = |run: &mut dyn FnMut(Option<&Journal>) -> u64| {
        let mut off_times = Vec::new();
        let mut on_times = Vec::new();
        let mut off_events = 0;
        let mut on_events = 0;
        for _ in 0..15 {
            let start = Instant::now();
            off_events = run(None);
            off_times.push(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            on_events = run(Some(&journal));
            on_times.push(start.elapsed().as_nanos() as f64);
        }
        off_times.sort_by(f64::total_cmp);
        on_times.sort_by(f64::total_cmp);
        let off = off_times[off_times.len() / 2] / off_events.max(1) as f64;
        let on = on_times[on_times.len() / 2] / on_events.max(1) as f64;
        (off, on, (on - off) / off.max(f64::MIN_POSITIVE))
    };

    let (sim_off, sim_on, sim_frac) = measure_pair(&mut |j| sim_run(CADENCE, HORIZON, j));
    let (camp_off, camp_on, camp_frac) = measure_pair(&mut |j| campaign_run(CADENCE, HORIZON, j));
    drop(journal);
    let _ = std::fs::remove_file(&journal_path);

    Ok(CheckpointReport {
        cadence_sim_secs: CADENCE,
        horizon_sim_secs: HORIZON,
        checkpoints_per_run,
        ns_per_event_off: sim_off,
        ns_per_event_on: sim_on,
        overhead_frac: sim_frac,
        campaign_ns_per_event_off: camp_off,
        campaign_ns_per_event_on: camp_on,
        campaign_overhead_frac: camp_frac,
        conn_snapshot_bytes,
        stream_snapshot_bytes,
        checkpoint_record_bytes,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = Report {
        profile: if cfg!(debug_assertions) {
            "debug (numbers not comparable; rerun with --release)"
        } else {
            "release"
        },
        entries: {
            let mut entries = vec![packet_level(0.005), packet_level(0.05)];
            entries.extend(tcp_sim::cc::CcAlgorithm::ALL.map(packet_level_variant));
            entries.extend([rounds(), analyzer(), streaming_analyzer()]);
            entries
        },
        fleet: fleet(),
        trace_memory: trace_memory(),
        checkpoint: checkpoint_report()?,
    };
    let json = serde_json::to_string_pretty(&report)?;
    std::fs::create_dir_all("results")?;
    let path = "results/BENCH_sim.json";
    std::fs::write(path, json.as_bytes())?;
    println!("{json}");
    eprintln!("wrote {path}");
    Ok(())
}
