//! Criterion benchmarks of the trace-analysis programs: records per second
//! through the classifier, the Karn estimator, and the serializers.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tcp_sim::connection::Connection;
use tcp_sim::loss::Bernoulli;
use tcp_sim::time::SimDuration;
use tcp_testbed::TraceRecorder;
use tcp_trace::analyzer::{analyze, AnalyzerConfig};
use tcp_trace::karn::estimate_timing;
use tcp_trace::record::Trace;
use tcp_trace::stream::{StreamAnalyzer, StreamConfig, TraceSink};

fn build_trace() -> Trace {
    let mut conn = Connection::builder()
        .rtt(0.05)
        .loss(Box::new(Bernoulli::new(0.02)))
        .seed(5)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(600.0));
    conn.finish();
    conn.into_observer().into_trace()
}

fn bench_analyzer(c: &mut Criterion) {
    let trace = build_trace();
    let n = trace.len() as u64;
    let mut group = c.benchmark_group("trace_analysis");
    group.throughput(Throughput::Elements(n));
    group.bench_function("classify_loss_indications", |b| {
        b.iter(|| analyze(black_box(&trace), AnalyzerConfig::default()))
    });
    group.bench_function("karn_timing", |b| {
        b.iter(|| estimate_timing(black_box(&trace)))
    });
    // The full streaming reduction (classifier + Karn + correlation +
    // 100-s intervals) fed record by record — the per-event cost a live
    // campaign pays instead of materializing and re-walking the trace.
    group.bench_function("stream_full_reduction", |b| {
        b.iter(|| {
            let mut s = StreamAnalyzer::new(StreamConfig::default());
            for rec in black_box(&trace).records() {
                s.on_record(rec);
            }
            black_box(s.finish(Some(600.0)))
        })
    });
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let trace = build_trace();
    let n = trace.len() as u64;
    let mut group = c.benchmark_group("trace_serialization");
    group.throughput(Throughput::Elements(n));
    group.bench_function("jsonl_write", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(trace.len() * 64);
            trace.write_jsonl(&mut buf).unwrap();
            black_box(buf.len())
        })
    });
    let mut jsonl = Vec::new();
    trace.write_jsonl(&mut jsonl).unwrap();
    group.bench_function("jsonl_read", |b| {
        b.iter(|| Trace::read_jsonl(std::io::Cursor::new(black_box(&jsonl))).unwrap())
    });
    group.bench_function("binary_encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(trace.len() * 17);
            trace.encode_binary(&mut buf);
            black_box(buf.len())
        })
    });
    let mut bin = Vec::new();
    trace.encode_binary(&mut bin);
    group.bench_function("binary_decode", |b| {
        b.iter(|| Trace::decode_binary(&mut black_box(bin.as_slice())).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_analyzer, bench_serialization);
criterion_main!(benches);
