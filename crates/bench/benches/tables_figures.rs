//! One Criterion group per table/figure regeneration, exercised at the
//! reduced `RunScale::quick()` so the whole evaluation pipeline — testbed
//! simulation, trace analysis, model fitting, error metrics — is measured
//! end to end. (The full-scale horizons live in the `tcp-repro` binaries;
//! these benches keep the same code paths hot and regression-guarded.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pftk_model::markov::MarkovModel;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::full_model;
use pftk_model::throughput::throughput;
use pftk_model::units::LossProb;
use tcp_sim::rounds::{RoundsConfig, RoundsSim};
use tcp_testbed::experiment::{run_modem, run_serial_100s};
use tcp_testbed::paths::{table2_path, ModemSpec};
use tcp_testbed::report::{error_triple_hourly, fig7_panel, fig8_series};

fn bench_table2_row(c: &mut Criterion) {
    let spec = table2_path("manic", "baskerville").unwrap();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("one_row_100s", |b| {
        b.iter(|| {
            let r = run_serial_100s(spec, 1, 7).remove(0);
            black_box(r.stats.packets_sent)
        })
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let spec = table2_path("pif", "imagine").unwrap();
    let result = run_serial_100s(spec, 1, 7).remove(0);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("panel_from_result", |b| {
        b.iter(|| black_box(fig7_panel(spec, &result, 100.0).scatter.len()))
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let spec = table2_path("manic", "mafalda").unwrap();
    let results = run_serial_100s(spec, 3, 7);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("series_from_results", |b| {
        b.iter(|| black_box(fig8_series(spec, &results).len()))
    });
    group.finish();
}

fn bench_fig9_10_error_metric(c: &mut Criterion) {
    let spec = table2_path("manic", "maria").unwrap();
    let result = run_serial_100s(spec, 1, 7).remove(0);
    let mut group = c.benchmark_group("fig9_fig10");
    group.sample_size(10);
    group.bench_function("error_triple", |b| {
        b.iter(|| black_box(error_triple_hourly(spec, &result, 20.0).full))
    });
    group.finish();
}

fn bench_fig11_modem(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("modem_300s", |b| {
        b.iter(|| {
            let r = run_modem(&ModemSpec::default(), 300.0, 7);
            black_box(r.stats.packets_sent)
        })
    });
    group.finish();
}

fn bench_fig12_markov_curve(c: &mut Criterion) {
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("markov_plus_sim_point", |b| {
        b.iter(|| {
            let lp = LossProb::new(0.02).unwrap();
            let m = MarkovModel::solve(lp, &params).unwrap().send_rate();
            let mut sim = RoundsSim::new(
                RoundsConfig {
                    p: 0.02,
                    rtt: 0.47,
                    t0: 3.2,
                    b: 2,
                    wmax: 12,
                    ..RoundsConfig::default()
                },
                7,
            );
            sim.run_for(5_000.0);
            black_box((m, sim.send_rate()))
        })
    });
    group.finish();
}

fn bench_fig13_curves(c: &mut Criterion) {
    let params = ModelParams::new(0.47, 3.2, 2, 12).unwrap();
    let mut group = c.benchmark_group("fig13");
    group.bench_function("b_and_t_over_40_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..=40 {
                let p = f64::from(i) * 0.0075;
                let lp = LossProb::new(p).unwrap();
                acc += full_model(lp, &params) + throughput(lp, &params);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table2_row,
    bench_fig7,
    bench_fig8,
    bench_fig9_10_error_metric,
    bench_fig11_modem,
    bench_fig12_markov_curve,
    bench_fig13_curves
);
criterion_main!(benches);
