//! Criterion benchmarks of the analytic kernels: how cheap is the PFTK
//! equation? (This matters for its real-world use — TFRC evaluates the
//! control equation on every feedback packet.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pftk_model::markov::MarkovModel;
use pftk_model::params::ModelParams;
use pftk_model::sendrate::{approx_model, full_model, td_only};
use pftk_model::throughput::throughput;
use pftk_model::timeout::{q_hat_approx, q_hat_exact};
use pftk_model::units::LossProb;

fn params() -> ModelParams {
    ModelParams::new(0.2, 2.0, 2, 32).unwrap()
}

fn bench_models(c: &mut Criterion) {
    let params = params();
    let mut group = c.benchmark_group("model_eval");
    for &p in &[0.001, 0.01, 0.1] {
        let lp = LossProb::new(p).unwrap();
        group.bench_with_input(BenchmarkId::new("full_eq32", p), &lp, |b, lp| {
            b.iter(|| full_model(black_box(*lp), black_box(&params)))
        });
        group.bench_with_input(BenchmarkId::new("approx_eq33", p), &lp, |b, lp| {
            b.iter(|| approx_model(black_box(*lp), black_box(&params)))
        });
        group.bench_with_input(BenchmarkId::new("td_only_eq20", p), &lp, |b, lp| {
            b.iter(|| td_only(black_box(*lp), black_box(&params)))
        });
        group.bench_with_input(BenchmarkId::new("throughput_eq37", p), &lp, |b, lp| {
            b.iter(|| throughput(black_box(*lp), black_box(&params)))
        });
    }
    group.finish();
}

fn bench_q_hat(c: &mut Criterion) {
    let lp = LossProb::new(0.02).unwrap();
    let mut group = c.benchmark_group("q_hat");
    group.bench_function("exact_eq24", |b| {
        b.iter(|| q_hat_exact(black_box(lp), black_box(12.0)))
    });
    group.bench_function("approx_3_over_w", |b| {
        b.iter(|| q_hat_approx(black_box(12.0)))
    });
    group.finish();
}

fn bench_markov(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_solve");
    group.sample_size(20);
    for &wmax in &[8u32, 12, 32] {
        let params = ModelParams::new(0.47, 3.2, 2, wmax).unwrap();
        let lp = LossProb::new(0.02).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(wmax), &params, |b, params| {
            b.iter(|| {
                MarkovModel::solve(black_box(lp), black_box(params))
                    .unwrap()
                    .send_rate()
            })
        });
    }
    group.finish();
}

fn bench_inverse(c: &mut Criterion) {
    let params = params();
    c.bench_function("loss_for_rate_bisection", |b| {
        b.iter(|| pftk_model::inverse::loss_for_rate(black_box(30.0), black_box(&params)))
    });
}

criterion_group!(
    benches,
    bench_models,
    bench_q_hat,
    bench_markov,
    bench_inverse
);
criterion_main!(benches);
