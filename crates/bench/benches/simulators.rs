//! Criterion benchmarks of the two simulators: a fixed simulated horizon
//! for the packet-level engine, TD periods for the rounds engine, and the
//! raw loss-model draws.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tcp_sim::connection::Connection;
use tcp_sim::loss::{Bernoulli, GilbertElliott, RoundCorrelated};
use tcp_sim::rounds::{RoundsConfig, RoundsSim};
use tcp_sim::time::{SimDuration, SimTime};

fn bench_packet_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_level_sim");
    group.sample_size(10);
    for &p in &[0.005, 0.05] {
        group.bench_with_input(BenchmarkId::new("60s_bernoulli", p), &p, |b, &p| {
            b.iter(|| {
                let mut conn = Connection::builder()
                    .rtt(0.1)
                    .loss(Box::new(Bernoulli::new(p)))
                    .seed(1)
                    .build();
                conn.run_for(SimDuration::from_secs_f64(60.0));
                black_box(conn.stats().packets_sent)
            })
        });
    }
    group.finish();
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounds_sim");
    group.sample_size(20);
    group.bench_function("10k_tdps", |b| {
        b.iter(|| {
            let mut sim = RoundsSim::new(
                RoundsConfig {
                    p: 0.02,
                    rtt: 0.1,
                    t0: 1.0,
                    b: 2,
                    wmax: 64,
                    ..RoundsConfig::default()
                },
                3,
            );
            sim.run_tdps(10_000);
            black_box(sim.send_rate())
        })
    });
    group.finish();
}

fn bench_loss_models(c: &mut Criterion) {
    use tcp_sim::loss::LossModel;
    use tcp_sim::rng::SimRng;
    let mut group = c.benchmark_group("loss_models");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("bernoulli_10k", |b| {
        let mut m = Bernoulli::new(0.02);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let mut d = 0u32;
            for _ in 0..10_000 {
                d += m.should_drop(SimTime::ZERO, &mut rng) as u32;
            }
            black_box(d)
        })
    });
    group.bench_function("round_correlated_10k", |b| {
        let mut m = RoundCorrelated::new(0.02);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let mut d = 0u32;
            for i in 0..10_000 {
                if i % 16 == 0 {
                    m.on_round_boundary();
                }
                d += m.should_drop(SimTime::ZERO, &mut rng) as u32;
            }
            black_box(d)
        })
    });
    group.bench_function("gilbert_elliott_10k", |b| {
        let mut m = GilbertElliott::from_rate_and_burst(0.02, 5.0);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let mut d = 0u32;
            for _ in 0..10_000 {
                d += m.should_drop(SimTime::ZERO, &mut rng) as u32;
            }
            black_box(d)
        })
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    use tcp_sim::network::{FlowConfig, Network};
    use tcp_sim::queue::DropTail;
    use tcp_sim::reno::sender::SenderConfig;
    use tcp_sim::tfrc::TfrcConfig;
    let mut group = c.benchmark_group("shared_bottleneck");
    group.sample_size(10);
    group.bench_function("2tcp_60s", |b| {
        b.iter(|| {
            let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 1);
            net.add_flow(FlowConfig::tcp(0.1, SenderConfig::default()));
            net.add_flow(FlowConfig::tcp(0.1, SenderConfig::default()));
            net.run_for(SimDuration::from_secs_f64(60.0));
            net.finish();
            black_box(net.stats()[0].delivered)
        })
    });
    group.bench_function("tcp_vs_tfrc_60s", |b| {
        b.iter(|| {
            let mut net = Network::new(100.0, Box::new(DropTail::new(25)), 1);
            net.add_flow(FlowConfig::tcp(0.1, SenderConfig::default()));
            net.add_flow(FlowConfig::tfrc(0.1, TfrcConfig::for_rtt(0.2)));
            net.run_for(SimDuration::from_secs_f64(60.0));
            net.finish();
            black_box(net.stats()[1].delivered)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_packet_level,
    bench_rounds,
    bench_loss_models,
    bench_network
);
criterion_main!(benches);
