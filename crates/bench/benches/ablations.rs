//! Ablation benchmarks for the design choices DESIGN.md calls out: model
//! fidelity tiers (accuracy-per-cost), exact vs approximate Q̂, and the
//! loss-process menagerie's effect on simulated TCP (Bernoulli vs the
//! paper's round-correlated model vs Gilbert–Elliott bursts).
//!
//! These are *measurement* benches: besides timing, they print the
//! accuracy side of the trade-off once per run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pftk_model::params::ModelParams;
use pftk_model::sendrate::{approx_model, full_model, td_only};
use pftk_model::timeout::{q_hat_approx, q_hat_exact};
use pftk_model::units::LossProb;
use std::sync::Once;
use tcp_sim::connection::Connection;
use tcp_sim::loss::{Bernoulli, GilbertElliott, LossModel, RoundCorrelated};
use tcp_sim::time::SimDuration;

static PRINT_ACCURACY: Once = Once::new();

fn print_accuracy_tables() {
    // Model-tier accuracy against the rounds simulator at a moderate point.
    let params = ModelParams::new(0.2, 2.0, 2, 32).unwrap();
    let p = 0.03;
    let mut sim = tcp_sim::rounds::RoundsSim::new(
        tcp_sim::rounds::RoundsConfig {
            p,
            rtt: 0.2,
            t0: 2.0,
            b: 2,
            wmax: 32,
            ..tcp_sim::rounds::RoundsConfig::default()
        },
        11,
    );
    sim.run_for(300_000.0);
    let truth = sim.send_rate();
    let lp = LossProb::new(p).unwrap();
    eprintln!("\n[ablation] model fidelity at p=0.03 (rounds-sim truth {truth:.2} pkt/s):");
    for (name, v) in [
        ("full (32)", full_model(lp, &params)),
        ("approx (33)", approx_model(lp, &params)),
        ("td-only (20)", td_only(lp, &params)),
    ] {
        eprintln!(
            "  {name:<12} {v:>7.2} pkt/s  ({:+.1}% vs sim)",
            100.0 * (v - truth) / truth
        );
    }
    // Q̂ exact vs 3/w.
    eprintln!(
        "[ablation] Q-hat at p=0.03: w=8 exact {:.3} vs approx {:.3}; w=16 {:.3} vs {:.3}",
        q_hat_exact(lp, 8.0),
        q_hat_approx(8.0),
        q_hat_exact(lp, 16.0),
        q_hat_approx(16.0)
    );
}

fn bench_model_tiers(c: &mut Criterion) {
    PRINT_ACCURACY.call_once(print_accuracy_tables);
    let params = ModelParams::new(0.2, 2.0, 2, 32).unwrap();
    let lp = LossProb::new(0.03).unwrap();
    let mut group = c.benchmark_group("ablation_model_tiers");
    group.bench_function("full_eq32", |b| {
        b.iter(|| full_model(black_box(lp), &params))
    });
    group.bench_function("approx_eq33", |b| {
        b.iter(|| approx_model(black_box(lp), &params))
    });
    group.bench_function("td_only_eq20", |b| {
        b.iter(|| td_only(black_box(lp), &params))
    });
    group.finish();
}

fn run_with(loss: Box<dyn LossModel + Send>, seed: u64) -> u64 {
    let mut conn = Connection::builder().rtt(0.1).loss(loss).seed(seed).build();
    conn.run_for(SimDuration::from_secs_f64(120.0));
    conn.stats().packets_sent
}

fn bench_loss_processes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_loss_process");
    group.sample_size(10);
    for (name, mk) in [
        ("bernoulli", 0usize),
        ("round_correlated", 1),
        ("gilbert_elliott", 2),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mk, |b, &mk| {
            b.iter(|| {
                let loss: Box<dyn LossModel + Send> = match mk {
                    0 => Box::new(Bernoulli::new(0.02)),
                    1 => Box::new(RoundCorrelated::new(0.02)),
                    _ => Box::new(GilbertElliott::from_rate_and_burst(0.02, 4.0)),
                };
                black_box(run_with(loss, 3))
            })
        });
    }
    group.finish();
}

fn bench_tcp_variants(c: &mut Criterion) {
    use tcp_sim::reno::sender::{RenoStyle, SenderConfig};
    let mut group = c.benchmark_group("ablation_tcp_variant");
    group.sample_size(10);
    for style in [
        RenoStyle::Tahoe,
        RenoStyle::Reno,
        RenoStyle::NewReno,
        RenoStyle::Sack,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{style:?}")),
            &style,
            |b, &style| {
                b.iter(|| {
                    let sender = SenderConfig {
                        style,
                        rwnd: 32,
                        ..SenderConfig::default()
                    };
                    let mut conn = Connection::builder()
                        .rtt(0.1)
                        .loss(Box::new(RoundCorrelated::new(0.02)))
                        .sender_config(sender)
                        .seed(3)
                        .build();
                    conn.run_for(SimDuration::from_secs_f64(120.0));
                    black_box(conn.stats().packets_sent)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_model_tiers,
    bench_loss_processes,
    bench_tcp_variants
);
criterion_main!(benches);
