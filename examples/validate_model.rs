//! Model validation sweep: run the packet-level TCP Reno simulator across a
//! grid of loss rates and compare its measured send rate against the full
//! model, the approximate model, and the TD-only baseline — a miniature of
//! the paper's §III evaluation that completes in seconds.
//!
//! ```sh
//! cargo run --release --example validate_model
//! ```

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;

fn main() {
    let rtt = 0.2;
    let wmax = 24u32;
    let horizon = 1200.0;
    println!("packet-level TCP Reno vs models: RTT={rtt}s, W_m={wmax}, {horizon}s per point\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "wire p", "sim p", "sim", "full", "approx", "TDonly", "full err"
    );

    for wire_p in [0.002, 0.005, 0.01, 0.02, 0.04, 0.08] {
        let sender = SenderConfig {
            rwnd: wmax,
            ..SenderConfig::default()
        };
        let mut conn = Connection::builder()
            .rtt(rtt)
            .loss(Box::new(RoundCorrelated::new(wire_p)))
            .sender_config(sender)
            .seed(42)
            .build();
        conn.run_for(SimDuration::from_secs_f64(horizon));
        conn.finish();
        let stats = conn.stats();
        let sim_rate = stats.packets_sent as f64 / horizon;
        // Fit the models at the *observed* indication rate and measured T0,
        // as the paper does.
        let p_obs = stats.loss_indication_rate().clamp(1e-6, 0.999);
        let t0 = conn.sender().rto_estimator().mean_t0().unwrap_or(1.0);
        let params = ModelParams::new(rtt, t0, 2, wmax).unwrap();
        let lp = LossProb::new(p_obs).unwrap();
        let full = full_model(lp, &params);
        let approx = approx_model(lp, &params);
        let td = td_only(lp, &params);
        println!(
            "{:>8} {:>10.4} {:>10.1} {:>10.1} {:>10.1} {:>8.1} {:>7.1}%",
            wire_p,
            p_obs,
            sim_rate,
            full,
            approx,
            td,
            100.0 * (full - sim_rate).abs() / sim_rate
        );
    }
    println!("\nNote the TD-only column: accurate at sub-1% loss, drifting off by");
    println!("multiples once timeouts dominate — the paper's core observation.");
}
