//! Short-transfer latency — the WWW workload the paper's introduction
//! motivates. Compares three estimates of "how long does an n-packet HTTP
//! response take?" against the packet-level simulator:
//!
//! * the naive steady-state estimate `n / B(p)` (wrong for short flows);
//! * the short-flow model (slow start + recovery + steady state, the
//!   Cardwell-style extension in `pftk_model::shortflow`);
//! * simulated TCP (mean over seeds).
//!
//! ```sh
//! cargo run --release --example short_transfers
//! ```

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::Bernoulli;
use padhye_tcp_repro::sim::reno::rto::RtoConfig;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::{SimDuration, SimTime};

fn simulate(n: u64, p: f64, reps: u64) -> f64 {
    let mut total = 0.0;
    for seed in 0..reps {
        let sender = SenderConfig {
            rwnd: 64,
            data_limit: Some(n),
            rto: RtoConfig {
                min_rto: SimDuration::from_secs_f64(1.0),
                initial_rto: SimDuration::from_secs_f64(1.0),
                ..RtoConfig::default()
            },
            ..SenderConfig::default()
        };
        let mut c = Connection::builder()
            .rtt(0.1)
            .loss(Box::new(Bernoulli::new(p)))
            .sender_config(sender)
            .seed(500 + seed)
            .build();
        total += c
            .run_until_complete(SimTime::from_secs_f64(10_000.0))
            .expect("transfer completes")
            .as_secs_f64();
    }
    total / reps as f64
}

fn main() {
    let params = ModelParams::new(0.1, 1.0, 2, 64).unwrap();
    let p = 0.02;
    let lp = LossProb::new(p).unwrap();
    println!("Transfer latency, RTT = 100 ms, 2% loss, W_m = 64 (times in seconds)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "packets", "naive n/B(p)", "short-flow", "simulated", "naive err"
    );
    for n in [2u64, 8, 32, 128, 512, 2048] {
        let naive = n as f64 / full_model(lp, &params);
        let model = transfer_time_with_delack(n, lp, &params, 0.2);
        let sim = simulate(n, p, 10);
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>12.2} {:>13.0}%",
            n,
            naive,
            model,
            sim,
            100.0 * (naive - sim).abs() / sim
        );
    }
    println!("\nThe naive estimate ignores slow start: it *underestimates* small");
    println!("transfers' latency per byte (they never reach the steady-state rate).");

    // Where is the time spent? The phase breakdown for a 512-packet page.
    let d = transfer_time_detailed(512, lp, &params);
    println!(
        "\n512-packet breakdown: slow start {:.2}s ({:.0} pkts), recovery {:.2}s, steady {:.2}s",
        d.slow_start_secs, d.slow_start_packets, d.recovery_secs, d.steady_secs
    );
}
