//! Window-evolution sample paths — the pictures behind the paper's Figs. 1,
//! 3 and 5, drawn as ASCII sawtooths from the rounds-based simulator.
//!
//! ```sh
//! cargo run --example window_evolution
//! ```

use padhye_tcp_repro::sim::rounds::{RoundsConfig, RoundsSim};

fn draw(title: &str, config: RoundsConfig, seconds: f64) {
    println!("\n--- {title} ---");
    let mut sim = RoundsSim::new(config, 99).record_samples(2_000);
    sim.run_for(seconds);
    for s in sim.samples().iter().take(70) {
        if s.window == 0 {
            println!("{:>7.1}s | (timeout)", s.time);
        } else {
            println!("{:>7.1}s |{}", s.time, "#".repeat(s.window as usize));
        }
    }
    let st = sim.stats();
    println!(
        "    {} packets in {:.0}s — {:.1} pkt/s; {} TD, {} TO (backoff histogram {:?})",
        st.packets_sent,
        sim.elapsed(),
        sim.send_rate(),
        st.td_events,
        st.to_events(),
        st.to_sequences
    );
}

fn main() {
    // Fig. 1: triple-duplicate regime — low loss, big windows, clean
    // halving sawtooth.
    draw(
        "Fig. 1 regime: TD-only sawtooth (p=0.005)",
        RoundsConfig {
            p: 0.005,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax: 1_000,
            ..RoundsConfig::default()
        },
        30.0,
    );

    // Fig. 3: moderate loss — timeouts interrupt the sawtooth with idle
    // gaps and slow-start recoveries.
    draw(
        "Fig. 3 regime: TD + TO (p=0.06)",
        RoundsConfig {
            p: 0.06,
            rtt: 0.1,
            t0: 1.5,
            b: 2,
            wmax: 1_000,
            ..RoundsConfig::default()
        },
        20.0,
    );

    // Fig. 5: the receiver window clips the sawtooth's teeth.
    draw(
        "Fig. 5 regime: clamped at W_m = 8 (p=0.003)",
        RoundsConfig {
            p: 0.003,
            rtt: 0.1,
            t0: 1.0,
            b: 2,
            wmax: 8,
            ..RoundsConfig::default()
        },
        25.0,
    );
}
