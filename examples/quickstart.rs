//! Quickstart: evaluate the PFTK model for a network operating point.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use padhye_tcp_repro::model::prelude::*;

fn main() {
    // A transatlantic-grade path of the paper's era: 200 ms RTT, 2 s
    // timeouts, delayed ACKs (b = 2), a 32-packet receiver window.
    let params = ModelParams::builder()
        .rtt(0.2)
        .t0(2.0)
        .ack_factor(2)
        .max_window(32)
        .build()
        .expect("valid parameters");

    println!("TCP Reno steady-state send rate, RTT=200 ms, T0=2 s, W_m=32\n");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>12}",
        "loss p", "full (32)", "approx (33)", "TD-only (20)", "regime"
    );
    for p in [0.0005, 0.001, 0.005, 0.01, 0.03, 0.05, 0.1, 0.2] {
        let lp = LossProb::new(p).expect("p in (0,1)");
        let detail = full_model_detailed(lp, &params);
        println!(
            "{:>8} {:>10.1} p/s {:>10.1} p/s {:>10.1} p/s {:>12}",
            p,
            detail.rate,
            approx_model(lp, &params),
            td_only(lp, &params),
            match detail.regime {
                Regime::WindowLimited => "W_m-limited",
                Regime::Unconstrained => "loss-limited",
            }
        );
    }

    // Bytes-per-second view for a 1460-byte MSS.
    let lp = LossProb::new(0.01).unwrap();
    let rate = PacketsPerSec::new(full_model(lp, &params)).unwrap();
    println!(
        "\nAt 1% loss: {:.1} packets/s = {:.0} kB/s at a 1460-byte MSS",
        rate.get(),
        rate.to_bytes_per_sec(1460) / 1000.0
    );

    // Receiver throughput (§V) vs send rate: the gap is retransmissions.
    let b = full_model(lp, &params);
    let t = padhye_tcp_repro::model::throughput::throughput(lp, &params);
    println!(
        "Send rate {b:.1} p/s vs receiver throughput {t:.1} p/s (efficiency {:.1}%)",
        100.0 * t / b
    );
}
