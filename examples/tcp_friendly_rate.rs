//! The paper's motivating application (§I): equation-based "TCP-friendly"
//! congestion control. A non-TCP flow measures loss and RTT, then sends at
//! the rate a conformant TCP would achieve — computed with the PFTK
//! equation, exactly as TFRC (RFC 5348) later standardized.
//!
//! This example closes the loop against the simulator: it measures a
//! simulated TCP's operating point from its own trace, computes the
//! TCP-friendly rate, and shows the two agree — then answers the classic
//! fairness question "what would a shorter-RTT TCP get?" with the model
//! inverse.
//!
//! ```sh
//! cargo run --release --example tcp_friendly_rate
//! ```

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::time::SimDuration;
use padhye_tcp_repro::testbed::TraceRecorder;
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::karn::estimate_timing;

fn main() {
    // 1. Run a real (simulated) TCP over a 2%-loss, 150 ms path for 10 min.
    let mut conn = Connection::builder()
        .rtt(0.15)
        .loss(Box::new(RoundCorrelated::new(0.02)))
        .seed(7)
        .build_with_observer(TraceRecorder::new());
    conn.run_for(SimDuration::from_secs_f64(600.0));
    conn.finish();
    let stats = conn.stats();
    let trace = conn.into_observer().into_trace();

    // 2. Measure the operating point the way an equation-based endpoint
    //    would: loss-event rate, RTT, T0 from observations.
    let analysis = analyze(&trace, AnalyzerConfig::default());
    let timing = estimate_timing(&trace);
    let p = LossProb::new(analysis.loss_rate()).expect("observed loss in (0,1)");
    let params = ModelParams::new(
        timing.mean_rtt.expect("trace has RTT samples"),
        timing.mean_t0.unwrap_or(1.0),
        2,
        u16::MAX as u32,
    )
    .expect("valid measured parameters");

    println!(
        "measured: p = {:.4}, RTT = {:.3} s, T0 = {:.3} s",
        p.get(),
        params.rtt.get(),
        params.t0.get()
    );

    // 3. The TCP-friendly rate.
    let friendly = tcp_friendly_rate(p, &params, ModelKind::Full);
    let actual = stats.packets_sent as f64 / 600.0;
    println!("TCP-friendly rate (full model): {friendly:.1} packets/s");
    println!("actual simulated TCP sent:      {actual:.1} packets/s");
    println!(
        "ratio: {:.2} (a conformant equation-based flow matches TCP)",
        friendly / actual
    );

    // 4. Model inversion: what loss rate would bring this TCP to 10 p/s?
    let p_slow = loss_for_rate(10.0, &params).expect("10 p/s is achievable");
    println!(
        "\nloss rate at which this TCP would drop to 10 packets/s: {:.3}",
        p_slow.get()
    );

    // 5. RTT fairness: same bottleneck, half the RTT → higher fair share.
    let short =
        ModelParams::new(params.rtt.get() / 2.0, params.t0.get(), 2, u16::MAX as u32).unwrap();
    println!(
        "a flow with half the RTT at the same loss rate gets {:.1} packets/s ({:.2}x)",
        full_model(p, &short),
        full_model(p, &short) / friendly
    );
}
