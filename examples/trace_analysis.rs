//! Trace analysis walkthrough: simulate a Table II path, archive the
//! sender-side trace as JSON lines, re-read it, and run the full §III
//! analysis pipeline — loss-indication classification, Karn RTT, interval
//! segmentation — producing a Table II-style summary row.
//!
//! ```sh
//! cargo run --release --example trace_analysis
//! ```

use padhye_tcp_repro::testbed::{run_serial_100s_with, table2_path, ExperimentOptions};
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::intervals::split_intervals_bounded;
use padhye_tcp_repro::trace::karn::estimate_timing;
use padhye_tcp_repro::trace::record::Trace;
use padhye_tcp_repro::trace::stream::{StreamAnalysis, StreamConfig};
use padhye_tcp_repro::trace::table::{format_table, TableRow};

fn main() {
    // The paper's Fig. 7(a) path: manic → baskerville (Irix sender,
    // RTT 0.243 s, T0 2.495 s, W_m = 6). Campaigns stream their analysis
    // and drop the trace by default; this walkthrough archives traces, so
    // it opts into retention.
    let spec = table2_path("manic", "baskerville").expect("path in Table II");
    println!("simulating 5 x 100 s on {} ...", spec.id());
    let results = run_serial_100s_with(spec, 5, 2024, &ExperimentOptions::retained());
    let first = results[0]
        .trace
        .as_ref()
        .expect("retained run keeps its trace");

    // Archive the first connection's trace and restore it — the same
    // round-trip a researcher distributing traces would make.
    let mut jsonl = Vec::new();
    first.write_jsonl(&mut jsonl).expect("serialize");
    println!(
        "archived trace: {} records, {} KiB as JSON lines",
        first.len(),
        jsonl.len() / 1024
    );
    let restored = Trace::read_jsonl(std::io::Cursor::new(jsonl)).expect("parse");
    assert_eq!(&restored, first);

    // Analyze with the sender's OS quirk (Irix: standard threshold 3).
    let analyzer = AnalyzerConfig {
        dupack_threshold: spec.sender_os().dupack_threshold(),
    };
    let analysis = analyze(&restored, analyzer);
    let timing = estimate_timing(&restored);
    // The same answers fall out of one streaming pass over the archive —
    // what a campaign computes without ever materializing the trace.
    let streamed = StreamAnalysis::from_trace(
        &restored,
        StreamConfig::with_analyzer(analyzer),
        Some(100.0),
    );
    assert_eq!(streamed.analysis, analysis);
    assert_eq!(streamed.timing.as_ref(), Some(&timing));
    println!(
        "\nloss indications: {} ({} TD, {} TO)",
        analysis.indications.len(),
        analysis.td_count(),
        analysis.to_count()
    );
    println!("timeout histogram (T0..T5+): {:?}", analysis.to_histogram());
    println!("estimated p   = {:.4}", analysis.loss_rate());
    println!(
        "estimated RTT = {:.3} s (paper row: {:.3})",
        timing.mean_rtt.unwrap_or(f64::NAN),
        spec.rtt
    );
    println!(
        "estimated T0  = {:.3} s (paper row: {:.3})",
        timing.mean_t0.unwrap_or(f64::NAN),
        spec.t0
    );

    // Interval view (the Fig. 7 building block).
    let intervals = split_intervals_bounded(&restored, &analysis, 20.0, 100.0);
    println!("\nper-20s intervals:");
    for iv in &intervals {
        println!(
            "  [{}] {} packets, {} indications, p={:.4}, category {:?}",
            iv.index, iv.packets_sent, iv.loss_indications, iv.loss_rate, iv.category
        );
    }

    // A Table II-style row for the whole 5-connection campaign, straight
    // from each run's streamed analysis.
    let mut rows = Vec::new();
    for r in &results {
        let rtt = r.timing().and_then(|t| t.mean_rtt);
        let t0 = r.timing().and_then(|t| t.mean_t0);
        rows.push(TableRow::from_analysis(
            spec.sender,
            spec.receiver,
            r.analysis(),
            rtt.unwrap_or(spec.rtt),
            t0.unwrap_or(spec.t0),
        ));
    }
    println!("\nTable II-style rows (one per 100 s connection):");
    println!("{}", format_table(&rows));
}
