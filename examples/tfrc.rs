//! Equation-based congestion control (simplified TFRC) in action: the
//! historical payoff of the paper's Eq. (33). One TFRC flow and one TCP
//! Reno flow share a 100 pkt/s bottleneck; we compare their shares and
//! their smoothness under drop-tail and RED queues.
//!
//! ```sh
//! cargo run --release --example tfrc
//! ```

use padhye_tcp_repro::sim::network::{FlowConfig, Network};
use padhye_tcp_repro::sim::queue::{DropTail, QueuePolicy, Red};
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::tfrc::TfrcConfig;
use padhye_tcp_repro::sim::time::SimDuration;

const LINK: f64 = 100.0;
const HORIZON: f64 = 600.0;

fn run(policy: Box<dyn QueuePolicy + Send>, label: &str) {
    let mut net = Network::new(LINK, policy, 7);
    let tcp = net.add_flow(FlowConfig::tcp(0.1, SenderConfig::default()));
    let tfrc = net.add_flow(FlowConfig::tfrc(0.1, TfrcConfig::for_rtt(0.2)));

    // Sample per-20s goodput to measure smoothness.
    let mut tcp_series = Vec::new();
    let mut tfrc_series = Vec::new();
    let (mut last_tcp, mut last_tfrc) = (0u64, 0u64);
    let windows = (HORIZON / 20.0) as usize;
    for _ in 0..windows {
        net.run_for(SimDuration::from_secs_f64(20.0));
        let s = net.stats();
        tcp_series.push((s[tcp].delivered - last_tcp) as f64 / 20.0);
        tfrc_series.push((s[tfrc].delivered - last_tfrc) as f64 / 20.0);
        last_tcp = s[tcp].delivered;
        last_tfrc = s[tfrc].delivered;
    }
    net.finish();
    let s = net.stats();

    let cv = |xs: &[f64]| {
        let tail = &xs[xs.len() / 2..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let var = tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / tail.len() as f64;
        var.sqrt() / mean.max(1.0)
    };
    println!("--- {label} ---");
    println!(
        "TCP : {:>5.1} pkt/s goodput, loss {:>5.2}%, smoothness CV {:.3}",
        s[tcp].delivered as f64 / HORIZON,
        100.0 * s[tcp].loss_fraction(),
        cv(&tcp_series)
    );
    println!(
        "TFRC: {:>5.1} pkt/s goodput, loss {:>5.2}%, smoothness CV {:.3}\n",
        s[tfrc].delivered as f64 / HORIZON,
        100.0 * s[tfrc].loss_fraction(),
        cv(&tfrc_series)
    );
}

fn main() {
    println!("TFRC (Eq. (33) as a control law) vs TCP Reno, 100 pkt/s bottleneck\n");
    run(Box::new(DropTail::new(25)), "drop-tail queue (25 packets)");
    run(
        Box::new(Red::new(5.0, 20.0, 0.1, 0.02, 40)),
        "RED queue (5/20 thresholds)",
    );
    println!("Drop-tail's burst bias lets the paced TFRC flow crowd TCP out");
    println!("(and makes its delivery almost perfectly smooth); RED's randomized");
    println!("drops restore a near-even split, with the two flows comparably");
    println!("smooth. Rate-by-equation instead of rate-by-halving is what made");
    println!("equation-based control attractive for streaming media.");
}
