//! Importing an external sender-side dump: validate it, analyze it, and
//! fit the model — the workflow for running this paper's methodology on a
//! trace you captured yourself (convert `tcpdump` output to the three-
//! column text format with a one-liner; see `tcp_trace::import`).
//!
//! ```sh
//! cargo run --release --example import_trace
//! ```

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::trace::analyzer::{analyze, AnalyzerConfig};
use padhye_tcp_repro::trace::import::import_text;
use padhye_tcp_repro::trace::summary::TraceSummary;
use padhye_tcp_repro::trace::validate::{validate, ValidateConfig};

/// A small hand-written dump: two clean windows, one triple-duplicate
/// recovery, one timeout with a single backoff.
const DUMP: &str = "
# time   kind  seq/ack
0.000 send 0
0.001 send 1
0.210 ack 2
0.211 send 2
0.212 send 3
0.213 send 4
0.214 send 5
0.420 ack 3          # packet 3 lost → duplicate ACKs follow
0.421 ack 3
0.422 ack 3
0.423 ack 3
0.424 send 3         # fast retransmit
0.630 ack 6
0.631 send 6
0.632 send 7
1.900 send 6         # timeout retransmission
4.400 send 6         # backed-off retransmission (T1)
4.610 ack 8
";

fn main() {
    let imported = import_text(std::io::Cursor::new(DUMP)).expect("I/O cannot fail on a Cursor");
    // The lenient importer reports salvage/repair work in `health`; this
    // dump should need none.
    assert!(
        imported.health.is_clean(),
        "importer had to repair the dump: {}",
        imported.health
    );
    let trace = imported.trace;

    // 1. Sanity-check before trusting any statistics.
    let findings = validate(&trace, ValidateConfig::default());
    assert!(
        findings.is_empty(),
        "validator found problems: {findings:?}"
    );
    println!("validator: clean ({} records)", trace.len());

    // 2. Full summary.
    let summary = TraceSummary::build(&trace, AnalyzerConfig::default());
    println!("\n{}", summary.render());

    // 3. Classified indications.
    let analysis = analyze(&trace, AnalyzerConfig::default());
    for ind in &analysis.indications {
        println!(
            "loss indication at {:.3}s: {:?}",
            ind.time_ns as f64 / 1e9,
            ind.kind
        );
    }

    // 4. Fit the model at the measured operating point.
    let p = LossProb::new(analysis.loss_rate()).unwrap();
    let params = ModelParams::new(
        summary.mean_rtt.unwrap_or(0.2),
        summary.mean_t0.unwrap_or(1.5),
        2,
        64,
    )
    .unwrap();
    println!(
        "\nfull model at the measured point: {:.1} packets/s (measured {:.1})",
        full_model(p, &params),
        summary.send_rate_pps
    );
    println!(
        "(a {}-record toy dump is of course far from steady state)",
        trace.len()
    );
}
