//! Tahoe vs Reno vs NewReno vs SACK under bursty loss — the paper's ref [3]
//! comparison on this workspace's simulator, with the PFTK model's Reno
//! prediction alongside.
//!
//! ```sh
//! cargo run --release --example tcp_variants
//! ```

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::connection::Connection;
use padhye_tcp_repro::sim::loss::RoundCorrelated;
use padhye_tcp_repro::sim::reno::sender::{RenoStyle, SenderConfig};
use padhye_tcp_repro::sim::time::SimDuration;

const HORIZON: f64 = 900.0;

fn main() {
    println!("TCP variants under round-correlated (bursty) loss, RTT 100 ms, W_m = 32\n");
    println!(
        "{:>9} {:>8} | {:>9} {:>7} {:>7} {:>9} {:>9}",
        "wire p", "variant", "rate p/s", "TD", "TO", "p_obs", "model B"
    );
    for wire_p in [0.005, 0.02, 0.05] {
        for style in [
            RenoStyle::Tahoe,
            RenoStyle::Reno,
            RenoStyle::NewReno,
            RenoStyle::Sack,
        ] {
            let sender = SenderConfig {
                style,
                rwnd: 32,
                ..SenderConfig::default()
            };
            let mut c = Connection::builder()
                .rtt(0.1)
                .loss(Box::new(RoundCorrelated::new(wire_p)))
                .sender_config(sender)
                .seed(42)
                .build();
            c.run_for(SimDuration::from_secs_f64(HORIZON));
            c.finish();
            let s = c.stats();
            let p_obs = s.loss_indication_rate().clamp(1e-6, 0.9);
            let params = ModelParams::new(0.1, 1.0, 2, 32).unwrap();
            let model = full_model(LossProb::new(p_obs).unwrap(), &params);
            println!(
                "{:>9} {:>8} | {:>9.1} {:>7} {:>7} {:>9.4} {:>9.1}",
                wire_p,
                format!("{style:?}"),
                s.packets_sent as f64 / HORIZON,
                s.td_events,
                s.to_events(),
                p_obs,
                model
            );
        }
        println!();
    }
    println!("SACK's multi-hole repair pays most at low loss (big windows, engaged");
    println!("recoveries); at high loss every variant is timeout-bound and they");
    println!("converge — the regime the paper's Table II documents. The model");
    println!("column is the PFTK prediction at each run's own measured indication");
    println!("rate: the equation every variant is being compared against.");
}
