//! TCP-friendliness on a shared bottleneck — the paper's §I motivation,
//! live. A 100 pkt/s drop-tail link carries one TCP flow plus one CBR flow
//! whose rate sweeps from well below to well above the PFTK TCP-friendly
//! rate; watch TCP's share collapse once the CBR stops being friendly.
//!
//! ```sh
//! cargo run --release --example fairness
//! ```

use padhye_tcp_repro::model::prelude::*;
use padhye_tcp_repro::sim::network::{FlowConfig, Network};
use padhye_tcp_repro::sim::queue::DropTail;
use padhye_tcp_repro::sim::reno::sender::SenderConfig;
use padhye_tcp_repro::sim::time::SimDuration;

const LINK: f64 = 100.0;
const RTT: f64 = 0.1;
const HORIZON: f64 = 300.0;

fn main() {
    // Step 1: measure the fair operating point (two TCPs).
    let mut net = Network::new(LINK, Box::new(DropTail::new(25)), 1);
    let f0 = net.add_flow(FlowConfig::tcp(RTT, SenderConfig::default()));
    net.add_flow(FlowConfig::tcp(RTT, SenderConfig::default()));
    net.run_for(SimDuration::from_secs_f64(HORIZON));
    net.finish();
    let stats = net.stats();
    let p = stats[f0]
        .tcp
        .as_ref()
        .unwrap()
        .loss_indication_rate()
        .clamp(1e-6, 0.9);
    let measured_rtt = RTT + 25.0 / LINK / 2.0; // propagation + mid-queue delay
    let params = ModelParams::new(measured_rtt, 1.0, 2, u16::MAX as u32).unwrap();
    let friendly = tcp_friendly_rate(LossProb::new(p).unwrap(), &params, ModelKind::Full);
    println!(
        "two-TCP baseline: each ≈ {:.1} pkt/s, loss p = {:.4}",
        LINK / 2.0,
        p
    );
    println!("PFTK TCP-friendly rate at that point: {friendly:.1} pkt/s\n");

    // Step 2: sweep a CBR competitor against one TCP.
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "CBR pk/s", "TCP share", "CBR goodput", "CBR drops", "TCP p"
    );
    for mult in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0] {
        let cbr_rate = (friendly * mult).min(LINK * 0.98);
        let mut net = Network::new(LINK, Box::new(DropTail::new(25)), 42);
        let tcp = net.add_flow(FlowConfig::tcp(RTT, SenderConfig::default()));
        let cbr = net.add_flow(FlowConfig::cbr(RTT, cbr_rate));
        net.run_for(SimDuration::from_secs_f64(HORIZON));
        net.finish();
        let s = net.stats();
        println!(
            "{:>10.1} {:>10.1}/s {:>10.1}/s {:>11.1}% {:>8.4}",
            cbr_rate,
            s[tcp].delivered as f64 / HORIZON,
            s[cbr].delivered as f64 / HORIZON,
            100.0 * s[cbr].loss_fraction(),
            s[tcp].tcp.as_ref().unwrap().loss_indication_rate()
        );
    }
    println!("\nAt ≤1x the friendly rate both flows prosper; beyond it the CBR");
    println!("keeps its goodput by force while TCP backs off — exactly the");
    println!("unfairness the TCP-friendly equation exists to prevent.");
}
