//! Umbrella crate for the PFTK TCP-throughput-model reproduction.
//!
//! This crate re-exports the public API of the four library crates so that
//! examples and downstream users can depend on a single package:
//!
//! * [`model`] — the paper's analytic models (full, approximate, TD-only,
//!   throughput, Markov).
//! * [`sim`] — the packet-level and rounds-based TCP Reno simulators.
//! * [`trace`] — the sender-side trace format and the §III analysis programs.
//! * [`testbed`] — the synthetic measurement testbed (Table I hosts, Table II
//!   paths, experiment runners).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory.

pub use pftk_model as model;
pub use tcp_sim as sim;
pub use tcp_testbed as testbed;
pub use tcp_trace as trace;
